#include "partition/elk_tt_server.h"

#include "common/ensure.h"

namespace gk::partition {

ElkTtServer::ElkTtServer(unsigned s_period_epochs, Rng rng)
    : s_period_epochs_(s_period_epochs),
      ids_(lkh::IdAllocator::create()),
      s_tree_{rng.fork(), 16, 16, ids_},
      l_tree_{rng.fork(), 16, 16, ids_},
      dek_(rng.fork(), ids_) {}

void ElkTtServer::join(workload::MemberId member) {
  const bool to_s = s_period_epochs_ > 0;
  (to_s ? s_tree_ : l_tree_).join(member);
  records_.emplace(workload::raw(member), Record{epoch_, to_s});
  ++staged_joins_;
}

void ElkTtServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  if (it->second.in_s) {
    s_tree_.leave(member, pending_);
    ++staged_s_leaves_;
  } else {
    l_tree_.leave(member, pending_);
    ++staged_l_leaves_;
  }
  records_.erase(it);
}

bool ElkTtServer::member_in_s(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return it->second.in_s;
}

const elk::ElkTree& ElkTtServer::tree_of(workload::MemberId member) const {
  return member_in_s(member) ? s_tree_ : l_tree_;
}

ElkTtServer::Output ElkTtServer::end_epoch() {
  Output out;
  out.epoch = epoch_;
  out.s_departures = staged_s_leaves_;
  out.l_departures = staged_l_leaves_;

  // Batched migration: ELK leaf keys are plain random values, but the
  // member's L-path is new, so it needs a unicast re-grant either way.
  regrants_.clear();
  if (s_period_epochs_ > 0) {
    std::vector<workload::MemberId> migrants;
    for (const auto& [raw_id, record] : records_) {
      if (record.in_s && epoch_ >= record.joined_epoch + s_period_epochs_)
        migrants.push_back(workload::make_member_id(raw_id));
    }
    for (const auto member : migrants) {
      s_tree_.leave(member, pending_);
      l_tree_.join(member);
      records_[workload::raw(member)].in_s = false;
      regrants_.push_back(member);
    }
    out.migrations = migrants.size();
  }

  out.contributions = std::move(pending_);
  pending_ = {};

  // Interval boundary: both trees refresh one-way (free), then the DEK.
  s_tree_.end_epoch();
  l_tree_.end_epoch();
  for (const auto member : s_tree_.relocated())
    if (records_.count(workload::raw(member)) != 0) regrants_.push_back(member);
  for (const auto member : l_tree_.relocated())
    if (records_.count(workload::raw(member)) != 0) regrants_.push_back(member);

  const bool compromised = staged_s_leaves_ + staged_l_leaves_ > 0;
  if (compromised || staged_joins_ > 0) {
    dek_.rotate();
    if (!compromised) dek_.wrap_under_previous(out.dek_wraps);
    if (s_tree_.size() > 0) {
      const auto root = s_tree_.group_key();
      dek_.wrap_under(root.key, s_tree_.root_id(), root.version, out.dek_wraps);
    }
    if (l_tree_.size() > 0) {
      const auto root = l_tree_.group_key();
      dek_.wrap_under(root.key, l_tree_.root_id(), root.version, out.dek_wraps);
    }
  }
  out.dek_wraps.group_key_id = dek_.id();
  out.dek_wraps.group_key_version = dek_.current().version;
  out.contributions.epoch = epoch_;

  ++epoch_;
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  return out;
}

std::vector<elk::ElkTree::PathKey> ElkTtServer::grant_for(
    workload::MemberId member) const {
  return tree_of(member).grant_for(member);
}

}  // namespace gk::partition
