#include "partition/qt_server.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

QtServer::QtServer(unsigned degree, unsigned s_period_epochs, Rng rng)
    : s_period_epochs_(s_period_epochs),
      ids_(lkh::IdAllocator::create()),
      queue_(rng.fork(), ids_),
      l_tree_(degree, rng.fork(), ids_),
      dek_(rng.fork(), ids_) {}

Registration QtServer::join(const workload::MemberProfile& profile) {
  ++staged_joins_;
  records_.emplace(workload::raw(profile.id), Record{epoch_, s_period_epochs_ > 0});
  if (s_period_epochs_ == 0) {
    const auto grant = l_tree_.insert(profile.id);
    return {grant.individual_key, grant.leaf_id};
  }
  const auto grant = queue_.insert(profile.id);
  epoch_arrivals_.push_back(profile.id);
  return {grant.individual_key, grant.leaf_id};
}

void QtServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  if (it->second.in_s) {
    queue_.remove(member);
    ++staged_s_leaves_;
  } else {
    l_tree_.remove(member);
    ++staged_l_leaves_;
  }
  records_.erase(it);
}

EpochOutput QtServer::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.s_departures = staged_s_leaves_;
  out.l_departures = staged_l_leaves_;

  relocations_.clear();
  if (s_period_epochs_ > 0) {
    std::vector<workload::MemberId> migrants;
    for (const auto& [raw_id, record] : records_) {
      if (record.in_s && epoch_ >= record.joined_epoch + s_period_epochs_)
        migrants.push_back(workload::make_member_id(raw_id));
    }
    // Deterministic migration order: records_ is unordered, and a
    // journal-replayed server must insert migrants into the L-tree in the
    // exact sequence the crash-free run did.
    std::sort(migrants.begin(), migrants.end(),
              [](auto a, auto b) { return workload::raw(a) < workload::raw(b); });
    for (const auto member : migrants) {
      const auto individual = queue_.individual_key(member);
      queue_.remove(member);
      const auto grant = l_tree_.insert_with_key(member, individual);
      records_[workload::raw(member)].in_s = false;
      relocations_.push_back({member, grant.leaf_id});
    }
    out.migrations = migrants.size();
  }

  out.message = l_tree_.commit(epoch_);

  const bool compromised = staged_s_leaves_ + staged_l_leaves_ > 0;
  if (compromised) {
    // The departed members held the DEK directly, so every queue resident
    // needs an individual re-wrap — the queue's whole cost model.
    dek_.rotate();
    auto queue_wraps = queue_.wrap_for_all(dek_.current().key, dek_.id(),
                                           dek_.current().version);
    out.message.wraps.insert(out.message.wraps.end(), queue_wraps.begin(),
                             queue_wraps.end());
    if (!l_tree_.empty())
      dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                      l_tree_.root_key().version, out.message);
  } else if (staged_joins_ > 0) {
    // Join-only epoch: incumbents chain from the previous DEK; each
    // arrival that is still in the queue needs one individual wrap.
    dek_.rotate();
    dek_.wrap_under_previous(out.message);
    if (s_period_epochs_ == 0) {
      if (!l_tree_.empty())
        dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                        l_tree_.root_key().version, out.message);
    } else {
      for (const auto member : epoch_arrivals_)
        if (queue_.contains(member))
          out.message.wraps.push_back(queue_.wrap_for(
              member, dek_.current().key, dek_.id(), dek_.current().version));
    }
  }
  dek_.stamp(out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  epoch_arrivals_.clear();
  return out;
}

crypto::VersionedKey QtServer::group_key() const { return dek_.current(); }

crypto::KeyId QtServer::group_key_id() const { return dek_.id(); }

std::vector<crypto::KeyId> QtServer::member_path(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  std::vector<crypto::KeyId> path;
  if (!it->second.in_s) path = l_tree_.path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<std::uint8_t> QtServer::save_state() const {
  GK_ENSURE_MSG(staged_joins_ == 0 && staged_s_leaves_ == 0 && staged_l_leaves_ == 0 &&
                    epoch_arrivals_.empty(),
                "commit staged changes before saving server state");
  common::ByteWriter out;
  out.u64(epoch_);
  out.u32(s_period_epochs_);
  out.u64(ids_->watermark());
  queue_.save_state(out);
  out.blob(lkh::snapshot_tree_exact(l_tree_));
  dek_.save_state(out);
  std::vector<std::uint64_t> raw_ids;
  raw_ids.reserve(records_.size());
  for (const auto& [raw_id, record] : records_) raw_ids.push_back(raw_id);
  std::sort(raw_ids.begin(), raw_ids.end());
  out.u64(raw_ids.size());
  for (const auto raw_id : raw_ids) {
    const auto& record = records_.at(raw_id);
    out.u64(raw_id);
    out.u64(record.joined_epoch);
    out.u8(record.in_s ? 1 : 0);
  }
  return out.take();
}

void QtServer::restore_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  epoch_ = in.u64();
  GK_ENSURE_MSG(in.u32() == s_period_epochs_,
                "restored state has a different S-period");
  const auto watermark = in.u64();
  queue_.restore_state(in);
  auto restored = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  l_tree_ = std::move(restored);
  dek_.restore_state(in);
  records_.clear();
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    Record record;
    record.joined_epoch = in.u64();
    record.in_s = in.u8() != 0;
    GK_ENSURE_MSG(records_.emplace(raw_id, record).second,
                  "server state corrupt: duplicate member record");
  }
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  ids_->reset_to(watermark);
  epoch_arrivals_.clear();
  relocations_.clear();
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
}

std::vector<PathKey> QtServer::member_path_keys(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  std::vector<PathKey> path;
  if (!it->second.in_s)
    for (const auto& entry : l_tree_.path_keys(member))
      path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 QtServer::member_individual_key(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return it->second.in_s ? queue_.individual_key(member)
                         : l_tree_.individual_key(member);
}

crypto::KeyId QtServer::member_leaf_id(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return it->second.in_s ? queue_.leaf_id(member) : l_tree_.leaf_id(member);
}

}  // namespace gk::partition
