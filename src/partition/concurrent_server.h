#pragma once

#include <memory>

#include "common/annotations.h"
#include "common/mutex.h"
#include "partition/server.h"

namespace gk::partition {

/// Thread-safe facade over any RekeyServer.
///
/// A deployed key server handles concurrent registration (join) and
/// revocation (leave) requests from its front-ends while a timer thread
/// drives the periodic commit. The underlying scheme implementations are
/// deliberately single-threaded (tree surgery does not shard well and a
/// rekey period is long compared to the critical sections), so the
/// production-shaped answer is a coarse lock around the staging and commit
/// operations — this wrapper. Statistics accessors share the same lock so
/// callers never observe a tree mid-surgery.
class ConcurrentServer final : public RekeyServer {
 public:
  explicit ConcurrentServer(std::unique_ptr<RekeyServer> inner)
      : inner_(std::move(inner)) {}

  Registration join(const workload::MemberProfile& profile) override {
    const common::MutexLock lock(mutex_);
    return inner_->join(profile);
  }

  void leave(workload::MemberId member) override {
    const common::MutexLock lock(mutex_);
    inner_->leave(member);
  }

  EpochOutput end_epoch() override {
    const common::MutexLock lock(mutex_);
    return inner_->end_epoch();
  }

  [[nodiscard]] crypto::VersionedKey group_key() const override {
    const common::MutexLock lock(mutex_);
    return inner_->group_key();
  }

  [[nodiscard]] crypto::KeyId group_key_id() const override {
    const common::MutexLock lock(mutex_);
    return inner_->group_key_id();
  }

  [[nodiscard]] std::size_t size() const override {
    const common::MutexLock lock(mutex_);
    return inner_->size();
  }

  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override {
    const common::MutexLock lock(mutex_);
    return inner_->member_path(member);
  }

  /// Run `fn` with the lock held and the raw scheme exposed — for
  /// scheme-specific accessors (partition sizes, relocations).
  template <typename Fn>
  auto with_inner(Fn&& fn) const {
    const common::MutexLock lock(mutex_);
    return fn(*inner_);
  }

 private:
  mutable common::Mutex mutex_;
  std::unique_ptr<RekeyServer> inner_ GK_GUARDED_BY(mutex_) GK_PT_GUARDED_BY(mutex_);
};

}  // namespace gk::partition
