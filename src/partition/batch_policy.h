#pragma once

#include <memory>
#include <vector>

#include "engine/placement_policy.h"
#include "lkh/key_tree.h"

namespace gk::partition {

/// Smoke-test policy for the extension path (DESIGN.md §9): a single key
/// tree, like OneTreePolicy, but with fully batched membership — joins are
/// greedily granted at the tree's shallowest vacancy as they arrive, while
/// departures are only *staged* here and applied in one batch at emission
/// time, drained via swap-pop (back-to-front) from the pending list.
///
/// Exists to prove a new scheme is one small PlacementPolicy subclass plus
/// a factory registration; the cross-check test pins its per-epoch costs to
/// OneTreePolicy's under identical workloads.
///
/// RNG fork order: the tree consumes the seed Rng directly (no forks).
class BatchPolicy final : public engine::PlacementPolicy {
 public:
  BatchPolicy(unsigned degree, Rng rng);

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override {
    return tree_.ids();
  }

  void set_executor(common::ThreadPool* pool) override { tree_.set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    tree_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override { tree_.set_wrap_cache(enabled); }

  [[nodiscard]] const lkh::KeyTree& tree() const noexcept { return tree_; }

 private:
  engine::PolicyInfo info_;
  lkh::KeyTree tree_;
  std::vector<workload::MemberId> pending_leaves_;
};

}  // namespace gk::partition
