#include "partition/journaled_server.h"

#include "common/ensure.h"
#include "crypto/sha256.h"

namespace gk::partition {

JournaledServer::JournaledServer(std::unique_ptr<DurableRekeyServer> inner,
                                 Config config)
    : inner_(std::move(inner)), config_(config) {
  GK_ENSURE_MSG(inner_ != nullptr, "JournaledServer needs a server to wrap");
  journal_.checkpoint(inner_->save_state());
}

Registration JournaledServer::join(const workload::MemberProfile& profile) {
  journal_.record_join(profile);
  const auto registration = inner_->join(profile);
  journal_.record_join_ack(registration.leaf_id);
  return registration;
}

void JournaledServer::leave(workload::MemberId member) {
  journal_.record_leave(member);
  inner_->leave(member);
}

void JournaledServer::set_term(std::uint64_t term) {
  GK_ENSURE_MSG(term >= term_,
                "fencing term may not regress (" << term_ << " -> " << term << ")");
  if (term == term_) return;
  term_ = term;
  journal_.record_term(term_);
}

EpochOutput JournaledServer::end_epoch() {
  // Intent is durable before the commit touches memory: a crash anywhere
  // after this line recovers by re-running the epoch from the journal.
  journal_.record_commit_begin(inner_->epoch());
  if (crash_armed_) {
    crash_armed_ = false;
    throw ServerCrashed{};
  }
  auto out = inner_->end_epoch();
  out.term = term_;
  journal_.record_commit_end(out.epoch);
  if (config_.digest_every > 0 &&
      journal_.commits_since_checkpoint() % config_.digest_every == 0) {
    journal_.record_state_digest(crypto::sha256(inner_->save_state()));
  }
  if (journal_.wants_checkpoint(config_.checkpoint_every)) {
    journal_.checkpoint(inner_->save_state());
    // The fresh stream must re-declare its provenance: a standby catching up
    // from this checkpoint fences on the term it carries.
    if (term_ > 0) journal_.record_term(term_);
  }
  return out;
}

JournaledServer::Recovery JournaledServer::recover(
    std::span<const std::uint8_t> journal_bytes,
    std::unique_ptr<DurableRekeyServer> blank, Config config) {
  GK_ENSURE_MSG(blank != nullptr, "recover needs a blank server to restore into");
  const auto replay = wire::RekeyJournal::parse(journal_bytes);
  blank->restore_state(replay.base_state);

  auto server = std::make_unique<JournaledServer>(std::move(blank), config);
  Recovery recovery;
  for (const auto& op : replay.ops) {
    switch (op.kind) {
      case wire::RekeyJournal::Op::Kind::kJoin: {
        const auto registration = server->join(op.profile);
        // A logged grant pins the replay: divergence here means the
        // checkpoint or the server's determinism is broken — fail loudly
        // rather than hand members keys the server no longer derives.
        if (op.granted_leaf)
          GK_ENSURE_MSG(registration.leaf_id == *op.granted_leaf,
                        "journal replay diverged: join grant mismatch");
        break;
      }
      case wire::RekeyJournal::Op::Kind::kLeave:
        server->leave(op.member);
        break;
      case wire::RekeyJournal::Op::Kind::kTerm:
        server->set_term(op.term);
        break;
      case wire::RekeyJournal::Op::Kind::kCommit:
        // Re-run the epoch; for commits the dead server finished, the output
        // was already delivered and is discarded. The interrupted commit (if
        // any) is the journal's final op — its regenerated output is the
        // message the dead server never sent.
        recovery.pending = server->end_epoch();
        if (op.commit_finished) recovery.pending.reset();
        break;
      case wire::RekeyJournal::Op::Kind::kDigest:
        // The logged digest pins the whole replayed state, not just join
        // grants: any divergence between this server and the journal's
        // author is caught at the first post-commit digest.
        GK_ENSURE_MSG(crypto::sha256(server->durable().save_state()) == op.digest,
                      "journal replay diverged: state digest mismatch");
        break;
    }
  }
  recovery.server = std::move(server);
  return recovery;
}

}  // namespace gk::partition
