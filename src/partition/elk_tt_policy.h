#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "elk/elk_tree.h"
#include "engine/placement_policy.h"

namespace gk::partition {

/// Placement policy for the TT scheme over ELK trees: an S-partition
/// (partition 0) and L-partition (partition 1) ElkTree under one session
/// DEK. Joins are broadcast-free on either tree, so the S-partition only
/// ever pays for the *departures* of short-lived members — and those
/// disturb a tree of size Ns, not N.
///
/// The epoch's sub-key-size contribution records accumulate here and are
/// taken by the ElkTtServer facade after each commit (emit() returns only
/// the whole-key DEK wraps through the engine's RekeyMessage channel).
///
/// RNG fork order: S-tree, L-tree, DEK.
class ElkTtPolicy final : public engine::PlacementPolicy {
 public:
  ElkTtPolicy(unsigned s_period_epochs, Rng rng);

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] std::optional<crypto::KeyId> migrate(workload::MemberId member) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;
  void apply_dek(const engine::EpochCounts& counts, lkh::RekeyMessage& out) override;
  void epoch_begin() override { regrants_.clear(); }

  [[nodiscard]] engine::GroupKeyManager* dek() noexcept override { return &dek_; }

  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override { return ids_; }

  /// The contribution records emitted by the last commit (moved out once).
  [[nodiscard]] elk::ElkRekeyMessage take_contributions() {
    auto taken = std::move(contributions_);
    contributions_ = {};
    return taken;
  }
  /// Members needing a re-grant after the last commit (splits/migrations).
  [[nodiscard]] const std::vector<workload::MemberId>& regrants() const noexcept {
    return regrants_;
  }

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }
  [[nodiscard]] const elk::ElkTree& tree(std::uint32_t partition) const noexcept {
    return partition == 0 ? s_tree_ : l_tree_;
  }

 private:
  engine::PolicyInfo info_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  elk::ElkTree s_tree_;
  elk::ElkTree l_tree_;
  engine::GroupKeyManager dek_;
  /// Live members, kept policy-side to filter departed ids out of the
  /// trees' relocation lists (the engine's ledger is not visible here).
  std::unordered_set<std::uint64_t> live_;
  elk::ElkRekeyMessage pending_;
  elk::ElkRekeyMessage contributions_;
  std::vector<workload::MemberId> regrants_;
};

}  // namespace gk::partition
