#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "engine/core_server.h"
#include "engine/placement_policy.h"
#include "losshomo/loss_bin_policy.h"
#include "partition/adaptive.h"
#include "partition/server.h"

namespace gk::partition {

/// Structural parameters a policy factory may consume; fields irrelevant to
/// a given scheme are ignored (e.g. bins for "qt", S-period for "pt").
struct SchemeConfig {
  unsigned degree = 4;
  /// The paper's K = Ts/Tp (QT/TT/OFT-TT/ELK-TT; 0 disables the S-stage).
  unsigned s_period_epochs = 0;
  /// Loss-bin ceilings for "loss-bin" (ascending; last bin absorbs the rest).
  std::vector<double> bin_upper_bounds = {0.05, 1.0};
  losshomo::Placement placement = losshomo::Placement::kLossHomogenized;
  /// First key-node id the scheme's allocator hands out. The sharded engine
  /// sets a disjoint base per shard so ids never collide across shards in a
  /// member's id-keyed KeyRing; leave at 1 for standalone servers. Only the
  /// four core LKH schemes (one-tree/qt/tt/pt) honor it.
  std::uint64_t id_base = 1;
};

using PolicyFactory =
    std::function<std::unique_ptr<engine::PlacementPolicy>(const SchemeConfig&, Rng)>;

/// Register a scheme under `name` (see DESIGN.md §9 on adding a policy).
/// The built-in schemes — "one-tree", "qt", "tt", "pt", "oft-tt", "elk-tt",
/// "loss-bin", "batch" — are pre-registered. Re-registering a name replaces
/// the previous factory.
void register_policy(std::string name, PolicyFactory factory);

/// All registered scheme names, sorted.
[[nodiscard]] std::vector<std::string> registered_policies();

/// Construct the named scheme's placement policy. Throws ContractViolation
/// for unknown names.
[[nodiscard]] std::unique_ptr<engine::PlacementPolicy> make_policy(
    std::string_view name, const SchemeConfig& config, Rng rng);

/// Construct a generic engine::CoreServer over the named policy. The
/// durable API is usable iff the policy's info().durable is set.
[[nodiscard]] std::unique_ptr<engine::CoreServer> make_server(std::string_view name,
                                                              const SchemeConfig& config,
                                                              Rng rng);

/// Legacy enum-keyed constructor for the four core LKH schemes.
/// `s_period_epochs` (K) is ignored by the one-keytree and PT schemes.
[[nodiscard]] std::unique_ptr<RekeyServer> make_server(SchemeKind kind, unsigned degree,
                                                       unsigned s_period_epochs, Rng rng);

/// Construct a shard-parallel engine: `shards` instances of the named
/// scheme (each over a disjoint id range, RNG-forked in shard order after
/// the top DEK) merged under one engine::ShardedRekeyCore. `shards <= 1`
/// returns the plain unsharded CoreServer — byte-identical to make_server.
/// Only schemes that honor SchemeConfig::id_base can be sharded; others
/// throw ContractViolation. `config.id_base` must be left at its default.
[[nodiscard]] std::unique_ptr<engine::DurableRekeyServer> make_sharded_server(
    std::string_view name, const SchemeConfig& config, unsigned shards, Rng rng);

}  // namespace gk::partition
