#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "engine/core_server.h"
#include "engine/placement_policy.h"
#include "losshomo/loss_bin_policy.h"
#include "partition/adaptive.h"
#include "partition/server.h"

namespace gk::partition {

/// Structural parameters a policy factory may consume; fields irrelevant to
/// a given scheme are ignored (e.g. bins for "qt", S-period for "pt").
struct SchemeConfig {
  unsigned degree = 4;
  /// The paper's K = Ts/Tp (QT/TT/OFT-TT/ELK-TT; 0 disables the S-stage).
  unsigned s_period_epochs = 0;
  /// Loss-bin ceilings for "loss-bin" (ascending; last bin absorbs the rest).
  std::vector<double> bin_upper_bounds = {0.05, 1.0};
  losshomo::Placement placement = losshomo::Placement::kLossHomogenized;
};

using PolicyFactory =
    std::function<std::unique_ptr<engine::PlacementPolicy>(const SchemeConfig&, Rng)>;

/// Register a scheme under `name` (see DESIGN.md §9 on adding a policy).
/// The built-in schemes — "one-tree", "qt", "tt", "pt", "oft-tt", "elk-tt",
/// "loss-bin", "batch" — are pre-registered. Re-registering a name replaces
/// the previous factory.
void register_policy(std::string name, PolicyFactory factory);

/// All registered scheme names, sorted.
[[nodiscard]] std::vector<std::string> registered_policies();

/// Construct the named scheme's placement policy. Throws ContractViolation
/// for unknown names.
[[nodiscard]] std::unique_ptr<engine::PlacementPolicy> make_policy(
    std::string_view name, const SchemeConfig& config, Rng rng);

/// Construct a generic engine::CoreServer over the named policy. The
/// durable API is usable iff the policy's info().durable is set.
[[nodiscard]] std::unique_ptr<engine::CoreServer> make_server(std::string_view name,
                                                              const SchemeConfig& config,
                                                              Rng rng);

/// Legacy enum-keyed constructor for the four core LKH schemes.
/// `s_period_epochs` (K) is ignored by the one-keytree and PT schemes.
[[nodiscard]] std::unique_ptr<RekeyServer> make_server(SchemeKind kind, unsigned degree,
                                                       unsigned s_period_epochs, Rng rng);

}  // namespace gk::partition
