#pragma once

#include <memory>

#include "common/rng.h"
#include "partition/adaptive.h"
#include "partition/server.h"

namespace gk::partition {

/// Construct a rekey server for the given scheme. `s_period_epochs` (K) is
/// ignored by the one-keytree and PT schemes.
[[nodiscard]] std::unique_ptr<RekeyServer> make_server(SchemeKind kind, unsigned degree,
                                                       unsigned s_period_epochs, Rng rng);

}  // namespace gk::partition
