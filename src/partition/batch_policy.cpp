#include "partition/batch_policy.h"

namespace gk::partition {

BatchPolicy::BatchPolicy(unsigned degree, Rng rng) : tree_(degree, rng) {
  info_.name = "batch";
}

BatchPolicy::Admission BatchPolicy::admit(const workload::MemberProfile& profile) {
  const auto grant = tree_.insert(profile.id);
  return {{grant.individual_key, grant.leaf_id}, 0};
}

void BatchPolicy::evict(workload::MemberId member, std::uint32_t /*partition*/) {
  pending_leaves_.push_back(member);
}

lkh::RekeyMessage BatchPolicy::emit(std::uint64_t epoch) {
  while (!pending_leaves_.empty()) {
    const auto member = pending_leaves_.back();
    pending_leaves_.pop_back();
    tree_.remove(member);
  }
  return tree_.commit(epoch);
}

crypto::VersionedKey BatchPolicy::group_key() const { return tree_.root_key(); }

crypto::KeyId BatchPolicy::group_key_id() const { return tree_.root_id(); }

std::vector<crypto::KeyId> BatchPolicy::member_path(workload::MemberId member,
                                                    std::uint32_t /*partition*/) const {
  return tree_.path_ids(member);
}

}  // namespace gk::partition
