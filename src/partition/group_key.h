#pragma once

#include "engine/group_key.h"

namespace gk::partition {

/// Moved to engine/ with the policy/mechanism split; alias kept for the
/// historical partition:: spelling.
using GroupKeyManager = engine::GroupKeyManager;

}  // namespace gk::partition
