#include "partition/elk_tt_policy.h"

namespace gk::partition {

ElkTtPolicy::ElkTtPolicy(unsigned s_period_epochs, Rng rng)
    : ids_(lkh::IdAllocator::create()),
      s_tree_{rng.fork(), 16, 16, ids_},
      l_tree_{rng.fork(), 16, 16, ids_},
      dek_(rng.fork(), ids_) {
  info_.name = "elk-tt";
  info_.split_partitions = s_period_epochs > 0;
  info_.migrate_after = s_period_epochs;
}

ElkTtPolicy::Admission ElkTtPolicy::admit(const workload::MemberProfile& profile) {
  const bool to_s = info_.migrate_after > 0;
  (to_s ? s_tree_ : l_tree_).join(profile.id);
  live_.insert(workload::raw(profile.id));
  // ELK admission is broadcast-free and the grant is issued post-commit via
  // grant_for(), per the interval-boundary discipline: the registration
  // carries no key material.
  return {{}, to_s ? 0u : 1u};
}

void ElkTtPolicy::evict(workload::MemberId member, std::uint32_t partition) {
  (partition == 0 ? s_tree_ : l_tree_).leave(member, pending_);
  live_.erase(workload::raw(member));
}

std::optional<crypto::KeyId> ElkTtPolicy::migrate(workload::MemberId member) {
  // ELK leaf keys are plain random values, but the member's L-path is new,
  // so it needs a unicast re-grant either way.
  s_tree_.leave(member, pending_);
  l_tree_.join(member);
  regrants_.push_back(member);
  return std::nullopt;  // re-granted out of band
}

lkh::RekeyMessage ElkTtPolicy::emit(std::uint64_t epoch) {
  contributions_ = std::move(pending_);
  pending_ = {};

  // Interval boundary: both trees refresh one-way (free).
  s_tree_.end_epoch();
  l_tree_.end_epoch();
  for (const auto member : s_tree_.relocated())
    if (live_.count(workload::raw(member)) != 0) regrants_.push_back(member);
  for (const auto member : l_tree_.relocated())
    if (live_.count(workload::raw(member)) != 0) regrants_.push_back(member);

  contributions_.epoch = epoch;
  return {};  // whole-key wraps are appended by apply_dek()
}

void ElkTtPolicy::apply_dek(const engine::EpochCounts& counts, lkh::RekeyMessage& out) {
  const bool compromised = counts.s_departures + counts.l_departures > 0;
  if (compromised || counts.joins > 0) {
    dek_.rotate();
    if (!compromised) dek_.wrap_under_previous(out);
    if (s_tree_.size() > 0) {
      const auto root = s_tree_.group_key();
      dek_.wrap_under(root.key, s_tree_.root_id(), root.version, out);
    }
    if (l_tree_.size() > 0) {
      const auto root = l_tree_.group_key();
      dek_.wrap_under(root.key, l_tree_.root_id(), root.version, out);
    }
  }
  dek_.stamp(out);
}

std::vector<crypto::KeyId> ElkTtPolicy::member_path(workload::MemberId member,
                                                    std::uint32_t partition) const {
  // ELK's unicast grant is the path, leaf first; the interest set is its
  // node ids (leaf included — ELK leaves are shared split points) + DEK.
  std::vector<crypto::KeyId> path;
  for (const auto& entry : tree(partition).grant_for(member)) path.push_back(entry.id);
  path.push_back(dek_.id());
  return path;
}

}  // namespace gk::partition
