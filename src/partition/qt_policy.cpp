#include "partition/qt_policy.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

QtPolicy::QtPolicy(unsigned degree, unsigned s_period_epochs, Rng rng,
                   std::shared_ptr<lkh::IdAllocator> ids)
    : ids_(ids != nullptr ? std::move(ids) : lkh::IdAllocator::create()),
      queue_(rng.fork(), ids_),
      l_tree_(degree, rng.fork(), ids_),
      dek_(rng.fork(), ids_) {
  info_.name = "qt";
  info_.split_partitions = s_period_epochs > 0;
  info_.migrate_after = s_period_epochs;
  info_.durable = true;
}

QtPolicy::Admission QtPolicy::admit(const workload::MemberProfile& profile) {
  if (info_.migrate_after == 0) {
    const auto grant = l_tree_.insert(profile.id);
    return {{grant.individual_key, grant.leaf_id}, 1};
  }
  const auto grant = queue_.insert(profile.id);
  epoch_arrivals_.push_back(profile.id);
  return {{grant.individual_key, grant.leaf_id}, 0};
}

void QtPolicy::evict(workload::MemberId member, std::uint32_t partition) {
  if (partition == 0)
    queue_.remove(member);
  else
    l_tree_.remove(member);
}

std::optional<crypto::KeyId> QtPolicy::migrate(workload::MemberId member) {
  const auto individual = queue_.individual_key(member);
  queue_.remove(member);
  const auto grant = l_tree_.insert_with_key(member, individual);
  return grant.leaf_id;
}

lkh::RekeyMessage QtPolicy::emit(std::uint64_t epoch) { return l_tree_.commit(epoch); }

void QtPolicy::wrap_compromised(lkh::RekeyMessage& out) {
  // The departed members held the DEK directly, so every queue resident
  // needs an individual re-wrap — the queue's whole cost model.
  auto queue_wraps =
      queue_.wrap_for_all(dek_.current().key, dek_.id(), dek_.current().version);
  out.wraps.insert(out.wraps.end(), queue_wraps.begin(), queue_wraps.end());
  if (!l_tree_.empty())
    dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                    l_tree_.root_key().version, out);
}

void QtPolicy::wrap_arrivals(lkh::RekeyMessage& out) {
  if (info_.migrate_after == 0) {
    if (!l_tree_.empty())
      dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                      l_tree_.root_key().version, out);
    return;
  }
  // Each arrival still resident in the queue needs one individual wrap.
  for (const auto member : epoch_arrivals_)
    if (queue_.contains(member))
      out.wraps.push_back(
          queue_.wrap_for(member, dek_.current().key, dek_.id(), dek_.current().version));
}

std::vector<crypto::KeyId> QtPolicy::member_path(workload::MemberId member,
                                                 std::uint32_t partition) const {
  std::vector<crypto::KeyId> path;
  if (partition != 0) path = l_tree_.path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<std::uint8_t> QtPolicy::save_policy_state() const {
  common::ByteWriter out;
  out.u32(info_.migrate_after);
  queue_.save_state(out);
  out.blob(lkh::snapshot_tree_exact(l_tree_));
  return out.take();
}

void QtPolicy::restore_policy_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  GK_ENSURE_MSG(in.u32() == info_.migrate_after,
                "restored state has a different S-period");
  queue_.restore_state(in);
  auto restored = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  l_tree_ = std::move(restored);
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
}

engine::PlacementPolicy::LegacyState QtPolicy::restore_legacy(
    std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  LegacyState legacy;
  legacy.epoch = in.u64();
  GK_ENSURE_MSG(in.u32() == info_.migrate_after,
                "restored state has a different S-period");
  legacy.id_watermark = in.u64();
  queue_.restore_state(in);
  auto restored = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  l_tree_ = std::move(restored);
  dek_.restore_state(in);
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    const auto joined_epoch = in.u64();
    const std::uint32_t partition = in.u8() != 0 ? 0 : 1;
    legacy.ledger.push_back({raw_id, joined_epoch, partition});
  }
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  return legacy;
}

std::vector<engine::PathKey> QtPolicy::member_path_keys(workload::MemberId member,
                                                        std::uint32_t partition) const {
  std::vector<engine::PathKey> path;
  if (partition != 0)
    for (const auto& entry : l_tree_.path_keys(member))
      path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 QtPolicy::member_individual_key(workload::MemberId member,
                                               std::uint32_t partition) const {
  return partition == 0 ? queue_.individual_key(member) : l_tree_.individual_key(member);
}

crypto::KeyId QtPolicy::member_leaf_id(workload::MemberId member,
                                       std::uint32_t partition) const {
  return partition == 0 ? queue_.leaf_id(member) : l_tree_.leaf_id(member);
}

}  // namespace gk::partition
