#pragma once

#include <memory>

#include "engine/core_server.h"
#include "partition/server.h"
#include "partition/tt_policy.h"

namespace gk::partition {

/// TT-scheme server (Section 3.2): engine::RekeyCore running a TtPolicy.
/// See TtPolicy for the scheme's migration discipline.
class TtServer final : public engine::CoreServer {
 public:
  TtServer(unsigned degree, unsigned s_period_epochs, Rng rng)
      : CoreServer(std::make_unique<TtPolicy>(degree, s_period_epochs, rng)) {}

  [[nodiscard]] std::size_t s_partition_size() const noexcept {
    return policy().s_partition_size();
  }
  [[nodiscard]] std::size_t l_partition_size() const noexcept {
    return policy().l_partition_size();
  }
  [[nodiscard]] const std::vector<engine::Relocation>& last_relocations()
      const noexcept {
    return core_.last_relocations();
  }

 private:
  [[nodiscard]] const TtPolicy& policy() const noexcept {
    return static_cast<const TtPolicy&>(core_.policy());
  }
};

}  // namespace gk::partition
