#pragma once

#include <memory>
#include <unordered_map>

#include "lkh/key_tree.h"
#include "partition/group_key.h"
#include "partition/server.h"

namespace gk::partition {

/// TT-scheme (Section 3.2): two balanced key trees — a short-term S-tree
/// every member joins first, and a long-term L-tree members migrate to
/// after surviving `s_period_epochs` rekey periods. Both sit under the
/// session DEK managed by GroupKeyManager.
///
/// Migrations are batched into the periodic commit: the member is removed
/// from the S-tree and re-inserted into the L-tree *with the same
/// individual key*, so the move costs multicast wraps only (no new
/// registration unicast) and never rotates the DEK by itself — the migrant
/// is still an authorized member.
class TtServer final : public DurableRekeyServer {
 public:
  TtServer(unsigned degree, unsigned s_period_epochs, Rng rng);

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::size_t size() const override { return records_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override;

  [[nodiscard]] std::uint64_t epoch() const override { return epoch_; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  void restore_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<PathKey> member_path_keys(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const override;

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }

  /// New leaf ids assigned by migrations in the last end_epoch().
  [[nodiscard]] const std::vector<Relocation>& last_relocations() const noexcept {
    return relocations_;
  }

  void set_executor(common::ThreadPool* pool) override {
    s_tree_.set_executor(pool);
    l_tree_.set_executor(pool);
  }
  void reserve(std::size_t expected_members) override {
    l_tree_.reserve(expected_members);
    records_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override {
    s_tree_.set_wrap_cache(enabled);
    l_tree_.set_wrap_cache(enabled);
  }

 private:
  struct Record {
    std::uint64_t joined_epoch = 0;
    bool in_s = true;
  };

  unsigned s_period_epochs_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  lkh::KeyTree s_tree_;
  lkh::KeyTree l_tree_;
  GroupKeyManager dek_;
  std::unordered_map<std::uint64_t, Record> records_;
  std::vector<Relocation> relocations_;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_s_leaves_ = 0;
  std::size_t staged_l_leaves_ = 0;
};

}  // namespace gk::partition
