#pragma once

#include <cstdint>
#include <vector>

#include "analytic/two_partition_model.h"

namespace gk::partition {

/// Which server construction to run.
enum class SchemeKind : std::uint8_t { kOneKeyTree, kQt, kTt, kPt };

[[nodiscard]] const char* to_string(SchemeKind kind) noexcept;

/// Section 3.4's control loop: "at the beginning of a session, the key
/// server just maintains one key tree; later, from its collected trace data
/// it can compute the group statistics such as Ms, Ml, and alpha. Then
/// using our analytic model, the key server can choose the best scheme."
///
/// The controller ingests completed membership durations, fits a
/// two-exponential mixture by EM, and sweeps the analytic model over K to
/// recommend {scheme, K}. PT is excluded from recommendations because it
/// needs oracle class knowledge; it is reported for reference only.
class AdaptiveController {
 public:
  AdaptiveController(double rekey_period, unsigned degree);

  /// Record the full duration of a member that just departed.
  void observe_duration(double seconds);

  [[nodiscard]] std::size_t observations() const noexcept { return durations_.size(); }

  /// Maximum-likelihood-ish fit of the two-class model from observations.
  struct MixtureFit {
    double short_mean = 0.0;     ///< Ms estimate
    double long_mean = 0.0;      ///< Ml estimate
    double short_fraction = 0.0; ///< alpha estimate
    bool well_separated = false; ///< Ml / Ms large enough to bother
  };
  [[nodiscard]] MixtureFit fit(unsigned em_iterations = 50) const;

  struct Recommendation {
    SchemeKind scheme = SchemeKind::kOneKeyTree;
    unsigned s_period_epochs = 0;  ///< chosen K (0 for one-keytree)
    double predicted_cost = 0.0;
    double baseline_cost = 0.0;    ///< one-keytree cost at the fit
    analytic::TwoPartitionParams params;  ///< the fitted model inputs
  };
  /// Sweep K = 0..max_k for QT and TT at the fitted parameters and return
  /// the cheapest configuration. With fewer than `min_observations`
  /// samples, or a poorly separated fit, recommends the one-keytree
  /// baseline (the safe default the paper falls back to).
  [[nodiscard]] Recommendation recommend(double group_size, unsigned max_k = 20,
                                         std::size_t min_observations = 200) const;

 private:
  double rekey_period_;
  unsigned degree_;
  std::vector<double> durations_;
};

}  // namespace gk::partition
