#include "partition/one_keytree_server.h"

namespace gk::partition {

OneKeyTreeServer::OneKeyTreeServer(unsigned degree, Rng rng) : tree_(degree, rng) {}

Registration OneKeyTreeServer::join(const workload::MemberProfile& profile) {
  const auto grant = tree_.insert(profile.id);
  ++staged_joins_;
  return {grant.individual_key, grant.leaf_id};
}

void OneKeyTreeServer::leave(workload::MemberId member) {
  tree_.remove(member);
  ++staged_leaves_;
}

EpochOutput OneKeyTreeServer::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.l_departures = staged_leaves_;
  out.message = tree_.commit(epoch_);
  ++epoch_;
  staged_joins_ = 0;
  staged_leaves_ = 0;
  return out;
}

crypto::VersionedKey OneKeyTreeServer::group_key() const { return tree_.root_key(); }

crypto::KeyId OneKeyTreeServer::group_key_id() const { return tree_.root_id(); }

std::vector<crypto::KeyId> OneKeyTreeServer::member_path(
    workload::MemberId member) const {
  return tree_.path_ids(member);
}

}  // namespace gk::partition
