#include "partition/one_keytree_server.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

OneKeyTreeServer::OneKeyTreeServer(unsigned degree, Rng rng) : tree_(degree, rng) {}

Registration OneKeyTreeServer::join(const workload::MemberProfile& profile) {
  const auto grant = tree_.insert(profile.id);
  ++staged_joins_;
  return {grant.individual_key, grant.leaf_id};
}

void OneKeyTreeServer::leave(workload::MemberId member) {
  tree_.remove(member);
  ++staged_leaves_;
}

EpochOutput OneKeyTreeServer::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.l_departures = staged_leaves_;
  out.message = tree_.commit(epoch_);
  ++epoch_;
  staged_joins_ = 0;
  staged_leaves_ = 0;
  return out;
}

crypto::VersionedKey OneKeyTreeServer::group_key() const { return tree_.root_key(); }

crypto::KeyId OneKeyTreeServer::group_key_id() const { return tree_.root_id(); }

std::vector<crypto::KeyId> OneKeyTreeServer::member_path(
    workload::MemberId member) const {
  return tree_.path_ids(member);
}

std::vector<std::uint8_t> OneKeyTreeServer::save_state() const {
  GK_ENSURE_MSG(staged_joins_ == 0 && staged_leaves_ == 0,
                "commit staged changes before saving server state");
  common::ByteWriter out;
  out.u64(epoch_);
  out.u64(tree_.ids()->watermark());
  out.blob(lkh::snapshot_tree_exact(tree_));
  return out.take();
}

void OneKeyTreeServer::restore_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  epoch_ = in.u64();
  const auto watermark = in.u64();
  auto restored = lkh::restore_tree_exact(in.blob());
  GK_ENSURE_MSG(restored.degree() == tree_.degree(),
                "restored state has a different tree degree");
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  restored.ids()->reset_to(watermark);
  tree_ = std::move(restored);
  staged_joins_ = 0;
  staged_leaves_ = 0;
}

std::vector<PathKey> OneKeyTreeServer::member_path_keys(
    workload::MemberId member) const {
  std::vector<PathKey> path;
  for (const auto& entry : tree_.path_keys(member)) path.push_back({entry.id, entry.key});
  return path;
}

crypto::Key128 OneKeyTreeServer::member_individual_key(workload::MemberId member) const {
  return tree_.individual_key(member);
}

crypto::KeyId OneKeyTreeServer::member_leaf_id(workload::MemberId member) const {
  return tree_.leaf_id(member);
}

}  // namespace gk::partition
