#pragma once

#include <memory>

#include "lkh/key_tree.h"
#include "partition/server.h"

namespace gk::partition {

/// The baseline every prior scheme uses (Section 2.1): one balanced key
/// tree whose root *is* the group data-encryption key.
class OneKeyTreeServer final : public DurableRekeyServer {
 public:
  OneKeyTreeServer(unsigned degree, Rng rng);

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::size_t size() const override { return tree_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override;

  [[nodiscard]] std::uint64_t epoch() const override { return epoch_; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  void restore_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<PathKey> member_path_keys(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const override;

  void set_executor(common::ThreadPool* pool) override { tree_.set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    tree_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override { tree_.set_wrap_cache(enabled); }

  [[nodiscard]] const lkh::KeyTree& tree() const noexcept { return tree_; }

 private:
  lkh::KeyTree tree_;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_leaves_ = 0;
};

}  // namespace gk::partition
