#pragma once

#include <memory>

#include "engine/core_server.h"
#include "lkh/key_tree.h"
#include "partition/one_tree_policy.h"
#include "partition/server.h"

namespace gk::partition {

/// The baseline every prior scheme uses (Section 2.1): one balanced key
/// tree whose root *is* the group data-encryption key. A thin facade over
/// engine::RekeyCore running an OneTreePolicy.
class OneKeyTreeServer final : public engine::CoreServer {
 public:
  OneKeyTreeServer(unsigned degree, Rng rng)
      : CoreServer(std::make_unique<OneTreePolicy>(degree, rng)) {}

  [[nodiscard]] const lkh::KeyTree& tree() const noexcept {
    return static_cast<const OneTreePolicy&>(core_.policy()).tree();
  }
};

}  // namespace gk::partition
