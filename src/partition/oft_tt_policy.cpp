#include "partition/oft_tt_policy.h"

namespace gk::partition {

OftTtPolicy::OftTtPolicy(unsigned s_period_epochs, Rng rng)
    : ids_(lkh::IdAllocator::create()),
      rng_(rng.fork()),
      s_tree_(rng.fork(), ids_),
      l_tree_(rng.fork(), ids_),
      dek_(rng.fork(), ids_) {
  info_.name = "oft-tt";
  info_.split_partitions = s_period_epochs > 0;
  info_.migrate_after = s_period_epochs;
}

OftTtPolicy::Admission OftTtPolicy::admit(const workload::MemberProfile& profile) {
  const bool to_s = info_.migrate_after > 0;
  auto& tree = to_s ? s_tree_ : l_tree_;
  lkh::RekeyMessage op;
  const auto grant = tree.join(profile.id, op);
  notify(OftOpEvent::Kind::kJoin, profile.id, op);
  pending_.append(std::move(op));
  return {{grant.leaf_key, grant.leaf_id}, to_s ? 0u : 1u};
}

void OftTtPolicy::evict(workload::MemberId member, std::uint32_t partition) {
  lkh::RekeyMessage op;
  if (partition == 0)
    s_tree_.leave(member, op);
  else
    l_tree_.leave(member, op);
  notify(OftOpEvent::Kind::kLeave, member, op);
  pending_.append(std::move(op));
}

std::optional<crypto::KeyId> OftTtPolicy::migrate(workload::MemberId member) {
  // OFT leaf keys are entangled with the functional path keys, so the
  // migrant gets a fresh leaf in the L-tree via a unicast grant.
  lkh::RekeyMessage out_op;
  s_tree_.leave(member, out_op);
  notify(OftOpEvent::Kind::kMigrateOut, member, out_op);
  pending_.append(std::move(out_op));

  lkh::RekeyMessage in_op;
  auto grant = l_tree_.join(member, in_op);
  migrations_.push_back({member, std::move(grant)});
  notify(OftOpEvent::Kind::kMigrateIn, member, in_op);
  pending_.append(std::move(in_op));
  return std::nullopt;  // re-granted out of band, not an LKH-style relocation
}

lkh::RekeyMessage OftTtPolicy::emit(std::uint64_t /*epoch*/) {
  auto message = std::move(pending_);
  pending_ = {};
  return message;
}

void OftTtPolicy::apply_dek(const engine::EpochCounts& counts, lkh::RekeyMessage& out) {
  lkh::RekeyMessage dek_message;
  const bool compromised = counts.s_departures + counts.l_departures > 0;
  if (compromised) {
    dek_.rotate();
    if (!s_tree_.empty()) {
      const auto root = s_tree_.group_key();
      dek_.wrap_under(root.key, s_tree_.root_id(), root.version, dek_message);
    }
    if (!l_tree_.empty()) {
      const auto root = l_tree_.group_key();
      dek_.wrap_under(root.key, l_tree_.root_id(), root.version, dek_message);
    }
  } else if (counts.joins > 0) {
    dek_.rotate();
    dek_.wrap_under_previous(dek_message);
    const oft::OftTree& arrivals = info_.migrate_after > 0 ? s_tree_ : l_tree_;
    if (!arrivals.empty()) {
      const auto root = arrivals.group_key();
      dek_.wrap_under(root.key, arrivals.root_id(), root.version, dek_message);
    }
    if (counts.migrations > 0 && !l_tree_.empty() && info_.migrate_after > 0) {
      // Migrants folded into the L-tree cannot use the S-root wrap.
      const auto root = l_tree_.group_key();
      dek_.wrap_under(root.key, l_tree_.root_id(), root.version, dek_message);
    }
  } else if (counts.migrations > 0 && !l_tree_.empty()) {
    // Migration-only epoch: the DEK stays, but the L-tree's functional root
    // changed under the migrants' joins, so re-wrap the *current* DEK for
    // the L-tree audience (the S audience keeps its copy).
    const auto root = l_tree_.group_key();
    dek_.wrap_under(root.key, l_tree_.root_id(), root.version, dek_message);
  }
  notify(OftOpEvent::Kind::kGroupKey, workload::MemberId{}, dek_message);
  out.append(std::move(dek_message));
  dek_.stamp(out);
}

std::vector<crypto::KeyId> OftTtPolicy::member_path(workload::MemberId member,
                                                    std::uint32_t partition) const {
  const auto& tree = partition == 0 ? s_tree_ : l_tree_;
  auto info = tree.path_info(member);
  std::vector<crypto::KeyId> path(info.path.begin() + 1, info.path.end());
  path.push_back(dek_.id());
  return path;
}

}  // namespace gk::partition
