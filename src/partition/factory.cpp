#include "partition/factory.h"

#include <algorithm>
#include <map>

#include "common/ensure.h"
#include "engine/sharded_core.h"
#include "partition/batch_policy.h"
#include "partition/elk_tt_policy.h"
#include "partition/oft_tt_policy.h"
#include "partition/one_tree_policy.h"
#include "partition/pt_policy.h"
#include "partition/qt_policy.h"
#include "partition/tt_policy.h"

namespace gk::partition {

namespace {

/// A pre-based allocator for schemes that honor SchemeConfig::id_base;
/// nullptr keeps the policy's own default (byte-identical to the
/// pre-sharding constructors).
std::shared_ptr<lkh::IdAllocator> based_ids(const SchemeConfig& config) {
  return config.id_base > 1 ? lkh::IdAllocator::create(config.id_base) : nullptr;
}

std::map<std::string, PolicyFactory, std::less<>>& registry() {
  static std::map<std::string, PolicyFactory, std::less<>> policies = {
      {"one-tree",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<OneTreePolicy>(config.degree, rng, based_ids(config));
       }},
      {"qt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<QtPolicy>(config.degree, config.s_period_epochs, rng,
                                           based_ids(config));
       }},
      {"tt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<TtPolicy>(config.degree, config.s_period_epochs, rng,
                                           based_ids(config));
       }},
      {"pt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<PtPolicy>(config.degree, rng, based_ids(config));
       }},
      {"oft-tt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<OftTtPolicy>(config.s_period_epochs, rng);
       }},
      {"elk-tt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<ElkTtPolicy>(config.s_period_epochs, rng);
       }},
      {"loss-bin",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<losshomo::LossBinPolicy>(
             config.degree, config.bin_upper_bounds, config.placement, rng);
       }},
      {"batch",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<BatchPolicy>(config.degree, rng);
       }},
  };
  return policies;
}

}  // namespace

void register_policy(std::string name, PolicyFactory factory) {
  GK_ENSURE_MSG(!name.empty(), "policy name must be nonempty");
  GK_ENSURE_MSG(factory != nullptr, "policy factory must be callable");
  registry()[std::move(name)] = std::move(factory);
}

std::vector<std::string> registered_policies() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<engine::PlacementPolicy> make_policy(std::string_view name,
                                                     const SchemeConfig& config, Rng rng) {
  const auto it = registry().find(name);
  GK_ENSURE_MSG(it != registry().end(), "unknown scheme '" << name << "'");
  auto policy = it->second(config, rng);
  GK_ENSURE_MSG(policy != nullptr, "scheme '" << name << "' factory returned nothing");
  return policy;
}

std::unique_ptr<engine::CoreServer> make_server(std::string_view name,
                                                const SchemeConfig& config, Rng rng) {
  return std::make_unique<engine::CoreServer>(make_policy(name, config, rng));
}

std::unique_ptr<RekeyServer> make_server(SchemeKind kind, unsigned degree,
                                         unsigned s_period_epochs, Rng rng) {
  SchemeConfig config;
  config.degree = degree;
  config.s_period_epochs = s_period_epochs;
  switch (kind) {
    case SchemeKind::kOneKeyTree:
      return make_server("one-tree", config, rng);
    case SchemeKind::kQt:
      return make_server("qt", config, rng);
    case SchemeKind::kTt:
      return make_server("tt", config, rng);
    case SchemeKind::kPt:
      return make_server("pt", config, rng);
  }
  GK_ENSURE_MSG(false, "unknown scheme kind");
  return nullptr;
}

std::unique_ptr<engine::DurableRekeyServer> make_sharded_server(
    std::string_view name, const SchemeConfig& config, unsigned shards, Rng rng) {
  GK_ENSURE_MSG(config.id_base == 1,
                "make_sharded_server owns id_base; leave it at the default");
  if (shards <= 1) return make_server(name, config, rng);
  // RNG fork order (the determinism contract): top DEK first, then one fork
  // per shard policy in shard order.
  Rng top_rng = rng.fork();
  // 2^40 ids per shard: collision-free for any realizable tree, and shard
  // bases stay well clear of the top allocator (which only ever issues the
  // DEK id from base 1).
  constexpr unsigned kShardIdBits = 40;
  std::vector<std::unique_ptr<engine::PlacementPolicy>> policies;
  policies.reserve(shards);
  for (unsigned shard = 0; shard < shards; ++shard) {
    SchemeConfig shard_config = config;
    shard_config.id_base = (std::uint64_t{shard} + 1) << kShardIdBits;
    policies.push_back(make_policy(name, shard_config, rng.fork()));
    GK_ENSURE_MSG(policies.back()->ids()->watermark() >= shard_config.id_base,
                  "scheme '" << name
                             << "' ignores SchemeConfig::id_base and cannot be sharded");
  }
  return std::make_unique<engine::ShardedRekeyCore>(std::move(policies), top_rng);
}

}  // namespace gk::partition
