#include "partition/factory.h"

#include <algorithm>
#include <map>

#include "common/ensure.h"
#include "partition/batch_policy.h"
#include "partition/elk_tt_policy.h"
#include "partition/oft_tt_policy.h"
#include "partition/one_tree_policy.h"
#include "partition/pt_policy.h"
#include "partition/qt_policy.h"
#include "partition/tt_policy.h"

namespace gk::partition {

namespace {

std::map<std::string, PolicyFactory, std::less<>>& registry() {
  static std::map<std::string, PolicyFactory, std::less<>> policies = {
      {"one-tree",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<OneTreePolicy>(config.degree, rng);
       }},
      {"qt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<QtPolicy>(config.degree, config.s_period_epochs, rng);
       }},
      {"tt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<TtPolicy>(config.degree, config.s_period_epochs, rng);
       }},
      {"pt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<PtPolicy>(config.degree, rng);
       }},
      {"oft-tt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<OftTtPolicy>(config.s_period_epochs, rng);
       }},
      {"elk-tt",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<ElkTtPolicy>(config.s_period_epochs, rng);
       }},
      {"loss-bin",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<losshomo::LossBinPolicy>(
             config.degree, config.bin_upper_bounds, config.placement, rng);
       }},
      {"batch",
       [](const SchemeConfig& config, Rng rng) -> std::unique_ptr<engine::PlacementPolicy> {
         return std::make_unique<BatchPolicy>(config.degree, rng);
       }},
  };
  return policies;
}

}  // namespace

void register_policy(std::string name, PolicyFactory factory) {
  GK_ENSURE_MSG(!name.empty(), "policy name must be nonempty");
  GK_ENSURE_MSG(factory != nullptr, "policy factory must be callable");
  registry()[std::move(name)] = std::move(factory);
}

std::vector<std::string> registered_policies() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<engine::PlacementPolicy> make_policy(std::string_view name,
                                                     const SchemeConfig& config, Rng rng) {
  const auto it = registry().find(name);
  GK_ENSURE_MSG(it != registry().end(), "unknown scheme '" << name << "'");
  auto policy = it->second(config, rng);
  GK_ENSURE_MSG(policy != nullptr, "scheme '" << name << "' factory returned nothing");
  return policy;
}

std::unique_ptr<engine::CoreServer> make_server(std::string_view name,
                                                const SchemeConfig& config, Rng rng) {
  return std::make_unique<engine::CoreServer>(make_policy(name, config, rng));
}

std::unique_ptr<RekeyServer> make_server(SchemeKind kind, unsigned degree,
                                         unsigned s_period_epochs, Rng rng) {
  SchemeConfig config;
  config.degree = degree;
  config.s_period_epochs = s_period_epochs;
  switch (kind) {
    case SchemeKind::kOneKeyTree:
      return make_server("one-tree", config, rng);
    case SchemeKind::kQt:
      return make_server("qt", config, rng);
    case SchemeKind::kTt:
      return make_server("tt", config, rng);
    case SchemeKind::kPt:
      return make_server("pt", config, rng);
  }
  GK_ENSURE_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace gk::partition
