#include "partition/factory.h"

#include "common/ensure.h"
#include "partition/one_keytree_server.h"
#include "partition/pt_server.h"
#include "partition/qt_server.h"
#include "partition/tt_server.h"

namespace gk::partition {

std::unique_ptr<RekeyServer> make_server(SchemeKind kind, unsigned degree,
                                         unsigned s_period_epochs, Rng rng) {
  switch (kind) {
    case SchemeKind::kOneKeyTree:
      return std::make_unique<OneKeyTreeServer>(degree, rng);
    case SchemeKind::kQt:
      return std::make_unique<QtServer>(degree, s_period_epochs, rng);
    case SchemeKind::kTt:
      return std::make_unique<TtServer>(degree, s_period_epochs, rng);
    case SchemeKind::kPt:
      return std::make_unique<PtServer>(degree, rng);
  }
  GK_ENSURE_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace gk::partition
