#pragma once

#include <memory>
#include <vector>

#include "engine/rekey_core.h"
#include "partition/elk_tt_policy.h"
#include "partition/server.h"

namespace gk::partition {

/// The TT two-partition scheme over ELK trees — completing the paper's
/// "also applicable" claim across all three hierarchical substrates it
/// names (LKH: TtServer, OFT: OftTtServer, ELK: this).
///
/// A bespoke facade over engine::RekeyCore running an ElkTtPolicy — kept
/// because ELK's output splits into sub-key-size contribution records plus
/// whole-key DEK wraps, and admission is broadcast-free with post-commit
/// grants, neither of which fits the RekeyServer registration contract.
class ElkTtServer {
 public:
  ElkTtServer(unsigned s_period_epochs, Rng rng)
      : core_(std::make_unique<ElkTtPolicy>(s_period_epochs, rng)) {}

  /// Stage a join (broadcast-free). The grant is issued post-commit via
  /// grant_for(), per ELK's interval-boundary admission.
  void join(workload::MemberId member) {
    workload::MemberProfile profile;
    profile.id = member;
    core_.join(profile);
  }

  /// Stage a departure (the contribution records accumulate into the
  /// epoch's message).
  void leave(workload::MemberId member) { core_.leave(member); }

  struct Output {
    std::uint64_t epoch = 0;
    /// Sub-key-size contribution records from both partitions.
    elk::ElkRekeyMessage contributions;
    /// Whole-key wraps carrying the session DEK under the partition roots.
    lkh::RekeyMessage dek_wraps;
    std::size_t migrations = 0;
    std::size_t s_departures = 0;
    std::size_t l_departures = 0;

    /// Multicast bits: contributions plus full wrapped keys.
    [[nodiscard]] std::size_t payload_bits() const noexcept {
      return contributions.payload_bits() +
             dek_wraps.cost() * 8 * crypto::WrappedKey::kWireSize;
    }
  };
  Output end_epoch() {
    auto committed = core_.end_epoch();
    Output out;
    out.epoch = committed.epoch;
    out.contributions = policy().take_contributions();
    out.dek_wraps = std::move(committed.message);
    out.migrations = committed.migrations;
    out.s_departures = committed.s_departures;
    out.l_departures = committed.l_departures;
    return out;
  }

  [[nodiscard]] std::vector<elk::ElkTree::PathKey> grant_for(
      workload::MemberId member) const {
    return tree_of(member).grant_for(member);
  }
  /// Members needing a re-grant after the last commit (splits/migrations).
  [[nodiscard]] const std::vector<workload::MemberId>& regrants() const noexcept {
    return policy().regrants();
  }

  [[nodiscard]] crypto::VersionedKey group_key() const { return core_.group_key(); }
  [[nodiscard]] crypto::KeyId group_key_id() const { return core_.group_key_id(); }
  [[nodiscard]] std::size_t size() const noexcept { return core_.size(); }
  [[nodiscard]] bool member_in_s(workload::MemberId member) const {
    return core_.partition_of(member) == 0;
  }
  [[nodiscard]] std::size_t s_partition_size() const noexcept {
    return policy().s_partition_size();
  }
  [[nodiscard]] std::size_t l_partition_size() const noexcept {
    return policy().l_partition_size();
  }
  [[nodiscard]] const elk::ElkTree& tree_of(workload::MemberId member) const {
    return policy().tree(core_.partition_of(member));
  }

 private:
  [[nodiscard]] ElkTtPolicy& policy() noexcept {
    return static_cast<ElkTtPolicy&>(core_.policy());
  }
  [[nodiscard]] const ElkTtPolicy& policy() const noexcept {
    return static_cast<const ElkTtPolicy&>(core_.policy());
  }

  engine::RekeyCore core_;
};

}  // namespace gk::partition
