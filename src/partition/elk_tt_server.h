#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "elk/elk_tree.h"
#include "partition/group_key.h"
#include "partition/server.h"

namespace gk::partition {

/// The TT two-partition scheme over ELK trees — completing the paper's
/// "also applicable" claim across all three hierarchical substrates it
/// names (LkH: TtServer, OFT: OftTtServer, ELK: this).
///
/// ELK composes particularly well with the partition idea: joins are
/// broadcast-free on either tree, so the S-partition only ever pays for
/// the *departures* of short-lived members — and those disturb a tree of
/// size Ns, not N. Unlike OFT, ELK's contribution records are id/version
/// keyed with no client-side fold order, so a whole epoch's operations
/// batch into one message safely.
class ElkTtServer {
 public:
  ElkTtServer(unsigned s_period_epochs, Rng rng);

  /// Stage a join (broadcast-free). The grant is issued post-commit via
  /// grant_for(), per ELK's interval-boundary admission.
  void join(workload::MemberId member);

  /// Stage a departure (the contribution records accumulate into the
  /// epoch's message).
  void leave(workload::MemberId member);

  struct Output {
    std::uint64_t epoch = 0;
    /// Sub-key-size contribution records from both partitions.
    elk::ElkRekeyMessage contributions;
    /// Whole-key wraps carrying the session DEK under the partition roots.
    lkh::RekeyMessage dek_wraps;
    std::size_t migrations = 0;
    std::size_t s_departures = 0;
    std::size_t l_departures = 0;

    /// Multicast bits: contributions plus full wrapped keys.
    [[nodiscard]] std::size_t payload_bits() const noexcept {
      return contributions.payload_bits() +
             dek_wraps.cost() * 8 * crypto::WrappedKey::kWireSize;
    }
  };
  Output end_epoch();

  [[nodiscard]] std::vector<elk::ElkTree::PathKey> grant_for(
      workload::MemberId member) const;
  /// Members needing a re-grant after the last commit (splits/migrations).
  [[nodiscard]] const std::vector<workload::MemberId>& regrants() const noexcept {
    return regrants_;
  }

  [[nodiscard]] crypto::VersionedKey group_key() const { return dek_.current(); }
  [[nodiscard]] crypto::KeyId group_key_id() const noexcept { return dek_.id(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool member_in_s(workload::MemberId member) const;
  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }
  [[nodiscard]] const elk::ElkTree& tree_of(workload::MemberId member) const;

 private:
  struct Record {
    std::uint64_t joined_epoch = 0;
    bool in_s = true;
  };

  unsigned s_period_epochs_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  elk::ElkTree s_tree_;
  elk::ElkTree l_tree_;
  GroupKeyManager dek_;
  std::unordered_map<std::uint64_t, Record> records_;
  elk::ElkRekeyMessage pending_;
  std::vector<workload::MemberId> regrants_;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_s_leaves_ = 0;
  std::size_t staged_l_leaves_ = 0;
};

}  // namespace gk::partition
