#include "partition/oft_tt_server.h"

#include "common/ensure.h"

namespace gk::partition {

OftTtServer::OftTtServer(unsigned s_period_epochs, Rng rng)
    : s_period_epochs_(s_period_epochs),
      ids_(lkh::IdAllocator::create()),
      rng_(rng.fork()),
      s_tree_(rng.fork(), ids_),
      l_tree_(rng.fork(), ids_),
      dek_(rng.fork(), ids_) {}

Registration OftTtServer::join(const workload::MemberProfile& profile) {
  const bool to_s = s_period_epochs_ > 0;
  auto& tree = to_s ? s_tree_ : l_tree_;
  lkh::RekeyMessage op;
  const auto grant = tree.join(profile.id, op);
  records_.emplace(workload::raw(profile.id), Record{epoch_, to_s});
  ++staged_joins_;
  notify(OpEvent::Kind::kJoin, profile.id, op);
  pending_.append(std::move(op));
  return {grant.leaf_key, grant.leaf_id};
}

void OftTtServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  lkh::RekeyMessage op;
  if (it->second.in_s) {
    s_tree_.leave(member, op);
    ++staged_s_leaves_;
  } else {
    l_tree_.leave(member, op);
    ++staged_l_leaves_;
  }
  records_.erase(it);
  notify(OpEvent::Kind::kLeave, member, op);
  pending_.append(std::move(op));
}

bool OftTtServer::member_in_s(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return it->second.in_s;
}

EpochOutput OftTtServer::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.s_departures = staged_s_leaves_;
  out.l_departures = staged_l_leaves_;

  migrations_.clear();
  if (s_period_epochs_ > 0) {
    std::vector<workload::MemberId> migrants;
    for (const auto& [raw_id, record] : records_) {
      if (record.in_s && epoch_ >= record.joined_epoch + s_period_epochs_)
        migrants.push_back(workload::make_member_id(raw_id));
    }
    for (const auto member : migrants) {
      // OFT leaf keys are entangled with the functional path keys, so the
      // migrant gets a fresh leaf in the L-tree via a unicast grant.
      lkh::RekeyMessage out_op;
      s_tree_.leave(member, out_op);
      notify(OpEvent::Kind::kMigrateOut, member, out_op);
      pending_.append(std::move(out_op));

      lkh::RekeyMessage in_op;
      auto grant = l_tree_.join(member, in_op);
      records_[workload::raw(member)].in_s = false;
      migrations_.push_back({member, std::move(grant)});
      notify(OpEvent::Kind::kMigrateIn, member, in_op);
      pending_.append(std::move(in_op));
    }
    out.migrations = migrants.size();
  }

  out.message = std::move(pending_);
  pending_ = {};

  lkh::RekeyMessage dek_message;
  const bool compromised = staged_s_leaves_ + staged_l_leaves_ > 0;
  if (compromised) {
    dek_.rotate();
    if (!s_tree_.empty()) {
      const auto root = s_tree_.group_key();
      dek_.wrap_under(root.key, s_tree_.root_id(), root.version, dek_message);
    }
    if (!l_tree_.empty()) {
      const auto root = l_tree_.group_key();
      dek_.wrap_under(root.key, l_tree_.root_id(), root.version, dek_message);
    }
  } else if (staged_joins_ > 0) {
    dek_.rotate();
    dek_.wrap_under_previous(dek_message);
    const oft::OftTree& arrivals = s_period_epochs_ > 0 ? s_tree_ : l_tree_;
    if (!arrivals.empty()) {
      const auto root = arrivals.group_key();
      dek_.wrap_under(root.key, arrivals.root_id(), root.version, dek_message);
    }
    if (out.migrations > 0 && !l_tree_.empty() && s_period_epochs_ > 0) {
      // Migrants folded into the L-tree cannot use the S-root wrap.
      const auto root = l_tree_.group_key();
      dek_.wrap_under(root.key, l_tree_.root_id(), root.version, dek_message);
    }
  } else if (out.migrations > 0 && !l_tree_.empty()) {
    // Migration-only epoch: the DEK stays, but the L-tree's functional root
    // changed under the migrants' joins, so re-wrap the *current* DEK for
    // the L-tree audience (the S audience keeps its copy).
    const auto root = l_tree_.group_key();
    dek_.wrap_under(root.key, l_tree_.root_id(), root.version, dek_message);
  }
  notify(OpEvent::Kind::kGroupKey, workload::MemberId{}, dek_message);
  out.message.append(std::move(dek_message));
  dek_.stamp(out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  return out;
}

crypto::VersionedKey OftTtServer::group_key() const { return dek_.current(); }

crypto::KeyId OftTtServer::group_key_id() const { return dek_.id(); }

std::vector<crypto::KeyId> OftTtServer::member_path(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  const auto& tree = it->second.in_s ? s_tree_ : l_tree_;
  auto info = tree.path_info(member);
  std::vector<crypto::KeyId> path(info.path.begin() + 1, info.path.end());
  path.push_back(dek_.id());
  return path;
}

}  // namespace gk::partition
