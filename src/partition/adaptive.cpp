#include "partition/adaptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/ensure.h"

namespace gk::partition {

const char* to_string(SchemeKind kind) noexcept {
  switch (kind) {
    case SchemeKind::kOneKeyTree: return "one-keytree";
    case SchemeKind::kQt: return "QT";
    case SchemeKind::kTt: return "TT";
    case SchemeKind::kPt: return "PT";
  }
  return "?";
}

AdaptiveController::AdaptiveController(double rekey_period, unsigned degree)
    : rekey_period_(rekey_period), degree_(degree) {
  GK_ENSURE(rekey_period > 0.0);
  GK_ENSURE(degree >= 2);
}

void AdaptiveController::observe_duration(double seconds) {
  GK_ENSURE(seconds >= 0.0);
  durations_.push_back(std::max(seconds, 1e-9));
}

AdaptiveController::MixtureFit AdaptiveController::fit(unsigned em_iterations) const {
  MixtureFit out;
  if (durations_.empty()) return out;

  const double mean =
      std::accumulate(durations_.begin(), durations_.end(), 0.0) /
      static_cast<double>(durations_.size());
  std::vector<double> sorted = durations_;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];

  // EM for a two-exponential mixture, seeded from the median/mean split
  // (heavy-tailed sessions have median << mean, per Almeroth-Ammar).
  double ms = std::max(median * 0.5, 1e-6);
  double ml = std::max(mean * 2.0, ms * 4.0);
  double alpha = 0.5;

  for (unsigned iter = 0; iter < em_iterations; ++iter) {
    double resp_sum = 0.0;
    double short_weighted = 0.0;
    double long_weighted = 0.0;
    double long_resp_sum = 0.0;
    for (const double x : durations_) {
      const double log_fs = -std::log(ms) - x / ms;
      const double log_fl = -std::log(ml) - x / ml;
      // Responsibility of the short component, computed stably in logs.
      const double log_num = std::log(alpha) + log_fs;
      const double log_den_alt = std::log1p(-alpha) + log_fl;
      const double m = std::max(log_num, log_den_alt);
      const double r =
          std::exp(log_num - m) / (std::exp(log_num - m) + std::exp(log_den_alt - m));
      resp_sum += r;
      short_weighted += r * x;
      long_resp_sum += 1.0 - r;
      long_weighted += (1.0 - r) * x;
    }
    const auto n = static_cast<double>(durations_.size());
    alpha = std::clamp(resp_sum / n, 1e-6, 1.0 - 1e-6);
    if (resp_sum > 1e-9) ms = std::max(short_weighted / resp_sum, 1e-6);
    if (long_resp_sum > 1e-9) ml = std::max(long_weighted / long_resp_sum, ms);
  }

  out.short_mean = ms;
  out.long_mean = ml;
  out.short_fraction = alpha;
  out.well_separated = ml > 4.0 * ms;
  return out;
}

AdaptiveController::Recommendation AdaptiveController::recommend(
    double group_size, unsigned max_k, std::size_t min_observations) const {
  Recommendation best;
  analytic::TwoPartitionParams params;
  params.group_size = group_size;
  params.rekey_period = rekey_period_;
  params.degree = degree_;

  if (durations_.size() < min_observations) {
    params.s_period_epochs = 0;
    best.params = params;
    best.predicted_cost = best.baseline_cost = analytic::one_keytree_cost(params);
    return best;
  }

  const auto mixture = fit();
  params.short_mean = mixture.short_mean;
  params.long_mean = mixture.long_mean;
  params.short_fraction = mixture.short_fraction;
  params.s_period_epochs = 0;

  best.params = params;
  best.baseline_cost = analytic::one_keytree_cost(params);
  best.predicted_cost = best.baseline_cost;

  if (!mixture.well_separated) return best;

  for (unsigned k = 1; k <= max_k; ++k) {
    params.s_period_epochs = k;
    const double qt = analytic::qt_cost(params);
    const double tt = analytic::tt_cost(params);
    if (qt < best.predicted_cost) {
      best = {SchemeKind::kQt, k, qt, best.baseline_cost, params};
    }
    if (tt < best.predicted_cost) {
      best = {SchemeKind::kTt, k, tt, best.baseline_cost, params};
    }
  }
  return best;
}

}  // namespace gk::partition
