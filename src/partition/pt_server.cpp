#include "partition/pt_server.h"

#include "common/ensure.h"

namespace gk::partition {

PtServer::PtServer(unsigned degree, Rng rng)
    : ids_(lkh::IdAllocator::create()),
      s_tree_(degree, rng.fork(), ids_),
      l_tree_(degree, rng.fork(), ids_),
      dek_(rng.fork(), ids_) {}

Registration PtServer::join(const workload::MemberProfile& profile) {
  const bool in_s = profile.member_class == workload::MemberClass::kShort;
  auto& tree = in_s ? s_tree_ : l_tree_;
  (in_s ? s_arrivals_ : l_arrivals_) = true;
  const auto grant = tree.insert(profile.id);
  records_.emplace(workload::raw(profile.id), in_s);
  ++staged_joins_;
  return {grant.individual_key, grant.leaf_id};
}

void PtServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  if (it->second) {
    s_tree_.remove(member);
    ++staged_s_leaves_;
  } else {
    l_tree_.remove(member);
    ++staged_l_leaves_;
  }
  records_.erase(it);
}

EpochOutput PtServer::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.s_departures = staged_s_leaves_;
  out.l_departures = staged_l_leaves_;

  out.message = s_tree_.commit(epoch_);
  out.message.append(l_tree_.commit(epoch_));

  const bool compromised = staged_s_leaves_ + staged_l_leaves_ > 0;
  if (compromised) {
    dek_.rotate();
    if (!s_tree_.empty())
      dek_.wrap_under(s_tree_.root_key().key, s_tree_.root_id(),
                      s_tree_.root_key().version, out.message);
    if (!l_tree_.empty())
      dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                      l_tree_.root_key().version, out.message);
  } else if (staged_joins_ > 0) {
    dek_.rotate();
    dek_.wrap_under_previous(out.message);
    if (s_arrivals_ && !s_tree_.empty())
      dek_.wrap_under(s_tree_.root_key().key, s_tree_.root_id(),
                      s_tree_.root_key().version, out.message);
    if (l_arrivals_ && !l_tree_.empty())
      dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                      l_tree_.root_key().version, out.message);
  }
  dek_.stamp(out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  s_arrivals_ = false;
  l_arrivals_ = false;
  return out;
}

crypto::VersionedKey PtServer::group_key() const { return dek_.current(); }

crypto::KeyId PtServer::group_key_id() const { return dek_.id(); }

std::vector<crypto::KeyId> PtServer::member_path(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  auto path = it->second ? s_tree_.path_ids(member) : l_tree_.path_ids(member);
  path.push_back(dek_.id());
  return path;
}

}  // namespace gk::partition
