#pragma once

#include <cstdint>
#include <vector>

#include "crypto/key.h"
#include "lkh/rekey_message.h"
#include "workload/member.h"

namespace gk::partition {

/// What a joining member receives over the registration unicast channel.
/// Unicast traffic is NOT part of the paper's multicast-bandwidth metric,
/// but servers report it so experiments can confirm the migration paths add
/// none of it.
struct Registration {
  crypto::Key128 individual_key;
  crypto::KeyId leaf_id{};
};

/// A member whose leaf moved to a new node id during a partition migration.
/// Leaf placement is public structure information; the simulator forwards
/// it to the member's key ring (the key itself never moves).
struct Relocation {
  workload::MemberId member{};
  crypto::KeyId new_leaf_id{};
};

/// The outcome of committing one rekey period.
struct EpochOutput {
  std::uint64_t epoch = 0;
  /// The multicast rekey payload (partition messages merged, group-key
  /// wraps appended). message.cost() is the paper's metric.
  lkh::RekeyMessage message;
  /// Members moved from the S-partition to the L-partition this epoch.
  std::size_t migrations = 0;
  /// True departures processed in each partition this epoch (one-keytree
  /// servers report everything as l_departures).
  std::size_t s_departures = 0;
  std::size_t l_departures = 0;
  std::size_t joins = 0;

  [[nodiscard]] std::size_t multicast_cost() const noexcept { return message.cost(); }
};

/// A group key server processing membership changes in periodic batches
/// (Kronos-style). Usage per epoch: any number of join()/leave() calls,
/// then end_epoch() which commits the batch and emits the rekey message.
class RekeyServer {
 public:
  virtual ~RekeyServer() = default;

  /// Stage a join. The profile's class/duration fields are *oracle*
  /// information — only the PT scheme may read them (and only the class).
  virtual Registration join(const workload::MemberProfile& profile) = 0;

  /// Stage a departure of a current member.
  virtual void leave(workload::MemberId member) = 0;

  /// Commit the epoch: process migrations, refresh compromised keys,
  /// rotate the group key, and emit the multicast payload.
  virtual EpochOutput end_epoch() = 0;

  /// Current session data-encryption key (what members must end up with).
  [[nodiscard]] virtual crypto::VersionedKey group_key() const = 0;
  [[nodiscard]] virtual crypto::KeyId group_key_id() const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Node ids whose keys this member should currently hold (leaf excluded,
  /// group key included). The transport layer derives keys-of-interest
  /// from this.
  [[nodiscard]] virtual std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const = 0;
};

}  // namespace gk::partition
