#pragma once

#include "engine/server.h"

namespace gk::partition {

/// The server contracts moved to engine/ when the policy/mechanism split
/// extracted engine::RekeyCore; these aliases keep the historical
/// partition:: spellings working for transports, simulators, and tests.
using Registration = engine::Registration;
using Relocation = engine::Relocation;
using EpochOutput = engine::EpochOutput;
using RekeyServer = engine::RekeyServer;
using PathKey = engine::PathKey;
using DurableRekeyServer = engine::DurableRekeyServer;

using engine::make_catchup_bundle;

}  // namespace gk::partition
