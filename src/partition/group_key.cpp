#include "partition/group_key.h"

namespace gk::partition {

GroupKeyManager::GroupKeyManager(Rng rng, std::shared_ptr<lkh::IdAllocator> ids)
    : rng_(rng) {
  id_ = ids->next();
  key_ = {crypto::Key128::random(rng_), 0};
  previous_ = key_.key;
}

void GroupKeyManager::rotate() {
  previous_ = key_.key;
  key_.key = crypto::Key128::random(rng_);
  ++key_.version;
}

void GroupKeyManager::wrap_under(const crypto::Key128& kek, crypto::KeyId kek_id,
                                 std::uint32_t kek_version, lkh::RekeyMessage& out) {
  out.wraps.push_back(
      crypto::wrap_key(kek, kek_id, kek_version, key_.key, id_, key_.version, rng_));
}

void GroupKeyManager::wrap_under_previous(lkh::RekeyMessage& out) {
  out.wraps.push_back(crypto::wrap_key(previous_, id_, key_.version - 1, key_.key, id_,
                                       key_.version, rng_));
}

void GroupKeyManager::stamp(lkh::RekeyMessage& out) const {
  out.group_key_id = id_;
  out.group_key_version = key_.version;
}

}  // namespace gk::partition
