#pragma once

#include <exception>
#include <memory>
#include <optional>

#include "partition/server.h"
#include "wire/journal.h"

namespace gk::partition {

/// Thrown by JournaledServer::end_epoch() when a fault schedule armed a
/// crash: the server died after journaling COMMIT_BEGIN but before
/// committing the epoch in memory or multicasting its rekey message — the
/// worst-positioned failure the WAL must cover.
struct ServerCrashed : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "key server crashed mid-commit (fault injection)";
  }
};

/// A DurableRekeyServer wrapped in write-ahead-journal discipline
/// (wire::RekeyJournal): every membership operation is journaled before it is
/// applied, commits are bracketed by BEGIN/END markers, and the journal is
/// compacted onto a fresh checkpoint every `checkpoint_every` commits.
///
/// recover() rebuilds a crashed server from journal bytes alone: restore the
/// checkpoint, replay the logged operations (verifying re-derived join
/// grants against the logged ones), and — if the journal ends in an
/// unmatched COMMIT_BEGIN — re-run the interrupted epoch and hand back its
/// regenerated rekey message for delivery. Because all server randomness
/// lives in the checkpoint, the recovered server is byte-identical to one
/// that never crashed.
class JournaledServer final : public RekeyServer {
 public:
  struct Config {
    /// Commits between journal compactions (0 = never compact). The journal
    /// itself tracks the commit count (wire::RekeyJournal::wants_checkpoint),
    /// so shipping streams and long soaks stay bounded.
    std::size_t checkpoint_every = 8;
    /// Commits between 'D' state-digest records (0 = never). Each digest is
    /// the SHA-256 of the post-commit save_state(); local replay and shipped
    /// standbys re-hash and must match, catching divergence within one epoch.
    std::size_t digest_every = 1;
  };

  JournaledServer(std::unique_ptr<DurableRekeyServer> inner, Config config);
  explicit JournaledServer(std::unique_ptr<DurableRekeyServer> inner)
      : JournaledServer(std::move(inner), Config{}) {}

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override {
    return inner_->group_key();
  }
  [[nodiscard]] crypto::KeyId group_key_id() const override {
    return inner_->group_key_id();
  }
  [[nodiscard]] std::size_t size() const override { return inner_->size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override {
    return inner_->member_path(member);
  }
  void set_executor(common::ThreadPool* pool) override { inner_->set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    inner_->reserve(expected_members);
  }

  /// Arm a fault: the next end_epoch() journals COMMIT_BEGIN and then
  /// throws ServerCrashed instead of committing.
  void arm_crash_before_commit() noexcept { crash_armed_ = true; }

  /// Adopt a leader term won in an election (epoch fencing). The term is
  /// journaled as a 'T' record, re-stamped after every compaction so a
  /// shipped checkpoint carries its provenance, and stamped into every
  /// EpochOutput this server commits. Terms only move forward.
  void set_term(std::uint64_t term);
  [[nodiscard]] std::uint64_t term() const noexcept { return term_; }

  /// The durable journal bytes — everything recover() needs.
  [[nodiscard]] const std::vector<std::uint8_t>& journal_bytes() const noexcept {
    return journal_.bytes();
  }
  /// The journal itself (size/record-count/generation bookkeeping for
  /// shippers and soak monitors).
  [[nodiscard]] const wire::RekeyJournal& journal() const noexcept { return journal_; }

  [[nodiscard]] DurableRekeyServer& durable() noexcept { return *inner_; }
  [[nodiscard]] const DurableRekeyServer& durable() const noexcept { return *inner_; }

  struct Recovery {
    std::unique_ptr<JournaledServer> server;
    /// Present when the crash interrupted a commit: the re-run epoch's
    /// output (byte-identical to what the dead server would have sent),
    /// which the caller must now deliver.
    std::optional<EpochOutput> pending;
  };

  /// Rebuild a server from journal bytes. `blank` must be a freshly
  /// constructed server of the same structural configuration (degree,
  /// S-period, bins) as the one that crashed; its state is overwritten.
  [[nodiscard]] static Recovery recover(std::span<const std::uint8_t> journal_bytes,
                                        std::unique_ptr<DurableRekeyServer> blank,
                                        Config config);
  [[nodiscard]] static Recovery recover(std::span<const std::uint8_t> journal_bytes,
                                        std::unique_ptr<DurableRekeyServer> blank) {
    return recover(journal_bytes, std::move(blank), Config{});
  }

 private:
  std::unique_ptr<DurableRekeyServer> inner_;
  Config config_;
  wire::RekeyJournal journal_;
  std::uint64_t term_ = 0;
  bool crash_armed_ = false;
};

}  // namespace gk::partition
