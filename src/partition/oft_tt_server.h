#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "oft/oft_tree.h"
#include "partition/group_key.h"
#include "partition/server.h"

namespace gk::partition {

/// The TT-scheme instantiated over one-way function trees instead of LKH —
/// the paper's Section 2.1.1 remark ("other approaches for scalable
/// rekeying such as one-way function trees ... the basic ideas behind our
/// approaches are also applicable") made executable.
///
/// Structure mirrors TtServer: an S-partition OFT for arrivals, an
/// L-partition OFT for members that survive the S-period, and a session
/// DEK wrapped under each partition's (functional) root key.
///
/// Unlike LKH, OFT is inherently a *per-operation* protocol — every
/// membership change restructures the tree and its computed keys, and a
/// member must track topology between operations. The server therefore
/// notifies an OpObserver after each operation with that operation's rekey
/// message (this is how a real deployment multicasts; see the test harness
/// for the member-side discipline). EpochOutput still concatenates the
/// epoch's messages so the paper's per-epoch cost metric is preserved; the
/// partition benefit (short-lived members only ever disturb the small
/// S-tree) carries over unchanged.
class OftTtServer final : public RekeyServer {
 public:
  /// One tree operation's multicast, reported as it happens.
  struct OpEvent {
    enum class Kind : std::uint8_t {
      kJoin,        ///< subject joined the S-tree (or L-tree when K == 0)
      kLeave,       ///< subject departed
      kMigrateOut,  ///< subject removed from the S-tree (migration, step 1)
      kMigrateIn,   ///< subject re-keyed into the L-tree (migration, step 2)
      kGroupKey,    ///< epoch's DEK wraps (no subject)
    };
    Kind kind;
    workload::MemberId subject{};
    const lkh::RekeyMessage& message;
  };
  using OpObserver = std::function<void(const OpEvent&)>;

  OftTtServer(unsigned s_period_epochs, Rng rng);

  /// Install the per-operation multicast hook (may be empty).
  void set_op_observer(OpObserver observer) { observer_ = std::move(observer); }

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::size_t size() const override { return records_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override;

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }

  /// Access for member-side folding (grants and public path topology).
  [[nodiscard]] const oft::OftTree& s_tree() const noexcept { return s_tree_; }
  [[nodiscard]] const oft::OftTree& l_tree() const noexcept { return l_tree_; }
  [[nodiscard]] bool member_in_s(workload::MemberId member) const;

  /// Migration grants issued by the last end_epoch(): the member's fresh
  /// leaf key and blinded sibling path in the L-tree, delivered over the
  /// registration unicast channel (OFT leaf keys cannot be reused — the
  /// functional keys depend on them).
  struct MigrationGrant {
    workload::MemberId member{};
    oft::OftTree::JoinGrant grant;
  };
  [[nodiscard]] const std::vector<MigrationGrant>& last_migrations() const noexcept {
    return migrations_;
  }

 private:
  struct Record {
    std::uint64_t joined_epoch = 0;
    bool in_s = true;
  };

  void notify(OpEvent::Kind kind, workload::MemberId subject,
              const lkh::RekeyMessage& message) const {
    if (observer_) observer_({kind, subject, message});
  }

  unsigned s_period_epochs_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  Rng rng_;
  OpObserver observer_;
  oft::OftTree s_tree_;
  oft::OftTree l_tree_;
  GroupKeyManager dek_;
  std::unordered_map<std::uint64_t, Record> records_;
  lkh::RekeyMessage pending_;  // operations accumulated within the epoch
  std::vector<MigrationGrant> migrations_;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_s_leaves_ = 0;
  std::size_t staged_l_leaves_ = 0;
};

}  // namespace gk::partition
