#pragma once

#include <memory>

#include "engine/rekey_core.h"
#include "partition/oft_tt_policy.h"
#include "partition/server.h"

namespace gk::partition {

/// The TT-scheme instantiated over one-way function trees instead of LKH —
/// the paper's Section 2.1.1 remark ("other approaches for scalable
/// rekeying such as one-way function trees ... the basic ideas behind our
/// approaches are also applicable") made executable.
///
/// An engine::RekeyCore running an OftTtPolicy; see the policy for the
/// per-operation observer protocol. EpochOutput still concatenates the
/// epoch's messages so the paper's per-epoch cost metric is preserved; the
/// partition benefit (short-lived members only ever disturb the small
/// S-tree) carries over unchanged. Not durable (OFT snapshots are an open
/// item), so this stays a plain RekeyServer facade.
class OftTtServer final : public engine::RekeyServer {
 public:
  using OpEvent = OftOpEvent;
  using OpObserver = OftOpObserver;
  using MigrationGrant = OftTtPolicy::MigrationGrant;

  OftTtServer(unsigned s_period_epochs, Rng rng)
      : core_(std::make_unique<OftTtPolicy>(s_period_epochs, rng)) {}

  /// Install the per-operation multicast hook (may be empty).
  void set_op_observer(OpObserver observer) {
    policy().set_op_observer(std::move(observer));
  }

  engine::Registration join(const workload::MemberProfile& profile) override {
    return core_.join(profile);
  }
  void leave(workload::MemberId member) override { core_.leave(member); }
  engine::EpochOutput end_epoch() override { return core_.end_epoch(); }

  [[nodiscard]] crypto::VersionedKey group_key() const override {
    return core_.group_key();
  }
  [[nodiscard]] crypto::KeyId group_key_id() const override {
    return core_.group_key_id();
  }
  [[nodiscard]] std::size_t size() const override { return core_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override {
    return core_.member_path(member);
  }

  [[nodiscard]] std::size_t s_partition_size() const noexcept {
    return policy().s_partition_size();
  }
  [[nodiscard]] std::size_t l_partition_size() const noexcept {
    return policy().l_partition_size();
  }

  /// Access for member-side folding (grants and public path topology).
  [[nodiscard]] const oft::OftTree& s_tree() const noexcept {
    return policy().s_tree();
  }
  [[nodiscard]] const oft::OftTree& l_tree() const noexcept {
    return policy().l_tree();
  }
  [[nodiscard]] bool member_in_s(workload::MemberId member) const {
    return core_.partition_of(member) == 0;
  }

  [[nodiscard]] const std::vector<MigrationGrant>& last_migrations() const noexcept {
    return policy().last_migrations();
  }

 private:
  [[nodiscard]] OftTtPolicy& policy() noexcept {
    return static_cast<OftTtPolicy&>(core_.policy());
  }
  [[nodiscard]] const OftTtPolicy& policy() const noexcept {
    return static_cast<const OftTtPolicy&>(core_.policy());
  }

  engine::RekeyCore core_;
};

}  // namespace gk::partition
