#include "partition/pt_policy.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

PtPolicy::PtPolicy(unsigned degree, Rng rng, std::shared_ptr<lkh::IdAllocator> ids)
    : ids_(ids != nullptr ? std::move(ids) : lkh::IdAllocator::create()),
      s_tree_(degree, rng.fork(), ids_),
      l_tree_(degree, rng.fork(), ids_),
      dek_(rng.fork(), ids_) {
  info_.name = "pt";
  info_.split_partitions = true;
  info_.durable = true;
}

PtPolicy::Admission PtPolicy::admit(const workload::MemberProfile& profile) {
  const bool in_s = profile.member_class == workload::MemberClass::kShort;
  auto& tree = in_s ? s_tree_ : l_tree_;
  (in_s ? s_arrivals_ : l_arrivals_) = true;
  const auto grant = tree.insert(profile.id);
  return {{grant.individual_key, grant.leaf_id}, in_s ? 0u : 1u};
}

void PtPolicy::evict(workload::MemberId member, std::uint32_t partition) {
  if (partition == 0)
    s_tree_.remove(member);
  else
    l_tree_.remove(member);
}

lkh::RekeyMessage PtPolicy::emit(std::uint64_t epoch) {
  auto message = s_tree_.commit(epoch);
  message.append(l_tree_.commit(epoch));
  return message;
}

void PtPolicy::wrap_compromised(lkh::RekeyMessage& out) {
  if (!s_tree_.empty())
    dek_.wrap_under(s_tree_.root_key().key, s_tree_.root_id(),
                    s_tree_.root_key().version, out);
  if (!l_tree_.empty())
    dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                    l_tree_.root_key().version, out);
}

void PtPolicy::wrap_arrivals(lkh::RekeyMessage& out) {
  if (s_arrivals_ && !s_tree_.empty())
    dek_.wrap_under(s_tree_.root_key().key, s_tree_.root_id(),
                    s_tree_.root_key().version, out);
  if (l_arrivals_ && !l_tree_.empty())
    dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                    l_tree_.root_key().version, out);
}

std::vector<crypto::KeyId> PtPolicy::member_path(workload::MemberId member,
                                                 std::uint32_t partition) const {
  auto path = tree_of(partition).path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<std::uint8_t> PtPolicy::save_policy_state() const {
  common::ByteWriter out;
  out.blob(lkh::snapshot_tree_exact(s_tree_));
  out.blob(lkh::snapshot_tree_exact(l_tree_));
  return out.take();
}

void PtPolicy::restore_policy_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  auto restored_s = lkh::restore_tree_exact(in.blob(), ids_);
  auto restored_l = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored_s.degree() == s_tree_.degree() &&
                    restored_l.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  s_tree_ = std::move(restored_s);
  l_tree_ = std::move(restored_l);
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
}

std::vector<engine::PathKey> PtPolicy::member_path_keys(workload::MemberId member,
                                                        std::uint32_t partition) const {
  std::vector<engine::PathKey> path;
  for (const auto& entry : tree_of(partition).path_keys(member))
    path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 PtPolicy::member_individual_key(workload::MemberId member,
                                               std::uint32_t partition) const {
  return tree_of(partition).individual_key(member);
}

crypto::KeyId PtPolicy::member_leaf_id(workload::MemberId member,
                                       std::uint32_t partition) const {
  return tree_of(partition).leaf_id(member);
}

}  // namespace gk::partition
