#include "partition/tt_server.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

TtServer::TtServer(unsigned degree, unsigned s_period_epochs, Rng rng)
    : s_period_epochs_(s_period_epochs),
      ids_(lkh::IdAllocator::create()),
      s_tree_(degree, rng.fork(), ids_),
      l_tree_(degree, rng.fork(), ids_),
      dek_(rng.fork(), ids_) {}

Registration TtServer::join(const workload::MemberProfile& profile) {
  // K = 0 degenerates to the one-keytree scheme: everyone goes straight to
  // the L-tree and no migrations ever happen.
  const bool to_s = s_period_epochs_ > 0;
  const auto grant =
      to_s ? s_tree_.insert(profile.id) : l_tree_.insert(profile.id);
  records_.emplace(workload::raw(profile.id), Record{epoch_, to_s});
  ++staged_joins_;
  return {grant.individual_key, grant.leaf_id};
}

void TtServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  if (it->second.in_s) {
    s_tree_.remove(member);
    ++staged_s_leaves_;
  } else {
    l_tree_.remove(member);
    ++staged_l_leaves_;
  }
  records_.erase(it);
}

EpochOutput TtServer::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.s_departures = staged_s_leaves_;
  out.l_departures = staged_l_leaves_;

  // Batched migration: members that have survived the full S-period move
  // into the L-tree, keeping their individual keys.
  relocations_.clear();
  if (s_period_epochs_ > 0) {
    std::vector<workload::MemberId> migrants;
    for (const auto& [raw_id, record] : records_) {
      if (record.in_s && epoch_ >= record.joined_epoch + s_period_epochs_)
        migrants.push_back(workload::make_member_id(raw_id));
    }
    // Deterministic migration order: records_ is unordered, and a
    // journal-replayed server must insert migrants into the L-tree in the
    // exact sequence the crash-free run did.
    std::sort(migrants.begin(), migrants.end(),
              [](auto a, auto b) { return workload::raw(a) < workload::raw(b); });
    for (const auto member : migrants) {
      const auto individual = s_tree_.individual_key(member);
      s_tree_.remove(member);
      const auto grant = l_tree_.insert_with_key(member, individual);
      records_[workload::raw(member)].in_s = false;
      relocations_.push_back({member, grant.leaf_id});
    }
    out.migrations = migrants.size();
  }

  out.message = s_tree_.commit(epoch_);
  out.message.append(l_tree_.commit(epoch_));

  const bool compromised = staged_s_leaves_ + staged_l_leaves_ > 0;
  if (compromised) {
    // Someone who knew the DEK left: rotate and re-wrap under each
    // partition root.
    dek_.rotate();
    if (!s_tree_.empty())
      dek_.wrap_under(s_tree_.root_key().key, s_tree_.root_id(),
                      s_tree_.root_key().version, out.message);
    if (!l_tree_.empty())
      dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                      l_tree_.root_key().version, out.message);
  } else if (staged_joins_ > 0) {
    // Join-only epoch: one wrap under the previous DEK serves every
    // incumbent (including this epoch's migrants); arrivals climb their
    // tree and take the DEK from one wrap under that tree's root.
    dek_.rotate();
    dek_.wrap_under_previous(out.message);
    const lkh::KeyTree& arrivals = s_period_epochs_ > 0 ? s_tree_ : l_tree_;
    if (!arrivals.empty())
      dek_.wrap_under(arrivals.root_key().key, arrivals.root_id(),
                      arrivals.root_key().version, out.message);
  }
  // Migration-only or idle epochs leave the DEK alone (Section 3.2 phase 3:
  // migrants are still authorized members).
  dek_.stamp(out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  return out;
}

crypto::VersionedKey TtServer::group_key() const { return dek_.current(); }

crypto::KeyId TtServer::group_key_id() const { return dek_.id(); }

std::vector<crypto::KeyId> TtServer::member_path(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  auto path = it->second.in_s ? s_tree_.path_ids(member) : l_tree_.path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<std::uint8_t> TtServer::save_state() const {
  GK_ENSURE_MSG(staged_joins_ == 0 && staged_s_leaves_ == 0 && staged_l_leaves_ == 0,
                "commit staged changes before saving server state");
  common::ByteWriter out;
  out.u64(epoch_);
  out.u32(s_period_epochs_);
  out.u64(ids_->watermark());
  out.blob(lkh::snapshot_tree_exact(s_tree_));
  out.blob(lkh::snapshot_tree_exact(l_tree_));
  dek_.save_state(out);
  std::vector<std::uint64_t> raw_ids;
  raw_ids.reserve(records_.size());
  for (const auto& [raw_id, record] : records_) raw_ids.push_back(raw_id);
  std::sort(raw_ids.begin(), raw_ids.end());
  out.u64(raw_ids.size());
  for (const auto raw_id : raw_ids) {
    const auto& record = records_.at(raw_id);
    out.u64(raw_id);
    out.u64(record.joined_epoch);
    out.u8(record.in_s ? 1 : 0);
  }
  return out.take();
}

void TtServer::restore_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  epoch_ = in.u64();
  GK_ENSURE_MSG(in.u32() == s_period_epochs_,
                "restored state has a different S-period");
  const auto watermark = in.u64();
  auto restored_s = lkh::restore_tree_exact(in.blob(), ids_);
  auto restored_l = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored_s.degree() == s_tree_.degree() &&
                    restored_l.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  s_tree_ = std::move(restored_s);
  l_tree_ = std::move(restored_l);
  dek_.restore_state(in);
  records_.clear();
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    Record record;
    record.joined_epoch = in.u64();
    record.in_s = in.u8() != 0;
    GK_ENSURE_MSG(records_.emplace(raw_id, record).second,
                  "server state corrupt: duplicate member record");
  }
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  ids_->reset_to(watermark);
  relocations_.clear();
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
}

std::vector<PathKey> TtServer::member_path_keys(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  const lkh::KeyTree& tree = it->second.in_s ? s_tree_ : l_tree_;
  std::vector<PathKey> path;
  for (const auto& entry : tree.path_keys(member)) path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 TtServer::member_individual_key(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return (it->second.in_s ? s_tree_ : l_tree_).individual_key(member);
}

crypto::KeyId TtServer::member_leaf_id(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return (it->second.in_s ? s_tree_ : l_tree_).leaf_id(member);
}

}  // namespace gk::partition
