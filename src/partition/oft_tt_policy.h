#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "engine/placement_policy.h"
#include "oft/oft_tree.h"

namespace gk::partition {

/// One tree operation's multicast, reported as it happens. OFT is
/// inherently a *per-operation* protocol — every membership change
/// restructures the tree and its computed keys, and a member must track
/// topology between operations.
struct OftOpEvent {
  enum class Kind : std::uint8_t {
    kJoin,        ///< subject joined the S-tree (or L-tree when K == 0)
    kLeave,       ///< subject departed
    kMigrateOut,  ///< subject removed from the S-tree (migration, step 1)
    kMigrateIn,   ///< subject re-keyed into the L-tree (migration, step 2)
    kGroupKey,    ///< epoch's DEK wraps (no subject)
  };
  Kind kind;
  workload::MemberId subject{};
  const lkh::RekeyMessage& message;
};
using OftOpObserver = std::function<void(const OftOpEvent&)>;

/// Placement policy for the TT scheme over one-way function trees: an
/// S-partition OFT (partition 0) for arrivals, an L-partition OFT
/// (partition 1) for members that survive the S-period, and a session DEK
/// wrapped under each partition's (functional) root key. Per-operation
/// messages are reported through the observer and accumulated into the
/// epoch's emission.
///
/// RNG fork order: scratch RNG, S-tree, L-tree, DEK.
class OftTtPolicy final : public engine::PlacementPolicy {
 public:
  /// Migration grants issued by the last end_epoch(): the member's fresh
  /// leaf key and blinded sibling path in the L-tree, delivered over the
  /// registration unicast channel (OFT leaf keys cannot be reused — the
  /// functional keys depend on them).
  struct MigrationGrant {
    workload::MemberId member{};
    oft::OftTree::JoinGrant grant;
  };

  OftTtPolicy(unsigned s_period_epochs, Rng rng);

  void set_op_observer(OftOpObserver observer) { observer_ = std::move(observer); }

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] std::optional<crypto::KeyId> migrate(workload::MemberId member) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;
  void apply_dek(const engine::EpochCounts& counts, lkh::RekeyMessage& out) override;
  void epoch_begin() override { migrations_.clear(); }

  [[nodiscard]] engine::GroupKeyManager* dek() noexcept override { return &dek_; }

  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override { return ids_; }

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }
  [[nodiscard]] const oft::OftTree& s_tree() const noexcept { return s_tree_; }
  [[nodiscard]] const oft::OftTree& l_tree() const noexcept { return l_tree_; }
  [[nodiscard]] const std::vector<MigrationGrant>& last_migrations() const noexcept {
    return migrations_;
  }

 private:
  void notify(OftOpEvent::Kind kind, workload::MemberId subject,
              const lkh::RekeyMessage& message) const {
    if (observer_) observer_({kind, subject, message});
  }

  engine::PolicyInfo info_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  Rng rng_;
  OftOpObserver observer_;
  oft::OftTree s_tree_;
  oft::OftTree l_tree_;
  engine::GroupKeyManager dek_;
  lkh::RekeyMessage pending_;  // operations accumulated within the epoch
  std::vector<MigrationGrant> migrations_;
};

}  // namespace gk::partition
