#pragma once

#include <memory>

#include "engine/core_server.h"
#include "partition/qt_policy.h"
#include "partition/server.h"

namespace gk::partition {

/// QT-scheme server (Section 3.2): engine::RekeyCore running a QtPolicy.
/// See QtPolicy for the scheme's cost model.
class QtServer final : public engine::CoreServer {
 public:
  QtServer(unsigned degree, unsigned s_period_epochs, Rng rng)
      : CoreServer(std::make_unique<QtPolicy>(degree, s_period_epochs, rng)) {}

  [[nodiscard]] std::size_t s_partition_size() const noexcept {
    return policy().s_partition_size();
  }
  [[nodiscard]] std::size_t l_partition_size() const noexcept {
    return policy().l_partition_size();
  }
  [[nodiscard]] const std::vector<engine::Relocation>& last_relocations()
      const noexcept {
    return core_.last_relocations();
  }

 private:
  [[nodiscard]] const QtPolicy& policy() const noexcept {
    return static_cast<const QtPolicy&>(core_.policy());
  }
};

}  // namespace gk::partition
