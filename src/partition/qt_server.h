#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "lkh/key_queue.h"
#include "lkh/key_tree.h"
#include "partition/group_key.h"
#include "partition/server.h"

namespace gk::partition {

/// QT-scheme (Section 3.2): the S-partition is a flat queue — residents
/// hold only their individual key and the DEK — and the L-partition is a
/// balanced key tree.
///
/// Joining costs a single wrap (the DEK under the newcomer's individual
/// key). The price appears whenever a departure compromises the DEK: the
/// replacement must be wrapped once per queue resident (Ns wraps) plus once
/// under the L-tree root. Advantageous while the queue stays small.
class QtServer final : public DurableRekeyServer {
 public:
  QtServer(unsigned degree, unsigned s_period_epochs, Rng rng);

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::size_t size() const override { return records_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override;

  [[nodiscard]] std::uint64_t epoch() const override { return epoch_; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  void restore_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<PathKey> member_path_keys(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const override;

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }
  [[nodiscard]] const std::vector<Relocation>& last_relocations() const noexcept {
    return relocations_;
  }

  void set_executor(common::ThreadPool* pool) override { l_tree_.set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    l_tree_.reserve(expected_members);
    records_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override { l_tree_.set_wrap_cache(enabled); }

 private:
  struct Record {
    std::uint64_t joined_epoch = 0;
    bool in_s = true;
  };

  unsigned s_period_epochs_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  lkh::KeyQueue queue_;
  lkh::KeyTree l_tree_;
  GroupKeyManager dek_;
  std::unordered_map<std::uint64_t, Record> records_;
  std::vector<workload::MemberId> epoch_arrivals_;
  std::vector<Relocation> relocations_;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_s_leaves_ = 0;
  std::size_t staged_l_leaves_ = 0;
};

}  // namespace gk::partition
