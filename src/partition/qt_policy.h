#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/placement_policy.h"
#include "lkh/key_queue.h"
#include "lkh/key_tree.h"

namespace gk::partition {

/// Placement policy for the QT scheme (Section 3.2): the S-partition
/// (partition 0) is a flat queue — residents hold only their individual key
/// and the DEK — and the L-partition (partition 1) is a balanced key tree.
///
/// Joining costs a single wrap (the DEK under the newcomer's individual
/// key). The price appears whenever a departure compromises the DEK: the
/// replacement must be wrapped once per queue resident (Ns wraps) plus once
/// under the L-tree root. Advantageous while the queue stays small.
///
/// RNG fork order: queue, L-tree, DEK.
class QtPolicy final : public engine::PlacementPolicy {
 public:
  /// `ids` (optional) supplies a pre-based id allocator — the sharded
  /// engine gives each shard a disjoint id range (SchemeConfig::id_base).
  QtPolicy(unsigned degree, unsigned s_period_epochs, Rng rng,
           std::shared_ptr<lkh::IdAllocator> ids = nullptr);

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] std::optional<crypto::KeyId> migrate(workload::MemberId member) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;
  void epoch_reset() override { epoch_arrivals_.clear(); }

  [[nodiscard]] engine::GroupKeyManager* dek() noexcept override { return &dek_; }

  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override { return ids_; }
  [[nodiscard]] std::vector<std::uint8_t> save_policy_state() const override;
  void restore_policy_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] LegacyState restore_legacy(
      std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] std::vector<engine::PathKey> member_path_keys(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member,
                                             std::uint32_t partition) const override;

  void set_executor(common::ThreadPool* pool) override { l_tree_.set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    l_tree_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override { l_tree_.set_wrap_cache(enabled); }

  /// Queue residents hold no tree position, so only the L-tree contributes.
  [[nodiscard]] lkh::TreeStats tree_stats() const override { return l_tree_.stats(); }

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }

 protected:
  void wrap_compromised(lkh::RekeyMessage& out) override;
  void wrap_arrivals(lkh::RekeyMessage& out) override;

 private:
  engine::PolicyInfo info_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  lkh::KeyQueue queue_;
  lkh::KeyTree l_tree_;
  engine::GroupKeyManager dek_;
  std::vector<workload::MemberId> epoch_arrivals_;
};

}  // namespace gk::partition
