#pragma once

#include <memory>
#include <unordered_map>

#include "lkh/key_tree.h"
#include "partition/group_key.h"
#include "partition/server.h"

namespace gk::partition {

/// PT-scheme (Section 3.2): the oracle variant. The server is assumed to
/// know each member's class at join time (as in Selcuk et al's
/// probabilistic organization) and places it directly in the matching
/// partition — short-lived members in the S-tree, long-lived in the
/// L-tree. No migrations ever happen, so this bounds the gain the
/// deterministic QT/TT schemes can reach.
class PtServer final : public RekeyServer {
 public:
  PtServer(unsigned degree, Rng rng);

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::size_t size() const override { return records_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override;

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }

  void set_executor(common::ThreadPool* pool) override {
    s_tree_.set_executor(pool);
    l_tree_.set_executor(pool);
  }
  void reserve(std::size_t expected_members) override {
    s_tree_.reserve(expected_members / 2);
    l_tree_.reserve(expected_members);
    records_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override {
    s_tree_.set_wrap_cache(enabled);
    l_tree_.set_wrap_cache(enabled);
  }

 private:
  std::shared_ptr<lkh::IdAllocator> ids_;
  lkh::KeyTree s_tree_;
  lkh::KeyTree l_tree_;
  GroupKeyManager dek_;
  std::unordered_map<std::uint64_t, bool> records_;  // raw id -> in_s
  bool s_arrivals_ = false;
  bool l_arrivals_ = false;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_s_leaves_ = 0;
  std::size_t staged_l_leaves_ = 0;
};

}  // namespace gk::partition
