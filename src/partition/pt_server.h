#pragma once

#include <memory>

#include "engine/core_server.h"
#include "partition/pt_policy.h"
#include "partition/server.h"

namespace gk::partition {

/// PT-scheme server (Section 3.2): engine::RekeyCore running a PtPolicy.
/// See PtPolicy for the oracle placement rule. Durability came free with
/// the policy/mechanism split (the old server was not snapshot-capable).
class PtServer final : public engine::CoreServer {
 public:
  PtServer(unsigned degree, Rng rng)
      : CoreServer(std::make_unique<PtPolicy>(degree, rng)) {}

  [[nodiscard]] std::size_t s_partition_size() const noexcept {
    return static_cast<const PtPolicy&>(core_.policy()).s_partition_size();
  }
  [[nodiscard]] std::size_t l_partition_size() const noexcept {
    return static_cast<const PtPolicy&>(core_.policy()).l_partition_size();
  }
};

}  // namespace gk::partition
