#include "partition/one_tree_policy.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

OneTreePolicy::OneTreePolicy(unsigned degree, Rng rng,
                             std::shared_ptr<lkh::IdAllocator> ids)
    : tree_(degree, rng, std::move(ids)) {
  info_.name = "one-tree";
  info_.durable = true;
}

OneTreePolicy::Admission OneTreePolicy::admit(const workload::MemberProfile& profile) {
  const auto grant = tree_.insert(profile.id);
  return {{grant.individual_key, grant.leaf_id}, 0};
}

void OneTreePolicy::evict(workload::MemberId member, std::uint32_t /*partition*/) {
  tree_.remove(member);
}

lkh::RekeyMessage OneTreePolicy::emit(std::uint64_t epoch) { return tree_.commit(epoch); }

crypto::VersionedKey OneTreePolicy::group_key() const { return tree_.root_key(); }

crypto::KeyId OneTreePolicy::group_key_id() const { return tree_.root_id(); }

std::vector<crypto::KeyId> OneTreePolicy::member_path(
    workload::MemberId member, std::uint32_t /*partition*/) const {
  return tree_.path_ids(member);
}

std::vector<std::uint8_t> OneTreePolicy::save_policy_state() const {
  return lkh::snapshot_tree_exact(tree_);
}

void OneTreePolicy::restore_policy_state(std::span<const std::uint8_t> bytes) {
  auto restored = lkh::restore_tree_exact(bytes);
  GK_ENSURE_MSG(restored.degree() == tree_.degree(),
                "restored state has a different tree degree");
  tree_ = std::move(restored);
}

engine::PlacementPolicy::LegacyState OneTreePolicy::restore_legacy(
    std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  LegacyState legacy;
  legacy.epoch = in.u64();
  legacy.id_watermark = in.u64();
  restore_policy_state(in.blob());
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  // The old format carried no member records — the tree's bindings are the
  // membership. Join epochs are irrelevant here (no migration clock).
  for (const auto member : tree_.members())
    legacy.ledger.push_back({workload::raw(member), 0, 0});
  return legacy;
}

std::vector<engine::PathKey> OneTreePolicy::member_path_keys(
    workload::MemberId member, std::uint32_t /*partition*/) const {
  std::vector<engine::PathKey> path;
  for (const auto& entry : tree_.path_keys(member)) path.push_back({entry.id, entry.key});
  return path;
}

crypto::Key128 OneTreePolicy::member_individual_key(workload::MemberId member,
                                                    std::uint32_t /*partition*/) const {
  return tree_.individual_key(member);
}

crypto::KeyId OneTreePolicy::member_leaf_id(workload::MemberId member,
                                            std::uint32_t /*partition*/) const {
  return tree_.leaf_id(member);
}

}  // namespace gk::partition
