#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/placement_policy.h"
#include "lkh/key_tree.h"

namespace gk::partition {

/// Placement policy for the baseline scheme (Section 2.1): one balanced key
/// tree whose root *is* the group data-encryption key. No DEK manager, no
/// partitions, no migration clock.
///
/// RNG fork order: the tree consumes the seed Rng directly (no forks).
class OneTreePolicy final : public engine::PlacementPolicy {
 public:
  /// `ids` (optional) supplies a pre-based id allocator — the sharded
  /// engine gives each shard a disjoint id range (SchemeConfig::id_base).
  OneTreePolicy(unsigned degree, Rng rng,
                std::shared_ptr<lkh::IdAllocator> ids = nullptr);

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override {
    return tree_.ids();
  }
  [[nodiscard]] std::vector<std::uint8_t> save_policy_state() const override;
  void restore_policy_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] LegacyState restore_legacy(
      std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] std::vector<engine::PathKey> member_path_keys(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member,
                                             std::uint32_t partition) const override;

  void set_executor(common::ThreadPool* pool) override { tree_.set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    tree_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override { tree_.set_wrap_cache(enabled); }

  [[nodiscard]] lkh::TreeStats tree_stats() const override { return tree_.stats(); }

  [[nodiscard]] const lkh::KeyTree& tree() const noexcept { return tree_; }

 private:
  engine::PolicyInfo info_;
  lkh::KeyTree tree_;
};

}  // namespace gk::partition
