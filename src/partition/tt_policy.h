#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/placement_policy.h"
#include "lkh/key_tree.h"

namespace gk::partition {

/// Placement policy for the TT scheme (Section 3.2): two balanced key trees
/// — a short-term S-tree (partition 0) every member joins first, and a
/// long-term L-tree (partition 1) members migrate to after surviving the
/// S-period. Both sit under the session DEK.
///
/// Migration keeps the member's individual key: the move costs multicast
/// wraps only (no new registration unicast) and never rotates the DEK by
/// itself — the migrant is still an authorized member.
///
/// RNG fork order: S-tree, L-tree, DEK.
class TtPolicy final : public engine::PlacementPolicy {
 public:
  /// `ids` (optional) supplies a pre-based id allocator — the sharded
  /// engine gives each shard a disjoint id range (SchemeConfig::id_base).
  TtPolicy(unsigned degree, unsigned s_period_epochs, Rng rng,
           std::shared_ptr<lkh::IdAllocator> ids = nullptr);

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] std::optional<crypto::KeyId> migrate(workload::MemberId member) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;

  [[nodiscard]] engine::GroupKeyManager* dek() noexcept override { return &dek_; }

  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override { return ids_; }
  [[nodiscard]] std::vector<std::uint8_t> save_policy_state() const override;
  void restore_policy_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] LegacyState restore_legacy(
      std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] std::vector<engine::PathKey> member_path_keys(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member,
                                             std::uint32_t partition) const override;

  void set_executor(common::ThreadPool* pool) override {
    s_tree_.set_executor(pool);
    l_tree_.set_executor(pool);
  }
  void reserve(std::size_t expected_members) override {
    l_tree_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override {
    s_tree_.set_wrap_cache(enabled);
    l_tree_.set_wrap_cache(enabled);
  }

  [[nodiscard]] lkh::TreeStats tree_stats() const override {
    lkh::TreeStats stats = s_tree_.stats();
    stats.merge(l_tree_.stats());
    return stats;
  }

  [[nodiscard]] std::size_t s_partition_size() const noexcept { return s_tree_.size(); }
  [[nodiscard]] std::size_t l_partition_size() const noexcept { return l_tree_.size(); }

 protected:
  void wrap_compromised(lkh::RekeyMessage& out) override;
  void wrap_arrivals(lkh::RekeyMessage& out) override;

 private:
  [[nodiscard]] const lkh::KeyTree& tree_of(std::uint32_t partition) const noexcept {
    return partition == 0 ? s_tree_ : l_tree_;
  }

  engine::PolicyInfo info_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  lkh::KeyTree s_tree_;
  lkh::KeyTree l_tree_;
  engine::GroupKeyManager dek_;
};

}  // namespace gk::partition
