#include "partition/tt_policy.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::partition {

TtPolicy::TtPolicy(unsigned degree, unsigned s_period_epochs, Rng rng,
                   std::shared_ptr<lkh::IdAllocator> ids)
    : ids_(ids != nullptr ? std::move(ids) : lkh::IdAllocator::create()),
      s_tree_(degree, rng.fork(), ids_),
      l_tree_(degree, rng.fork(), ids_),
      dek_(rng.fork(), ids_) {
  info_.name = "tt";
  info_.split_partitions = s_period_epochs > 0;
  info_.migrate_after = s_period_epochs;
  info_.durable = true;
}

TtPolicy::Admission TtPolicy::admit(const workload::MemberProfile& profile) {
  // K = 0 degenerates to the one-keytree scheme: everyone goes straight to
  // the L-tree and no migrations ever happen.
  const bool to_s = info_.migrate_after > 0;
  const auto grant = to_s ? s_tree_.insert(profile.id) : l_tree_.insert(profile.id);
  return {{grant.individual_key, grant.leaf_id}, to_s ? 0u : 1u};
}

void TtPolicy::evict(workload::MemberId member, std::uint32_t partition) {
  if (partition == 0)
    s_tree_.remove(member);
  else
    l_tree_.remove(member);
}

std::optional<crypto::KeyId> TtPolicy::migrate(workload::MemberId member) {
  const auto individual = s_tree_.individual_key(member);
  s_tree_.remove(member);
  const auto grant = l_tree_.insert_with_key(member, individual);
  return grant.leaf_id;
}

lkh::RekeyMessage TtPolicy::emit(std::uint64_t epoch) {
  auto message = s_tree_.commit(epoch);
  message.append(l_tree_.commit(epoch));
  return message;
}

void TtPolicy::wrap_compromised(lkh::RekeyMessage& out) {
  if (!s_tree_.empty())
    dek_.wrap_under(s_tree_.root_key().key, s_tree_.root_id(),
                    s_tree_.root_key().version, out);
  if (!l_tree_.empty())
    dek_.wrap_under(l_tree_.root_key().key, l_tree_.root_id(),
                    l_tree_.root_key().version, out);
}

void TtPolicy::wrap_arrivals(lkh::RekeyMessage& out) {
  // Arrivals climb their tree and take the DEK from one wrap under that
  // tree's root (incumbents, migrants included, chain from the previous
  // DEK).
  const lkh::KeyTree& arrivals = info_.migrate_after > 0 ? s_tree_ : l_tree_;
  if (!arrivals.empty())
    dek_.wrap_under(arrivals.root_key().key, arrivals.root_id(),
                    arrivals.root_key().version, out);
}

std::vector<crypto::KeyId> TtPolicy::member_path(workload::MemberId member,
                                                 std::uint32_t partition) const {
  auto path = tree_of(partition).path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<std::uint8_t> TtPolicy::save_policy_state() const {
  common::ByteWriter out;
  out.u32(info_.migrate_after);
  out.blob(lkh::snapshot_tree_exact(s_tree_));
  out.blob(lkh::snapshot_tree_exact(l_tree_));
  return out.take();
}

void TtPolicy::restore_policy_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  GK_ENSURE_MSG(in.u32() == info_.migrate_after,
                "restored state has a different S-period");
  auto restored_s = lkh::restore_tree_exact(in.blob(), ids_);
  auto restored_l = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored_s.degree() == s_tree_.degree() &&
                    restored_l.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  s_tree_ = std::move(restored_s);
  l_tree_ = std::move(restored_l);
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
}

engine::PlacementPolicy::LegacyState TtPolicy::restore_legacy(
    std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  LegacyState legacy;
  legacy.epoch = in.u64();
  GK_ENSURE_MSG(in.u32() == info_.migrate_after,
                "restored state has a different S-period");
  legacy.id_watermark = in.u64();
  auto restored_s = lkh::restore_tree_exact(in.blob(), ids_);
  auto restored_l = lkh::restore_tree_exact(in.blob(), ids_);
  GK_ENSURE_MSG(restored_s.degree() == s_tree_.degree() &&
                    restored_l.degree() == l_tree_.degree(),
                "restored state has a different tree degree");
  s_tree_ = std::move(restored_s);
  l_tree_ = std::move(restored_l);
  dek_.restore_state(in);
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    const auto joined_epoch = in.u64();
    const std::uint32_t partition = in.u8() != 0 ? 0 : 1;
    legacy.ledger.push_back({raw_id, joined_epoch, partition});
  }
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  return legacy;
}

std::vector<engine::PathKey> TtPolicy::member_path_keys(workload::MemberId member,
                                                        std::uint32_t partition) const {
  std::vector<engine::PathKey> path;
  for (const auto& entry : tree_of(partition).path_keys(member))
    path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 TtPolicy::member_individual_key(workload::MemberId member,
                                               std::uint32_t partition) const {
  return tree_of(partition).individual_key(member);
}

crypto::KeyId TtPolicy::member_leaf_id(workload::MemberId member,
                                       std::uint32_t partition) const {
  return tree_of(partition).leaf_id(member);
}

}  // namespace gk::partition
