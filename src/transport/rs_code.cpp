#include "transport/rs_code.h"

#include "common/ensure.h"
#include "transport/gf256.h"

namespace gk::transport {

namespace {

/// Invert a k x k matrix over GF(256) by Gauss-Jordan. Returns false if
/// singular (cannot happen for submatrices of our generator, but the code
/// defends anyway).
bool invert(std::vector<std::vector<std::uint8_t>>& m,
            std::vector<std::vector<std::uint8_t>>& out) {
  const std::size_t n = m.size();
  out.assign(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) out[i][i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col] == 0) ++pivot;
    if (pivot == n) return false;
    std::swap(m[pivot], m[col]);
    std::swap(out[pivot], out[col]);

    const std::uint8_t scale = gf256::inv(m[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      m[col][j] = gf256::mul(m[col][j], scale);
      out[col][j] = gf256::mul(out[col][j], scale);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || m[r][col] == 0) continue;
      const std::uint8_t factor = m[r][col];
      for (std::size_t j = 0; j < n; ++j) {
        m[r][j] = gf256::add(m[r][j], gf256::mul(factor, m[col][j]));
        out[r][j] = gf256::add(out[r][j], gf256::mul(factor, out[col][j]));
      }
    }
  }
  return true;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned k, unsigned max_parity)
    : k_(k), max_parity_(max_parity) {
  GK_ENSURE(k >= 1);
  GK_ENSURE(k + max_parity <= 255);

  const unsigned rows = k_ + max_parity_;
  // Extended Vandermonde: V[r][c] = r^c (with 0^0 = 1).
  matrix_.assign(rows, std::vector<std::uint8_t>(k_, 0));
  for (unsigned r = 0; r < rows; ++r)
    for (unsigned c = 0; c < k_; ++c)
      matrix_[r][c] = gf256::pow(static_cast<std::uint8_t>(r), c);

  // Column-reduce so the top k x k block becomes the identity; elementary
  // column operations preserve the any-k-rows-invertible property.
  for (unsigned col = 0; col < k_; ++col) {
    // Ensure matrix_[col][col] != 0 by swapping columns if needed.
    if (matrix_[col][col] == 0) {
      for (unsigned other = col + 1; other < k_; ++other) {
        if (matrix_[col][other] != 0) {
          for (unsigned r = 0; r < rows; ++r)
            std::swap(matrix_[r][col], matrix_[r][other]);
          break;
        }
      }
    }
    GK_ENSURE(matrix_[col][col] != 0);
    const std::uint8_t scale = gf256::inv(matrix_[col][col]);
    for (unsigned r = 0; r < rows; ++r)
      matrix_[r][col] = gf256::mul(matrix_[r][col], scale);
    for (unsigned other = 0; other < k_; ++other) {
      if (other == col || matrix_[col][other] == 0) continue;
      const std::uint8_t factor = matrix_[col][other];
      for (unsigned r = 0; r < rows; ++r)
        matrix_[r][other] =
            gf256::add(matrix_[r][other], gf256::mul(factor, matrix_[r][col]));
    }
  }
}

const std::vector<std::uint8_t>& ReedSolomon::row(unsigned index) const {
  GK_ENSURE(index < matrix_.size());
  return matrix_[index];
}

std::vector<std::uint8_t> ReedSolomon::encode_shard(
    const std::vector<std::vector<std::uint8_t>>& sources, unsigned index) const {
  GK_ENSURE(sources.size() == k_);
  GK_ENSURE(index < k_ + max_parity_);
  const std::size_t length = sources.front().size();
  for (const auto& s : sources) GK_ENSURE(s.size() == length);

  if (index < k_) return sources[index];  // systematic

  const auto& coefficients = row(index);
  std::vector<std::uint8_t> shard(length, 0);
  for (unsigned c = 0; c < k_; ++c) {
    const std::uint8_t coefficient = coefficients[c];
    if (coefficient == 0) continue;
    const auto& source = sources[c];
    for (std::size_t b = 0; b < length; ++b)
      shard[b] = gf256::add(shard[b], gf256::mul(coefficient, source[b]));
  }
  return shard;
}

std::optional<std::vector<std::vector<std::uint8_t>>> ReedSolomon::decode(
    const std::vector<std::pair<unsigned, std::vector<std::uint8_t>>>& shards) const {
  // Deduplicate by shard index, keep the first k distinct.
  std::vector<const std::pair<unsigned, std::vector<std::uint8_t>>*> chosen;
  std::vector<bool> seen(k_ + max_parity_, false);
  for (const auto& shard : shards) {
    if (shard.first >= k_ + max_parity_ || seen[shard.first]) continue;
    seen[shard.first] = true;
    chosen.push_back(&shard);
    if (chosen.size() == k_) break;
  }
  if (chosen.size() < k_) return std::nullopt;

  const std::size_t length = chosen.front()->second.size();
  for (const auto* shard : chosen)
    if (shard->second.size() != length) return std::nullopt;

  // Build the k x k system from the chosen rows and invert it.
  std::vector<std::vector<std::uint8_t>> system(k_);
  for (unsigned i = 0; i < k_; ++i) system[i] = row(chosen[i]->first);
  std::vector<std::vector<std::uint8_t>> inverse;
  if (!invert(system, inverse)) return std::nullopt;

  // sources = inverse * received
  std::vector<std::vector<std::uint8_t>> sources(
      k_, std::vector<std::uint8_t>(length, 0));
  for (unsigned r = 0; r < k_; ++r) {
    for (unsigned c = 0; c < k_; ++c) {
      const std::uint8_t coefficient = inverse[r][c];
      if (coefficient == 0) continue;
      const auto& shard = chosen[c]->second;
      for (std::size_t b = 0; b < length; ++b)
        sources[r][b] = gf256::add(sources[r][b], gf256::mul(coefficient, shard[b]));
    }
  }
  return sources;
}

}  // namespace gk::transport
