#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/keywrap.h"
#include "netsim/receiver.h"

namespace gk::transport {

/// Per-receiver delivery state for one rekey epoch. `interest` holds the
/// payload indices this member needs (the sparseness property: usually a
/// tiny subset). The transport fills `received` as packets land.
struct SessionReceiver {
  netsim::Receiver channel;
  std::vector<std::uint32_t> interest;  // sorted, deduplicated
  std::vector<bool> received;           // parallel to interest
  std::size_t missing = 0;
  /// Protocol round (1-based) in which the last missing key arrived; 0
  /// until complete. The distribution of this value across receivers is
  /// the rekey *latency* the paper's soft real-time requirement cares
  /// about (Section 2.2) — proactive redundancy buys it down.
  std::size_t completion_round = 0;

  SessionReceiver(netsim::Receiver ch, std::vector<std::uint32_t> wanted)
      : channel(std::move(ch)), interest(std::move(wanted)),
        received(interest.size(), false), missing(interest.size()) {}

  [[nodiscard]] bool done() const noexcept { return missing == 0; }
};

/// What one transport session cost. `key_transmissions` is the paper's
/// bandwidth metric (every encrypted key counted once per time it is
/// multicast, including proactive replicas, retransmissions, and — for
/// FEC — parity expressed in key-equivalents).
///
/// Termination contract: a deliver() call ends in exactly one of two ways.
/// Either every receiver obtained its whole interest set —
/// `all_delivered == true` — or the protocol hit its round cap with
/// receivers still missing keys and *gave up* — `all_delivered == false`
/// and `rounds_capped == true`. `all_delivered == false` therefore never
/// means "still in progress": the session is over, and the receivers whose
/// `done()` is false are desynchronized until the resync protocol
/// (transport/resync.h) or the next epoch's rekey catches them up.
struct TransportReport {
  std::size_t rounds = 0;
  std::size_t packets_sent = 0;
  std::size_t key_transmissions = 0;
  std::size_t nacks = 0;
  bool all_delivered = false;
  /// True iff the round cap fired while some receiver was still missing
  /// keys (always equal to `!all_delivered` at return; kept separate so
  /// aggregated reports can count capped sessions explicitly).
  bool rounds_capped = false;
};

/// Common interface so experiments can swap protocols.
class RekeyTransport {
 public:
  virtual ~RekeyTransport() = default;

  /// Deliver `payload` to every receiver until each has its whole interest
  /// set (or the round cap is hit). Mutates the receivers' state.
  virtual TransportReport deliver(std::span<const crypto::WrappedKey> payload,
                                  std::vector<SessionReceiver>& receivers) = 0;
};

}  // namespace gk::transport
