#include "transport/fec.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"
#include "transport/packet.h"
#include "transport/rs_code.h"

namespace gk::transport {

namespace {

/// One FEC block: a contiguous run of source packets plus its RS code.
struct Block {
  unsigned k = 0;                      // sources in this block
  unsigned parity_budget = 0;          // 255 - k
  unsigned next_parity = 0;            // next unused parity shard index
  std::vector<Packet> sources;         // the k source packets
  std::size_t max_packet_keys = 0;
  bool decode_verified = false;
};

/// Per-receiver, per-block reception state.
struct BlockState {
  std::vector<bool> shard_received;  // index < k: source; >= k: parity
  unsigned distinct = 0;
  bool decoded = false;
};

}  // namespace

TransportReport ProactiveFecTransport::deliver(
    std::span<const crypto::WrappedKey> payload,
    std::vector<SessionReceiver>& receivers) {
  GK_ENSURE(config_.block_k >= 1 && config_.block_k <= 128);
  GK_ENSURE(config_.proactivity >= 1.0);

  TransportReport report;
  const std::size_t key_count = payload.size();
  if (key_count == 0 || receivers.empty()) {
    report.all_delivered = true;
    return report;
  }

  // ---- Pack sources and form blocks. ----
  const std::size_t packet_count =
      (key_count + config_.keys_per_packet - 1) / config_.keys_per_packet;
  const std::size_t block_count =
      (packet_count + config_.block_k - 1) / config_.block_k;

  std::vector<Block> blocks(block_count);
  for (std::size_t b = 0; b < block_count; ++b) {
    const std::size_t first = b * config_.block_k;
    const std::size_t last = std::min(packet_count, first + config_.block_k);
    blocks[b].k = static_cast<unsigned>(last - first);
    blocks[b].parity_budget = 255 - blocks[b].k;
    blocks[b].sources.resize(blocks[b].k);
  }
  for (std::uint32_t w = 0; w < key_count; ++w) {
    const std::size_t p = w / config_.keys_per_packet;
    const std::size_t b = p / config_.block_k;
    blocks[b].sources[p % config_.block_k].key_indices.push_back(w);
  }
  for (auto& block : blocks)
    for (const auto& packet : block.sources)
      block.max_packet_keys = std::max(block.max_packet_keys, packet.key_count());

  // ---- Per-receiver block state and needed-source map. ----
  // needed[r][b] lists the source slots receiver r requires from block b.
  std::vector<std::vector<std::vector<unsigned>>> needed(
      receivers.size(), std::vector<std::vector<unsigned>>(block_count));
  std::vector<std::vector<BlockState>> state(receivers.size());
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    state[r].resize(block_count);
    for (std::size_t b = 0; b < block_count; ++b)
      state[r][b].shard_received.assign(blocks[b].k + blocks[b].parity_budget, false);
    for (const auto w : receivers[r].interest) {
      const std::size_t p = w / config_.keys_per_packet;
      needed[r][p / config_.block_k].push_back(
          static_cast<unsigned>(p % config_.block_k));
    }
    for (auto& slots : needed[r]) {
      std::sort(slots.begin(), slots.end());
      slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    }
  }

  // Mark every interest key of block b as received for receiver r.
  auto credit_block = [&](std::size_t r, std::size_t b) {
    auto& receiver = receivers[r];
    for (std::uint32_t s = 0; s < receiver.interest.size(); ++s) {
      if (receiver.received[s]) continue;
      const std::size_t p = receiver.interest[s] / config_.keys_per_packet;
      if (p / config_.block_k == b) {
        receiver.received[s] = true;
        --receiver.missing;
      }
    }
  };
  // Mark the keys carried by one specific source packet.
  auto credit_packet = [&](std::size_t r, const Packet& packet) {
    auto& receiver = receivers[r];
    for (std::uint32_t s = 0; s < receiver.interest.size(); ++s) {
      if (receiver.received[s]) continue;
      if (std::binary_search(packet.key_indices.begin(), packet.key_indices.end(),
                             receiver.interest[s])) {
        receiver.received[s] = true;
        --receiver.missing;
      }
    }
  };
  for (auto& block : blocks)
    for (auto& packet : block.sources)
      std::sort(packet.key_indices.begin(), packet.key_indices.end());

  // Optional end-to-end proof: encode real parity bytes and decode.
  auto verify_decode = [&](Block& block) {
    if (!config_.verify_decoding || block.decode_verified) return;
    block.decode_verified = true;
    const std::size_t shard_bytes =
        block.max_packet_keys * crypto::WrappedKey::kWireSize;
    std::vector<std::vector<std::uint8_t>> sources;
    for (const auto& packet : block.sources) {
      auto bytes = serialize_packet(packet, payload);
      bytes.resize(shard_bytes, 0);
      sources.push_back(std::move(bytes));
    }
    ReedSolomon rs(block.k, std::min(block.parity_budget, 32u));
    // Drop ceil(k/2) sources, decode from the rest + parity.
    std::vector<std::pair<unsigned, std::vector<std::uint8_t>>> shards;
    for (unsigned i = block.k / 2; i < block.k; ++i)
      shards.emplace_back(i, rs.encode_shard(sources, i));
    for (unsigned i = 0; shards.size() < block.k; ++i)
      shards.emplace_back(block.k + i, rs.encode_shard(sources, block.k + i));
    const auto recovered = rs.decode(shards);
    GK_ENSURE_MSG(recovered.has_value(), "RS decode failed");
    for (unsigned i = 0; i < block.k; ++i)
      GK_ENSURE_MSG((*recovered)[i] == sources[i], "RS decode mismatch");
  };

  // ---- Round loop. ----
  const auto proactive_parity = [&](const Block& block) {
    return static_cast<unsigned>(
        std::ceil((config_.proactivity - 1.0) * block.k) + 0.1);
  };

  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    const bool everyone_done =
        std::all_of(receivers.begin(), receivers.end(),
                    [](const SessionReceiver& r) { return r.done(); });
    if (everyone_done) {
      report.all_delivered = true;
      return report;
    }

    // Decide what to send per block this round.
    struct Plan {
      bool send_sources = false;
      unsigned parity = 0;
    };
    std::vector<Plan> plan(block_count);
    bool anything = false;
    if (round == 0) {
      for (std::size_t b = 0; b < block_count; ++b) {
        plan[b].send_sources = true;
        plan[b].parity = proactive_parity(blocks[b]);
        anything = true;
      }
    } else {
      // NACK aggregation: worst remaining deficit per block.
      for (std::size_t r = 0; r < receivers.size(); ++r) {
        if (receivers[r].done()) continue;
        for (std::size_t b = 0; b < block_count; ++b) {
          if (needed[r][b].empty() || state[r][b].decoded) continue;
          // Deficit to decode the whole block.
          const unsigned have = state[r][b].distinct;
          const unsigned deficit = blocks[b].k > have ? blocks[b].k - have : 0;
          // Still short on direct sources?
          bool direct_missing = false;
          for (const auto slot : needed[r][b])
            if (!state[r][b].shard_received[slot]) direct_missing = true;
          if (!direct_missing) continue;
          plan[b].parity = std::max(plan[b].parity, std::max(deficit, 1u));
          anything = true;
        }
      }
    }
    if (!anything) {
      report.all_delivered = true;
      return report;
    }
    ++report.rounds;

    // ---- Transmit. ----
    for (std::size_t b = 0; b < block_count; ++b) {
      auto& block = blocks[b];
      // Source shards.
      if (plan[b].send_sources) {
        for (unsigned slot = 0; slot < block.k; ++slot) {
          ++report.packets_sent;
          report.key_transmissions += block.sources[slot].key_count();
          for (std::size_t r = 0; r < receivers.size(); ++r) {
            if (receivers[r].done() || needed[r][b].empty()) continue;
            if (!receivers[r].channel.receives()) continue;
            auto& bs = state[r][b];
            if (!bs.shard_received[slot]) {
              bs.shard_received[slot] = true;
              ++bs.distinct;
              credit_packet(r, block.sources[slot]);
              if (!bs.decoded && bs.distinct >= block.k) {
                bs.decoded = true;
                verify_decode(block);
                credit_block(r, b);
              }
            }
          }
        }
      }
      // Parity shards (fresh indices while the field lasts).
      for (unsigned j = 0; j < plan[b].parity; ++j) {
        const unsigned shard_index =
            block.k + (block.next_parity % std::max(block.parity_budget, 1u));
        ++block.next_parity;
        ++report.packets_sent;
        report.key_transmissions += block.max_packet_keys;
        for (std::size_t r = 0; r < receivers.size(); ++r) {
          if (receivers[r].done() || needed[r][b].empty()) continue;
          if (state[r][b].decoded) continue;
          if (!receivers[r].channel.receives()) continue;
          auto& bs = state[r][b];
          if (!bs.shard_received[shard_index]) {
            bs.shard_received[shard_index] = true;
            ++bs.distinct;
            if (bs.distinct >= block.k) {
              bs.decoded = true;
              verify_decode(block);
              credit_block(r, b);
            }
          }
        }
      }
    }
    for (auto& receiver : receivers) {
      if (!receiver.done())
        ++report.nacks;
      else if (receiver.completion_round == 0)
        receiver.completion_round = report.rounds;
    }
  }

  report.all_delivered =
      std::all_of(receivers.begin(), receivers.end(),
                  [](const SessionReceiver& r) { return r.done(); });
  report.rounds_capped = !report.all_delivered;
  return report;
}

}  // namespace gk::transport
