#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace gk::transport {

/// Systematic Reed-Solomon erasure code over GF(256): `k` source shards
/// plus up to `max_parity` parity shards; any k of the emitted shards
/// reconstruct the sources (MDS property).
///
/// The generator matrix is an extended Vandermonde matrix column-reduced so
/// its top k rows form the identity — the construction from Plank's RS
/// erasure-coding tutorial, which guarantees every k x k submatrix is
/// invertible. Parity shards can be generated lazily (shard index >= k), so
/// a proactive-FEC transport can keep minting fresh parity across NACK
/// rounds without re-planning the block.
class ReedSolomon {
 public:
  /// Requires 1 <= k and k + max_parity <= 255.
  ReedSolomon(unsigned k, unsigned max_parity);

  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned max_parity() const noexcept { return max_parity_; }

  /// Encode shard `index` (0..k-1 returns the source itself; k.. returns
  /// parity). All sources must have equal length.
  [[nodiscard]] std::vector<std::uint8_t> encode_shard(
      const std::vector<std::vector<std::uint8_t>>& sources, unsigned index) const;

  /// Reconstruct all k source shards from any >= k received shards, given
  /// each shard's index. Returns nullopt if fewer than k distinct shards
  /// are supplied or the shard lengths disagree.
  [[nodiscard]] std::optional<std::vector<std::vector<std::uint8_t>>> decode(
      const std::vector<std::pair<unsigned, std::vector<std::uint8_t>>>& shards) const;

 private:
  /// Row `index` of the systematic generator matrix (k coefficients).
  [[nodiscard]] const std::vector<std::uint8_t>& row(unsigned index) const;

  unsigned k_;
  unsigned max_parity_;
  std::vector<std::vector<std::uint8_t>> matrix_;  // (k + max_parity) x k
};

}  // namespace gk::transport
