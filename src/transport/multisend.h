#pragma once

#include "transport/session.h"

namespace gk::transport {

/// The multi-send baseline [MSEC]: the server repeatedly multicasts the
/// *entire* rekey payload — every key with the same degree of replication —
/// until every receiver has its keys of interest. No weighting, no
/// NACK-driven payload pruning; this is the strawman WKA-BKR improves on.
class MultiSendTransport final : public RekeyTransport {
 public:
  struct Config {
    std::size_t keys_per_packet = 16;
    std::size_t max_rounds = 128;
    /// Replicas of the full payload per round (the fixed replication
    /// degree); rounds repeat until everyone is served.
    std::size_t replication = 1;
  };

  explicit MultiSendTransport(Config config) : config_(config) {}

  TransportReport deliver(std::span<const crypto::WrappedKey> payload,
                          std::vector<SessionReceiver>& receivers) override;

 private:
  Config config_;
};

}  // namespace gk::transport
