#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"

namespace gk::transport {

/// Simulated byte-frame channel between a leader's journal shipper and one
/// standby replica. Frames are opaque byte blobs; the channel can drop,
/// delay, tear (truncate), or bit-flip them, which is exactly the fault
/// surface a replication stream must survive: the shipped-frame checksum
/// catches tears and flips, offset bookkeeping catches drops and
/// reordering, and the standby answers both with a checkpoint catch-up.
///
/// Faults are one-shot and explicitly armed (arm_fault applies to the next
/// send only), so a fault schedule can deterministically corrupt "the frame
/// shipped to standby 2 in epoch 7" without perturbing anything else.
class ShipChannel {
 public:
  enum class Fault : std::uint8_t { kNone, kDrop, kDelay, kTear, kBitFlip };

  explicit ShipChannel(Rng rng) : rng_(rng) {}

  /// Arm a fault for the next send() only.
  void arm_fault(Fault fault) noexcept { armed_ = fault; }

  /// Queue one frame, applying any armed fault. A torn frame loses a
  /// random-length tail (at least one byte, never all of them); a flipped
  /// frame has one random bit inverted; a delayed frame is withheld for one
  /// deliver() round and then arrives *after* fresher frames (reordering).
  void send(std::vector<std::uint8_t> frame);

  /// Frames arriving now, in channel order. Delayed frames age one round
  /// per call and join the tail of a later delivery.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> deliver();

  struct Stats {
    std::size_t sent = 0;
    std::size_t dropped = 0;
    std::size_t delayed = 0;
    std::size_t torn = 0;
    std::size_t flipped = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Rng rng_;
  Fault armed_ = Fault::kNone;
  std::deque<std::vector<std::uint8_t>> ready_;
  std::deque<std::vector<std::uint8_t>> delayed_;
  Stats stats_;
};

}  // namespace gk::transport
