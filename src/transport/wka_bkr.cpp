#include "transport/wka_bkr.h"

#include <algorithm>
#include <cmath>

#include "analytic/wka_bkr_model.h"
#include "common/ensure.h"
#include "transport/packet.h"

namespace gk::transport {

namespace {

/// (receiver index, slot in that receiver's interest list) pairs per key.
struct Watcher {
  std::uint32_t receiver;
  std::uint32_t slot;
};

}  // namespace

TransportReport WkaBkrTransport::deliver(std::span<const crypto::WrappedKey> payload,
                                         std::vector<SessionReceiver>& receivers) {
  TransportReport report;
  const std::size_t key_count = payload.size();
  if (key_count == 0 || receivers.empty()) {
    report.all_delivered = true;
    return report;
  }

  // Reverse index: which receivers still need each key.
  std::vector<std::vector<Watcher>> watchers(key_count);
  for (std::uint32_t r = 0; r < receivers.size(); ++r) {
    const auto& interest = receivers[r].interest;
    for (std::uint32_t s = 0; s < interest.size(); ++s) {
      GK_ENSURE(interest[s] < key_count);
      watchers[interest[s]].push_back({r, s});
    }
  }

  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    // ---- NACK aggregation: which keys does anyone still need? ----
    std::vector<std::uint32_t> needed;
    std::vector<std::size_t> weights;
    for (std::uint32_t w = 0; w < key_count; ++w) {
      auto& watching = watchers[w];
      // Compact out satisfied receivers (BKR: retransmissions only target
      // keys still needed, weighted by who still needs them).
      watching.erase(std::remove_if(watching.begin(), watching.end(),
                                    [&receivers](const Watcher& x) {
                                      return receivers[x.receiver].received[x.slot];
                                    }),
                     watching.end());
      if (watching.empty()) continue;
      needed.push_back(w);

      std::size_t weight = 1;
      if (config_.weighted) {
        // Loss composition of the remaining audience for this key.
        std::vector<analytic::LossClass> classes;
        for (const auto& x : watching) {
          const double rate = receivers[x.receiver].channel.loss_rate();
          auto it = std::find_if(classes.begin(), classes.end(),
                                 [rate](const analytic::LossClass& c) {
                                   return c.rate == rate;
                                 });
          if (it == classes.end())
            classes.push_back({rate, 1.0});
          else
            it->fraction += 1.0;
        }
        const auto audience = static_cast<double>(watching.size());
        for (auto& c : classes) c.fraction /= audience;
        const double expected = analytic::expected_transmissions(audience, classes);
        weight = static_cast<std::size_t>(std::llround(expected));
        weight = std::clamp<std::size_t>(weight, 1, config_.max_weight);
      }
      weights.push_back(weight);
    }

    if (needed.empty()) {
      report.all_delivered = true;
      return report;
    }
    ++report.rounds;

    // ---- Pack replicas into packets (striped, least-filled first). ----
    std::size_t total_replicas = 0;
    for (const auto weight : weights) total_replicas += weight;
    const std::size_t packet_count =
        (total_replicas + config_.keys_per_packet - 1) / config_.keys_per_packet;
    std::vector<Packet> packets(packet_count);

    // Heaviest keys first so their replicas land in distinct packets.
    std::vector<std::size_t> order(needed.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&weights](std::size_t a, std::size_t b) {
      return weights[a] > weights[b];
    });

    std::size_t cursor = 0;
    for (const auto i : order) {
      const std::size_t replicas = std::min(weights[i], packet_count);
      for (std::size_t j = 0; j < replicas; ++j) {
        packets[(cursor + j) % packet_count].key_indices.push_back(needed[i]);
        ++report.key_transmissions;
      }
      cursor = (cursor + replicas) % packet_count;
    }
    for (auto& packet : packets)
      std::sort(packet.key_indices.begin(), packet.key_indices.end());

    // ---- Multicast round. ----
    report.packets_sent += packets.size();
    for (auto& receiver : receivers) {
      if (receiver.done()) continue;
      for (const auto& packet : packets) {
        if (!receiver.channel.receives()) continue;
        // Check this receiver's missing keys against the packet contents.
        for (std::uint32_t s = 0; s < receiver.interest.size(); ++s) {
          if (receiver.received[s]) continue;
          if (std::binary_search(packet.key_indices.begin(), packet.key_indices.end(),
                                 receiver.interest[s])) {
            receiver.received[s] = true;
            --receiver.missing;
          }
        }
      }
      if (!receiver.done())
        ++report.nacks;
      else if (receiver.completion_round == 0)
        receiver.completion_round = report.rounds;
    }
  }

  report.all_delivered =
      std::all_of(receivers.begin(), receivers.end(),
                  [](const SessionReceiver& r) { return r.done(); });
  report.rounds_capped = !report.all_delivered;
  return report;
}

}  // namespace gk::transport
