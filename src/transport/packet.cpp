#include "transport/packet.h"

#include <cstring>

#include "common/ensure.h"

namespace gk::transport {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void serialize_wrap(std::vector<std::uint8_t>& out, const crypto::WrappedKey& wrap) {
  put_u64(out, crypto::raw(wrap.target_id));
  put_u64(out, (std::uint64_t{wrap.target_version} << 32) | wrap.wrapping_version);
  put_u64(out, crypto::raw(wrap.wrapping_id));
  out.insert(out.end(), wrap.nonce.begin(), wrap.nonce.end());
  out.insert(out.end(), wrap.ciphertext.begin(), wrap.ciphertext.end());
  out.insert(out.end(), wrap.tag.begin(), wrap.tag.end());
}

crypto::WrappedKey deserialize_wrap(const std::uint8_t* p) {
  crypto::WrappedKey wrap;
  wrap.target_id = crypto::make_key_id(get_u64(p));
  const std::uint64_t versions = get_u64(p + 8);
  wrap.target_version = static_cast<std::uint32_t>(versions >> 32);
  wrap.wrapping_version = static_cast<std::uint32_t>(versions);
  wrap.wrapping_id = crypto::make_key_id(get_u64(p + 16));
  std::memcpy(wrap.nonce.data(), p + 24, wrap.nonce.size());
  std::memcpy(wrap.ciphertext.data(), p + 36, wrap.ciphertext.size());
  std::memcpy(wrap.tag.data(), p + 52, wrap.tag.size());
  return wrap;
}

}  // namespace

std::vector<std::uint8_t> serialize_packet(const Packet& packet,
                                           std::span<const crypto::WrappedKey> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(packet.key_indices.size() * crypto::WrappedKey::kWireSize);
  for (const auto index : packet.key_indices) {
    GK_ENSURE(index < payload.size());
    serialize_wrap(out, payload[index]);
  }
  return out;
}

std::vector<crypto::WrappedKey> deserialize_wraps(std::span<const std::uint8_t> bytes,
                                                  std::size_t count) {
  GK_ENSURE(bytes.size() >= count * crypto::WrappedKey::kWireSize);
  std::vector<crypto::WrappedKey> wraps;
  wraps.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    wraps.push_back(deserialize_wrap(bytes.data() + i * crypto::WrappedKey::kWireSize));
  return wraps;
}

}  // namespace gk::transport
