#include "transport/packet.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "wire/codec.h"
#include "wire/wrap_codec.h"

namespace gk::transport {

std::vector<std::uint8_t> serialize_packet(const Packet& packet,
                                           std::span<const crypto::WrappedKey> payload) {
  common::ByteWriter out;
  for (const auto index : packet.key_indices) {
    GK_ENSURE(index < payload.size());
    wire::encode_wrap(out, payload[index]);
  }
  return out.take();
}

std::vector<crypto::WrappedKey> deserialize_wraps(std::span<const std::uint8_t> bytes,
                                                  std::size_t count) {
  GK_ENSURE(bytes.size() >= count * crypto::WrappedKey::kWireSize);
  wire::Reader in(bytes);
  std::vector<crypto::WrappedKey> wraps;
  wraps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) wraps.push_back(wire::decode_wrap(in));
  return wraps;
}

}  // namespace gk::transport
