#pragma once

#include "transport/session.h"

namespace gk::transport {

/// WKA-BKR rekey transport [SZJ02], Section 2.2.1 of the paper.
///
/// Weighted Key Assignment: before the first multicast round each key's
/// replication weight is set to (the rounded) E[M], the expected number of
/// transmissions needed to reach every receiver interested in it —
/// computed from the interested-receiver count and their loss rates
/// (Appendix B). Replicas are striped across packets so no packet carries
/// the same key twice.
///
/// Batched Key Retransmission: after each round the server collects NACKs
/// and builds *fresh* packets containing only keys some receiver still
/// needs (never blind packet retransmission), re-weighting against the
/// remaining receiver population.
class WkaBkrTransport final : public RekeyTransport {
 public:
  struct Config {
    std::size_t keys_per_packet = 16;
    std::size_t max_rounds = 128;
    /// Cap on a single key's proactive replication per round.
    std::size_t max_weight = 8;
    /// true = paper's WKA; false disables weighting (every key weight 1),
    /// isolating BKR for ablation studies.
    bool weighted = true;
  };

  explicit WkaBkrTransport(Config config) : config_(config) {}

  TransportReport deliver(std::span<const crypto::WrappedKey> payload,
                          std::vector<SessionReceiver>& receivers) override;

 private:
  Config config_;
};

}  // namespace gk::transport
