#include "transport/ship_channel.h"

#include <utility>

namespace gk::transport {

void ShipChannel::send(std::vector<std::uint8_t> frame) {
  const auto fault = std::exchange(armed_, Fault::kNone);
  ++stats_.sent;
  switch (fault) {
    case Fault::kNone:
      ready_.push_back(std::move(frame));
      break;
    case Fault::kDrop:
      ++stats_.dropped;
      break;
    case Fault::kDelay:
      ++stats_.delayed;
      delayed_.push_back(std::move(frame));
      break;
    case Fault::kTear: {
      ++stats_.torn;
      if (frame.size() > 1) {
        const auto keep = 1 + rng_.uniform_u64(frame.size() - 1);
        frame.resize(static_cast<std::size_t>(keep));
      }
      ready_.push_back(std::move(frame));
      break;
    }
    case Fault::kBitFlip: {
      ++stats_.flipped;
      if (!frame.empty()) {
        const auto bit = rng_.uniform_u64(frame.size() * 8);
        frame[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
      }
      ready_.push_back(std::move(frame));
      break;
    }
  }
}

std::vector<std::vector<std::uint8_t>> ShipChannel::deliver() {
  std::vector<std::vector<std::uint8_t>> arriving;
  arriving.reserve(ready_.size());
  while (!ready_.empty()) {
    arriving.push_back(std::move(ready_.front()));
    ready_.pop_front();
  }
  // Delayed frames arrive a full round late, behind anything fresher.
  while (!delayed_.empty()) {
    ready_.push_back(std::move(delayed_.front()));
    delayed_.pop_front();
  }
  return arriving;
}

}  // namespace gk::transport
