#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/keywrap.h"

namespace gk::transport {

/// A multicast rekey packet: an ordered set of indices into the epoch's
/// rekey payload (the WrappedKey array). Replicated keys appear in
/// multiple packets — never twice in one packet, since per-packet loss
/// makes intra-packet replication worthless.
struct Packet {
  std::vector<std::uint32_t> key_indices;

  [[nodiscard]] std::size_t key_count() const noexcept { return key_indices.size(); }
};

/// Serialize the referenced wraps to wire bytes (used by the FEC path,
/// which needs real shard payloads to encode).
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(
    const Packet& packet, std::span<const crypto::WrappedKey> payload);

/// Parse wire bytes back into wraps. `count` wraps are read; bytes beyond
/// count * WrappedKey::kWireSize are ignored (FEC shards are padded).
[[nodiscard]] std::vector<crypto::WrappedKey> deserialize_wraps(
    std::span<const std::uint8_t> bytes, std::size_t count);

}  // namespace gk::transport
