#include "transport/multisend.h"

#include <algorithm>

#include "transport/packet.h"

namespace gk::transport {

TransportReport MultiSendTransport::deliver(std::span<const crypto::WrappedKey> payload,
                                            std::vector<SessionReceiver>& receivers) {
  TransportReport report;
  const std::size_t key_count = payload.size();
  if (key_count == 0 || receivers.empty()) {
    report.all_delivered = true;
    return report;
  }

  // Sequential packetization of the whole payload.
  const std::size_t packet_count =
      (key_count + config_.keys_per_packet - 1) / config_.keys_per_packet;
  std::vector<Packet> packets(packet_count);
  for (std::uint32_t w = 0; w < key_count; ++w)
    packets[w / config_.keys_per_packet].key_indices.push_back(w);

  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    const bool everyone_done =
        std::all_of(receivers.begin(), receivers.end(),
                    [](const SessionReceiver& r) { return r.done(); });
    if (everyone_done) {
      report.all_delivered = true;
      return report;
    }
    ++report.rounds;

    for (std::size_t replica = 0; replica < config_.replication; ++replica) {
      report.packets_sent += packets.size();
      report.key_transmissions += key_count;
      for (auto& receiver : receivers) {
        if (receiver.done()) continue;
        for (const auto& packet : packets) {
          if (!receiver.channel.receives()) continue;
          for (std::uint32_t s = 0; s < receiver.interest.size(); ++s) {
            if (receiver.received[s]) continue;
            if (std::binary_search(packet.key_indices.begin(),
                                   packet.key_indices.end(), receiver.interest[s])) {
              receiver.received[s] = true;
              --receiver.missing;
            }
          }
        }
      }
    }
    for (auto& receiver : receivers) {
      if (!receiver.done())
        ++report.nacks;
      else if (receiver.completion_round == 0)
        receiver.completion_round = report.rounds;
    }
  }

  report.all_delivered =
      std::all_of(receivers.begin(), receivers.end(),
                  [](const SessionReceiver& r) { return r.done(); });
  report.rounds_capped = !report.all_delivered;
  return report;
}

}  // namespace gk::transport
