#include "transport/resync.h"

#include "common/ensure.h"

namespace gk::transport {

ResyncReport run_resync(std::span<const crypto::WrappedKey> bundle,
                        common::FunctionRef<bool()> receives,
                        const ResyncConfig& config) {
  GK_ENSURE_MSG(config.keys_per_packet > 0, "keys_per_packet must be positive");
  GK_ENSURE_MSG(config.retry_budget > 0, "retry_budget must be positive");

  ResyncReport report;
  report.received.assign(bundle.size(), false);
  if (bundle.empty()) {
    report.delivered = true;
    return report;
  }

  // The straggler schedule (retry budget, capped exponential backoff) is
  // the shared net::OutboundGate — the same gate the socket daemon drives
  // per rekey epoch, so both paths evict a slow member at the same point.
  net::OutboundGate gate(config.straggler());
  std::size_t missing = bundle.size();
  for (;;) {
    if (gate.begin_round() == net::OutboundGate::Round::kBackoff) continue;
    ++report.attempts;
    // Retransmit only what the member's NACK reported missing, packed into
    // unicast packets; each packet survives or drops as a unit.
    std::size_t in_packet = 0;
    bool packet_arrives = false;
    for (std::size_t w = 0; w < bundle.size(); ++w) {
      if (report.received[w]) continue;
      if (in_packet == 0) {
        ++report.packets_sent;
        packet_arrives = receives();
      }
      ++report.key_transmissions;
      if (packet_arrives) {
        report.received[w] = true;
        --missing;
      }
      in_packet = (in_packet + 1) % config.keys_per_packet;
    }
    if (missing == 0) {
      report.delivered = true;
      break;
    }
    if (gate.note_failure()) {
      report.evicted = true;
      break;
    }
  }
  report.rounds_waited = gate.rounds_waited();
  return report;
}

ResyncReport run_resync(std::span<const crypto::WrappedKey> bundle,
                        netsim::Receiver& channel, const ResyncConfig& config) {
  return run_resync(
      bundle, common::FunctionRef<bool()>([&channel] { return channel.receives(); }),
      config);
}

}  // namespace gk::transport
