#include "transport/resync.h"

#include <algorithm>

#include "common/ensure.h"

namespace gk::transport {

ResyncReport run_resync(std::span<const crypto::WrappedKey> bundle,
                        netsim::Receiver& channel, const ResyncConfig& config) {
  GK_ENSURE_MSG(config.keys_per_packet > 0, "keys_per_packet must be positive");
  GK_ENSURE_MSG(config.retry_budget > 0, "retry_budget must be positive");

  ResyncReport report;
  report.received.assign(bundle.size(), false);
  if (bundle.empty()) {
    report.delivered = true;
    return report;
  }

  std::size_t missing = bundle.size();
  for (std::size_t attempt = 1; attempt <= config.retry_budget; ++attempt) {
    ++report.attempts;
    // Retransmit only what the member's NACK reported missing, packed into
    // unicast packets; each packet survives or drops as a unit.
    std::size_t in_packet = 0;
    bool packet_arrives = false;
    for (std::size_t w = 0; w < bundle.size(); ++w) {
      if (report.received[w]) continue;
      if (in_packet == 0) {
        ++report.packets_sent;
        packet_arrives = channel.receives();
      }
      ++report.key_transmissions;
      if (packet_arrives) {
        report.received[w] = true;
        --missing;
      }
      in_packet = (in_packet + 1) % config.keys_per_packet;
    }
    if (missing == 0) {
      report.delivered = true;
      return report;
    }
    if (attempt < config.retry_budget) {
      const std::size_t shift = attempt - 1;
      const std::size_t backoff =
          shift >= 63 ? config.max_backoff_rounds
                      : std::min(config.base_backoff_rounds << shift,
                                 config.max_backoff_rounds);
      report.rounds_waited += backoff;
    }
  }
  report.evicted = true;
  return report;
}

}  // namespace gk::transport
