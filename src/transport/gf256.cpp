#include "transport/gf256.h"

namespace gk::transport::gf256 {

namespace detail {
const Tables& tables() noexcept {
  static const Tables instance;
  return instance;
}
}  // namespace detail

std::uint8_t inv(std::uint8_t a) noexcept {
  const auto& t = detail::tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const unsigned log_result = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[log_result];
}

}  // namespace gk::transport::gf256
