#pragma once

#include <array>
#include <cstdint>

namespace gk::transport::gf256 {

/// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
/// (0x11d), the field conventionally used by Reed-Solomon erasure codes.
/// Tables are built once at static initialization.

namespace detail {
struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
  Tables() noexcept {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i)
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    log[0] = 0;  // log(0) is undefined; callers must special-case zero
  }
};
const Tables& tables() noexcept;
}  // namespace detail

[[nodiscard]] inline std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
  return a ^ b;
}

[[nodiscard]] inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

/// Multiplicative inverse; precondition a != 0.
[[nodiscard]] std::uint8_t inv(std::uint8_t a) noexcept;

/// a / b; precondition b != 0.
[[nodiscard]] inline std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept {
  return mul(a, inv(b));
}

/// a^e (e >= 0).
[[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned e) noexcept;

}  // namespace gk::transport::gf256
