#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/function_ref.h"
#include "crypto/keywrap.h"
#include "net/outbound.h"
#include "netsim/receiver.h"

namespace gk::transport {

/// Member resynchronization protocol: unicast delivery of a catch-up bundle
/// (the member's current leaf-to-root path keys, built by
/// partition::make_catchup_bundle) to one desynchronized member.
///
/// A member falls behind when a rekey session gives up on it
/// (TransportReport::rounds_capped) or when it crashes and rejoins with a
/// wiped ring. Instead of forcing a group-wide rekey, the server re-sends
/// exactly the keys that member needs, NACK-driven with capped exponential
/// backoff between attempts; a member whose retry budget runs out is
/// declared unreachable and evicted at the next epoch (its departure then
/// rotates every key it knew, so a straggler can never pin the group key).
struct ResyncConfig {
  /// Wraps packed per unicast packet (loss is per packet).
  std::size_t keys_per_packet = 16;
  /// Delivery attempts before the member is declared unreachable.
  std::size_t retry_budget = 6;
  /// Backoff before retry k (1-based) is
  /// min(base_backoff_rounds << (k - 1), max_backoff_rounds) rounds.
  std::size_t base_backoff_rounds = 1;
  std::size_t max_backoff_rounds = 8;

  /// The straggler half of this config as the shared policy object the
  /// socket daemon's fan-out gate (net::OutboundGate) consumes. Resync and
  /// the daemon evicting from one policy is what keeps the in-sim and
  /// on-socket eviction schedules identical.
  [[nodiscard]] net::StragglerPolicy straggler() const noexcept {
    return {retry_budget, base_backoff_rounds, max_backoff_rounds};
  }
};

struct ResyncReport {
  /// The member holds the complete bundle.
  bool delivered = false;
  /// Retry budget exhausted with wraps still missing: evict the member.
  bool evicted = false;
  /// Delivery attempts made (first transmission included).
  std::size_t attempts = 0;
  /// Backoff rounds spent waiting between attempts (latency proxy).
  std::size_t rounds_waited = 0;
  std::size_t packets_sent = 0;
  /// Wrapped keys put on the wire, the paper's bandwidth unit. Unicast, so
  /// it never inflates the multicast metric — reported separately.
  std::size_t key_transmissions = 0;
  /// Which bundle entries arrived (parallel to the bundle; partial on
  /// eviction).
  std::vector<bool> received;
};

/// Drive one member's resync to completion or eviction. Only the
/// still-missing wraps are retransmitted on each attempt.
[[nodiscard]] ResyncReport run_resync(std::span<const crypto::WrappedKey> bundle,
                                      netsim::Receiver& channel,
                                      const ResyncConfig& config);

/// Same protocol over an arbitrary per-packet delivery oracle (`receives`
/// is drawn once per unicast packet, like netsim::Receiver::receives).
/// Exists so property tests can script loss patterns and prove the sim and
/// socket paths share one eviction schedule.
[[nodiscard]] ResyncReport run_resync(std::span<const crypto::WrappedKey> bundle,
                                      common::FunctionRef<bool()> receives,
                                      const ResyncConfig& config);

}  // namespace gk::transport
