#pragma once

#include "transport/session.h"

namespace gk::transport {

/// Proactive-FEC rekey transport in the style of Yang et al [YLZL01].
///
/// The rekey payload is packed into source packets, grouped into FEC
/// blocks of `block_k` packets. Round one of each block carries the
/// sources plus ceil((rho - 1) * k) Reed-Solomon parity packets; any k
/// distinct shards of a block reconstruct every source in it. After each
/// round receivers NACK their worst block deficit and the server multicasts
/// that many *fresh* parity shards (never repeats, while the field allows).
///
/// With `verify_decoding` enabled the transport actually runs the GF(256)
/// decoder on real serialized key bytes the first time a block completes
/// via erasure decoding, proving the code path end-to-end (tests use this;
/// benches leave it off and count shards).
class ProactiveFecTransport final : public RekeyTransport {
 public:
  struct Config {
    std::size_t keys_per_packet = 16;
    unsigned block_k = 16;
    double proactivity = 1.25;  ///< rho >= 1
    std::size_t max_rounds = 128;
    bool verify_decoding = false;
  };

  explicit ProactiveFecTransport(Config config) : config_(config) {}

  TransportReport deliver(std::span<const crypto::WrappedKey> payload,
                          std::vector<SessionReceiver>& receivers) override;

 private:
  Config config_;
};

}  // namespace gk::transport
