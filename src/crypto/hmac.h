#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "crypto/secure.h"
#include "crypto/sha256.h"

namespace gk::crypto {

/// HMAC-SHA-256 (RFC 2104) used both as the MAC in our Encrypt-then-MAC key
/// wrapping and as the PRF inside the KDF.
[[nodiscard]] Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                                         std::span<const std::uint8_t> message) noexcept;

/// Cached SHA-256 chaining states after absorbing the key^ipad / key^opad
/// blocks. Computing these once per key turns every subsequent HMAC into two
/// compressions (for messages that fit one padded block) instead of four-plus,
/// and is what the multi-buffer wrap kernels batch across lanes.
struct HmacMidstate {  // gklint: secret-type(HmacMidstate)
  Sha256::State inner{};
  Sha256::State outer{};

  HmacMidstate() noexcept = default;
  HmacMidstate(const HmacMidstate&) noexcept = default;
  HmacMidstate& operator=(const HmacMidstate&) noexcept = default;

  /// Midstates are key-equivalent material; wipe like Key128 does.
  ~HmacMidstate() noexcept {
    secure_wipe(inner.data(), inner.size() * sizeof(std::uint32_t));
    secure_wipe(outer.data(), outer.size() * sizeof(std::uint32_t));
  }
};

/// Precompute the per-key midstate (two compressions).
[[nodiscard]] HmacMidstate hmac_midstate(std::span<const std::uint8_t> key) noexcept;

/// HMAC-SHA-256 resumed from a cached midstate; byte-identical to
/// hmac_sha256(key, message) for the key the midstate was built from.
[[nodiscard]] Sha256::Digest hmac_sha256(const HmacMidstate& midstate,
                                         std::span<const std::uint8_t> message) noexcept;

/// Batch midstate preparation: out[i] = hmac_midstate(keys[i][0..lens[i])).
/// Runs the ipad/opad compressions through the multi-buffer SHA-256 kernel
/// (keys longer than one block take the scalar pre-hash detour).
void hmac_midstate_many(const std::uint8_t* const* keys, const std::size_t* lens,
                        std::size_t count, HmacMidstate* out) noexcept;

/// Batch HMAC: out[i] = HMAC(midstate i, msgs[i][0..lens[i])). Lane counts and
/// message lengths are unconstrained; the multi-buffer kernel chunks and
/// retires lanes as needed. Byte-identical to the scalar overloads.
void hmac_sha256_many(const HmacMidstate* const* midstates,
                      const std::uint8_t* const* msgs, const std::size_t* lens,
                      std::size_t count, Sha256::Digest* out) noexcept;

/// Historical name for the constant-time comparison used in tag
/// verification; the implementation lives in secure.h as ct_equal().
[[nodiscard]] inline bool constant_time_equal(std::span<const std::uint8_t> a,
                                              std::span<const std::uint8_t> b) noexcept {
  return ct_equal(a, b);
}

}  // namespace gk::crypto
