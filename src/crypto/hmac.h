#pragma once

#include <span>

#include "crypto/secure.h"
#include "crypto/sha256.h"

namespace gk::crypto {

/// HMAC-SHA-256 (RFC 2104) used both as the MAC in our Encrypt-then-MAC key
/// wrapping and as the PRF inside the KDF.
[[nodiscard]] Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                                         std::span<const std::uint8_t> message) noexcept;

/// Historical name for the constant-time comparison used in tag
/// verification; the implementation lives in secure.h as ct_equal().
[[nodiscard]] inline bool constant_time_equal(std::span<const std::uint8_t> a,
                                              std::span<const std::uint8_t> b) noexcept {
  return ct_equal(a, b);
}

}  // namespace gk::crypto
