#include "crypto/key.h"

#include "crypto/sha256.h"

namespace gk::crypto {

Key128 Key128::random(Rng& rng) noexcept {
  std::array<std::uint8_t, kSize> bytes;
  for (std::size_t i = 0; i < kSize; i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 8; ++j)
      bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return Key128(bytes);
}

bool Key128::is_zero() const noexcept {
  for (std::uint8_t b : bytes_)
    if (b != 0) return false;
  return true;
}

std::string Key128::hex() const { return to_hex(bytes()); }

}  // namespace gk::crypto
