#include "crypto/key.h"

#include <ostream>

#include "crypto/sha256.h"

namespace gk::crypto {

Key128 Key128::random(Rng& rng) noexcept {
  WipedBytes<kSize> bytes;
  for (std::size_t i = 0; i < kSize; i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 8; ++j)
      bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return Key128(bytes.array());
}

bool Key128::is_zero() const noexcept {
  std::uint8_t acc = 0;
  for (std::uint8_t b : bytes_) acc = static_cast<std::uint8_t>(acc | b);
  return acc == 0;
}

std::string Key128::hex() const {
  return to_hex(bytes().first<4>()) + "…";
}

std::string Key128::hex_full() const {
  // gklint: allow(secret-log) this IS the sanctioned full-hex escape hatch
  return to_hex(bytes());
}

void PrintTo(const Key128& k, std::ostream* os) { *os << "Key128(" << k.hex() << ")"; }

}  // namespace gk::crypto
