#include "crypto/simd/chacha20_xn.h"

#include <algorithm>
#include <cstring>

#include "crypto/simd/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GK_SIMD_X86 1
#endif

namespace gk::crypto::simd {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

void block_scalar(const std::uint32_t* state, std::uint8_t* out) noexcept {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof x);
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) store_le32(out + 4 * i, x[i] + state[i]);
}

#if defined(GK_SIMD_X86)

// GCC requires every function touching an ISA's intrinsics to carry the
// matching target attribute unless the whole TU is compiled with that ISA;
// always_inline keeps the helpers free inside the per-ISA kernels.
#define GK_TARGET_SSE2 __attribute__((target("sse2"), always_inline)) inline
#define GK_TARGET_AVX2 __attribute__((target("avx2"), always_inline)) inline

GK_TARGET_SSE2 __m128i rotl_x4(__m128i v, int n) noexcept {
  return _mm_or_si128(_mm_slli_epi32(v, n), _mm_srli_epi32(v, 32 - n));
}

GK_TARGET_SSE2 void quarter_round_x4(__m128i& a, __m128i& b, __m128i& c,
                                     __m128i& d) noexcept {
  a = _mm_add_epi32(a, b); d = _mm_xor_si128(d, a); d = rotl_x4(d, 16);
  c = _mm_add_epi32(c, d); b = _mm_xor_si128(b, c); b = rotl_x4(b, 12);
  a = _mm_add_epi32(a, b); d = _mm_xor_si128(d, a); d = rotl_x4(d, 8);
  c = _mm_add_epi32(c, d); b = _mm_xor_si128(b, c); b = rotl_x4(b, 7);
}

__attribute__((target("sse2"))) void blocks_x4_sse2(const std::uint32_t* const* states,
                                                    std::uint8_t* const* outs) noexcept {
  // Transpose lane-major states to word-major vectors: words[j] holds state
  // word j of all four lanes.
  alignas(16) std::uint32_t words[16][4];
  for (std::size_t lane = 0; lane < 4; ++lane)
    for (std::size_t j = 0; j < 16; ++j) words[j][lane] = states[lane][j];

  __m128i v[16];
  __m128i init[16];
  for (std::size_t j = 0; j < 16; ++j)
    init[j] = v[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(words[j]));

  for (int round = 0; round < 10; ++round) {
    quarter_round_x4(v[0], v[4], v[8], v[12]);
    quarter_round_x4(v[1], v[5], v[9], v[13]);
    quarter_round_x4(v[2], v[6], v[10], v[14]);
    quarter_round_x4(v[3], v[7], v[11], v[15]);
    quarter_round_x4(v[0], v[5], v[10], v[15]);
    quarter_round_x4(v[1], v[6], v[11], v[12]);
    quarter_round_x4(v[2], v[7], v[8], v[13]);
    quarter_round_x4(v[3], v[4], v[9], v[14]);
  }

  for (std::size_t j = 0; j < 16; ++j) {
    v[j] = _mm_add_epi32(v[j], init[j]);
    _mm_store_si128(reinterpret_cast<__m128i*>(words[j]), v[j]);
  }
  for (std::size_t lane = 0; lane < 4; ++lane)
    for (std::size_t j = 0; j < 16; ++j) store_le32(outs[lane] + 4 * j, words[j][lane]);
}

GK_TARGET_AVX2 __m256i rotl_x8(__m256i v, int n) noexcept {
  return _mm256_or_si256(_mm256_slli_epi32(v, n), _mm256_srli_epi32(v, 32 - n));
}

GK_TARGET_AVX2 void quarter_round_x8(__m256i& a, __m256i& b, __m256i& c,
                                     __m256i& d) noexcept {
  a = _mm256_add_epi32(a, b); d = _mm256_xor_si256(d, a); d = rotl_x8(d, 16);
  c = _mm256_add_epi32(c, d); b = _mm256_xor_si256(b, c); b = rotl_x8(b, 12);
  a = _mm256_add_epi32(a, b); d = _mm256_xor_si256(d, a); d = rotl_x8(d, 8);
  c = _mm256_add_epi32(c, d); b = _mm256_xor_si256(b, c); b = rotl_x8(b, 7);
}

__attribute__((target("avx2"))) void blocks_x8_avx2(const std::uint32_t* const* states,
                                                    std::uint8_t* const* outs) noexcept {
  alignas(32) std::uint32_t words[16][8];
  for (std::size_t lane = 0; lane < 8; ++lane)
    for (std::size_t j = 0; j < 16; ++j) words[j][lane] = states[lane][j];

  __m256i v[16];
  __m256i init[16];
  for (std::size_t j = 0; j < 16; ++j)
    init[j] = v[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(words[j]));

  for (int round = 0; round < 10; ++round) {
    quarter_round_x8(v[0], v[4], v[8], v[12]);
    quarter_round_x8(v[1], v[5], v[9], v[13]);
    quarter_round_x8(v[2], v[6], v[10], v[14]);
    quarter_round_x8(v[3], v[7], v[11], v[15]);
    quarter_round_x8(v[0], v[5], v[10], v[15]);
    quarter_round_x8(v[1], v[6], v[11], v[12]);
    quarter_round_x8(v[2], v[7], v[8], v[13]);
    quarter_round_x8(v[3], v[4], v[9], v[14]);
  }

  for (std::size_t j = 0; j < 16; ++j) {
    v[j] = _mm256_add_epi32(v[j], init[j]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[j]), v[j]);
  }
  for (std::size_t lane = 0; lane < 8; ++lane)
    for (std::size_t j = 0; j < 16; ++j) store_le32(outs[lane] + 4 * j, words[j][lane]);
}

#endif  // GK_SIMD_X86

}  // namespace

void chacha20_blocks(const std::uint32_t* const* states, std::uint8_t* const* outs,
                     std::size_t lanes) noexcept {
  std::size_t i = 0;
#if defined(GK_SIMD_X86)
  const CpuLevel level = cpu_level();
  if (level >= CpuLevel::kAvx2)
    for (; i + 8 <= lanes; i += 8) blocks_x8_avx2(states + i, outs + i);
  if (level >= CpuLevel::kSse2)
    for (; i + 4 <= lanes; i += 4) blocks_x4_sse2(states + i, outs + i);
#endif
  for (; i < lanes; ++i) block_scalar(states[i], outs[i]);
}

void chacha20_xor_stream(std::uint32_t* state, std::uint8_t* data,
                         std::size_t blocks) noexcept {
  std::uint32_t lane_states[kChaChaMaxLanes][16];
  std::uint8_t keystream[kChaChaMaxLanes][kChaChaBlockBytes];
  const std::uint32_t* state_ptrs[kChaChaMaxLanes];
  std::uint8_t* out_ptrs[kChaChaMaxLanes];
  for (std::size_t k = 0; k < kChaChaMaxLanes; ++k) {
    state_ptrs[k] = lane_states[k];
    out_ptrs[k] = keystream[k];
  }

  while (blocks > 0) {
    const std::size_t lanes = std::min(blocks, kChaChaMaxLanes);
    for (std::size_t k = 0; k < lanes; ++k) {
      std::memcpy(lane_states[k], state, 16 * sizeof(std::uint32_t));
      // Wraps mod 2^32 exactly like the scalar ++state_[12].
      lane_states[k][12] = state[12] + static_cast<std::uint32_t>(k);
    }
    chacha20_blocks(state_ptrs, out_ptrs, lanes);
    for (std::size_t k = 0; k < lanes; ++k) {
      for (std::size_t b = 0; b < kChaChaBlockBytes; b += 8) {
        std::uint64_t d;
        std::uint64_t ks;
        std::memcpy(&d, data + b, 8);
        std::memcpy(&ks, keystream[k] + b, 8);
        d ^= ks;
        std::memcpy(data + b, &d, 8);
      }
      data += kChaChaBlockBytes;
    }
    state[12] += static_cast<std::uint32_t>(lanes);
    blocks -= lanes;
  }
}

}  // namespace gk::crypto::simd
