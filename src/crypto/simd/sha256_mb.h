#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/sha256.h"

namespace gk::crypto::simd {

inline constexpr std::size_t kShaMaxLanes = 8;

// One FIPS 180-4 compression per lane: states[i] is lane i's 8-word chaining
// state, blocks[i] its 64-byte message block. Lanes are fully independent
// message streams. Dispatch (AVX2 ×8 / SSE2 ×4 / scalar) follows cpu_level();
// every level produces bit-identical chaining states.
void sha256_compress_many(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                          std::size_t lanes) noexcept;

// Multi-buffer one-shot SHA-256: out[i] = SHA-256(msgs[i][0..lens[i])).
// Message lengths may differ per lane — short lanes retire early and the
// stragglers finish on the narrower kernels. Any `count` is accepted; the
// kernel chunks internally.
void sha256_many(const std::uint8_t* const* msgs, const std::size_t* lens,
                 std::size_t count, Sha256::Digest* out) noexcept;

// Multi-buffer SHA-256 resumed from per-lane midstates that have already
// absorbed `prefix_bytes` bytes (a multiple of 64 — e.g. the HMAC ipad/opad
// block). Digests the per-lane suffix msgs[i]/lens[i] into out[i].
void sha256_many_resumed(const Sha256::State* states, std::size_t prefix_bytes,
                         const std::uint8_t* const* msgs, const std::size_t* lens,
                         std::size_t count, Sha256::Digest* out) noexcept;

}  // namespace gk::crypto::simd
