#include "crypto/simd/cpu.h"

#include <atomic>
#include <cstdlib>

namespace gk::crypto {
namespace {

CpuFeatures probe() noexcept {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  features.sse2 = __builtin_cpu_supports("sse2") != 0;
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
  if (features.avx2) {
    features.best = CpuLevel::kAvx2;
  } else if (features.sse2) {
    features.best = CpuLevel::kSse2;
  }
  return features;
}

CpuLevel initial_level() noexcept {
  CpuLevel level = cpu_features().best;
  if (const char* env = std::getenv("GK_CPU")) {
    if (const auto parsed = parse_cpu_level(env); parsed && *parsed < level) {
      level = *parsed;  // the override can only lower the level, never raise it
    }
  }
  return level;
}

std::atomic<CpuLevel>& active_level() noexcept {
  static std::atomic<CpuLevel> level{initial_level()};
  return level;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

CpuLevel cpu_level() noexcept {
  // relaxed: the level is a monotone configuration value with no data
  // ordered behind it; every kernel is correct at every level.
  return active_level().load(std::memory_order_relaxed);
}

CpuLevel force_cpu_level(CpuLevel level) noexcept {
  if (level > cpu_features().best) level = cpu_features().best;
  // relaxed: see cpu_level() — dispatch is level-independent-correct, so
  // a stale read in another thread only picks a different valid kernel.
  return active_level().exchange(level, std::memory_order_relaxed);
}

const char* cpu_level_name(CpuLevel level) noexcept {
  switch (level) {
    case CpuLevel::kSse2:
      return "sse2";
    case CpuLevel::kAvx2:
      return "avx2";
    case CpuLevel::kScalar:
      break;
  }
  return "scalar";
}

std::optional<CpuLevel> parse_cpu_level(std::string_view name) noexcept {
  if (name == "scalar") return CpuLevel::kScalar;
  if (name == "sse2") return CpuLevel::kSse2;
  if (name == "avx2") return CpuLevel::kAvx2;
  return std::nullopt;
}

}  // namespace gk::crypto
