#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace gk::crypto {

// Vector instruction level the wrap kernels dispatch on. Levels are strictly
// ordered: every level can run everything below it, and all levels produce
// byte-identical output (pinned by the scalar-vs-SIMD differential tests).
enum class CpuLevel : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// What the hardware offers, probed once on first use.
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  CpuLevel best = CpuLevel::kScalar;  // widest level this machine can run
};

// One-time runtime CPU probe; the result is cached for the process lifetime.
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

// The dispatch level the kernels actually use: the probed best level, lowered
// (never raised above hardware support) by a `GK_CPU=scalar|sse2|avx2`
// environment override or a prior force_cpu_level() call.
[[nodiscard]] CpuLevel cpu_level() noexcept;

// Force the dispatch level (clamped to hardware support) and return the
// previous one. Tests and benches use this to sweep every level inside one
// process; the GK_CPU environment variable covers whole-process runs.
CpuLevel force_cpu_level(CpuLevel level) noexcept;

// "scalar" | "sse2" | "avx2".
[[nodiscard]] const char* cpu_level_name(CpuLevel level) noexcept;

// Parse a GK_CPU-style level name; nullopt for anything unrecognised.
[[nodiscard]] std::optional<CpuLevel> parse_cpu_level(std::string_view name) noexcept;

}  // namespace gk::crypto
