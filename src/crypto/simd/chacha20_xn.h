#pragma once

#include <cstddef>
#include <cstdint>

namespace gk::crypto::simd {

inline constexpr std::size_t kChaChaBlockBytes = 64;
inline constexpr std::size_t kChaChaMaxLanes = 8;

// Multi-lane ChaCha20 block kernel. Each lane is one independent RFC 8439
// block-function evaluation: states[i] is lane i's full 16-word initial state
// (constants, key, counter, nonce) and lane i's 64-byte keystream block is
// written to outs[i]. Lanes need not share key, nonce, or counter — the wrap
// hot path feeds one (KEK, nonce) pair per lane, while ChaCha20::crypt feeds
// one stream at consecutive counters. Dispatch (AVX2 ×8 / SSE2 ×4 / scalar)
// follows cpu_level(); every level produces byte-identical output.
void chacha20_blocks(const std::uint32_t* const* states, std::uint8_t* const* outs,
                     std::size_t lanes) noexcept;

// Single-stream convenience: XOR `blocks` consecutive whole keystream blocks
// of the stream described by `state` into `data` in place, advancing the
// block counter state[12] by `blocks` (mod 2^32, exactly like the scalar
// one-block-at-a-time path).
void chacha20_xor_stream(std::uint32_t* state, std::uint8_t* data,
                         std::size_t blocks) noexcept;

}  // namespace gk::crypto::simd
