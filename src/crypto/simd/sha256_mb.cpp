#include "crypto/simd/sha256_mb.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "crypto/simd/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GK_SIMD_X86 1
#endif

namespace gk::crypto::simd {
namespace {

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void compress_scalar(std::uint32_t* state, const std::uint8_t* block) noexcept {
  Sha256::State s;
  std::memcpy(s.data(), state, sizeof(s));
  Sha256::compress(s, block);
  std::memcpy(state, s.data(), sizeof(s));
}

#if defined(GK_SIMD_X86)

#define GK_TARGET_SSE2 __attribute__((target("sse2"), always_inline)) inline
#define GK_TARGET_AVX2 __attribute__((target("avx2"), always_inline)) inline

GK_TARGET_SSE2 __m128i rotr_x4(__m128i v, int n) noexcept {
  return _mm_or_si128(_mm_srli_epi32(v, n), _mm_slli_epi32(v, 32 - n));
}

GK_TARGET_SSE2 __m128i xor3_x4(__m128i a, __m128i b, __m128i c) noexcept {
  return _mm_xor_si128(_mm_xor_si128(a, b), c);
}

__attribute__((target("sse2"))) void compress_x4_sse2(
    std::uint32_t* const* states, const std::uint8_t* const* blocks) noexcept {
  alignas(16) std::uint32_t tmp[4];
  __m128i w[16];
  for (std::size_t j = 0; j < 16; ++j) {
    for (std::size_t lane = 0; lane < 4; ++lane) tmp[lane] = load_be32(blocks[lane] + 4 * j);
    w[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
  }
  __m128i s[8];
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t lane = 0; lane < 4; ++lane) tmp[lane] = states[lane][k];
    s[k] = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
  }

  __m128i a = s[0], b = s[1], c = s[2], d = s[3];
  __m128i e = s[4], f = s[5], g = s[6], h = s[7];
  for (std::size_t i = 0; i < 64; ++i) {
    __m128i wi;
    if (i < 16) {
      wi = w[i];
    } else {
      const __m128i w15 = w[(i - 15) & 15];
      const __m128i w2 = w[(i - 2) & 15];
      const __m128i s0 = xor3_x4(rotr_x4(w15, 7), rotr_x4(w15, 18), _mm_srli_epi32(w15, 3));
      const __m128i s1 = xor3_x4(rotr_x4(w2, 17), rotr_x4(w2, 19), _mm_srli_epi32(w2, 10));
      wi = w[i & 15] = _mm_add_epi32(_mm_add_epi32(w[i & 15], s0),
                                    _mm_add_epi32(w[(i - 7) & 15], s1));
    }
    const __m128i s1e = xor3_x4(rotr_x4(e, 6), rotr_x4(e, 11), rotr_x4(e, 25));
    const __m128i ch = _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
    const __m128i k = _mm_set1_epi32(static_cast<int>(kSha256RoundConstants[i]));
    const __m128i temp1 = _mm_add_epi32(
        _mm_add_epi32(_mm_add_epi32(h, s1e), _mm_add_epi32(ch, k)), wi);
    const __m128i s0a = xor3_x4(rotr_x4(a, 2), rotr_x4(a, 13), rotr_x4(a, 22));
    const __m128i maj =
        xor3_x4(_mm_and_si128(a, b), _mm_and_si128(a, c), _mm_and_si128(b, c));
    const __m128i temp2 = _mm_add_epi32(s0a, maj);
    h = g;
    g = f;
    f = e;
    e = _mm_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm_add_epi32(temp1, temp2);
  }

  const __m128i sum[8] = {_mm_add_epi32(s[0], a), _mm_add_epi32(s[1], b),
                          _mm_add_epi32(s[2], c), _mm_add_epi32(s[3], d),
                          _mm_add_epi32(s[4], e), _mm_add_epi32(s[5], f),
                          _mm_add_epi32(s[6], g), _mm_add_epi32(s[7], h)};
  for (std::size_t k = 0; k < 8; ++k) {
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), sum[k]);
    for (std::size_t lane = 0; lane < 4; ++lane) states[lane][k] = tmp[lane];
  }
}

GK_TARGET_AVX2 __m256i rotr_x8(__m256i v, int n) noexcept {
  return _mm256_or_si256(_mm256_srli_epi32(v, n), _mm256_slli_epi32(v, 32 - n));
}

GK_TARGET_AVX2 __m256i xor3_x8(__m256i a, __m256i b, __m256i c) noexcept {
  return _mm256_xor_si256(_mm256_xor_si256(a, b), c);
}

__attribute__((target("avx2"))) void compress_x8_avx2(
    std::uint32_t* const* states, const std::uint8_t* const* blocks) noexcept {
  alignas(32) std::uint32_t tmp[8];
  __m256i w[16];
  for (std::size_t j = 0; j < 16; ++j) {
    for (std::size_t lane = 0; lane < 8; ++lane) tmp[lane] = load_be32(blocks[lane] + 4 * j);
    w[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
  __m256i s[8];
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t lane = 0; lane < 8; ++lane) tmp[lane] = states[lane][k];
    s[k] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }

  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];
  for (std::size_t i = 0; i < 64; ++i) {
    __m256i wi;
    if (i < 16) {
      wi = w[i];
    } else {
      const __m256i w15 = w[(i - 15) & 15];
      const __m256i w2 = w[(i - 2) & 15];
      const __m256i s0 =
          xor3_x8(rotr_x8(w15, 7), rotr_x8(w15, 18), _mm256_srli_epi32(w15, 3));
      const __m256i s1 =
          xor3_x8(rotr_x8(w2, 17), rotr_x8(w2, 19), _mm256_srli_epi32(w2, 10));
      wi = w[i & 15] = _mm256_add_epi32(_mm256_add_epi32(w[i & 15], s0),
                                       _mm256_add_epi32(w[(i - 7) & 15], s1));
    }
    const __m256i s1e = xor3_x8(rotr_x8(e, 6), rotr_x8(e, 11), rotr_x8(e, 25));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i k = _mm256_set1_epi32(static_cast<int>(kSha256RoundConstants[i]));
    const __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1e), _mm256_add_epi32(ch, k)), wi);
    const __m256i s0a = xor3_x8(rotr_x8(a, 2), rotr_x8(a, 13), rotr_x8(a, 22));
    const __m256i maj =
        xor3_x8(_mm256_and_si256(a, b), _mm256_and_si256(a, c), _mm256_and_si256(b, c));
    const __m256i temp2 = _mm256_add_epi32(s0a, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }

  const __m256i sum[8] = {_mm256_add_epi32(s[0], a), _mm256_add_epi32(s[1], b),
                          _mm256_add_epi32(s[2], c), _mm256_add_epi32(s[3], d),
                          _mm256_add_epi32(s[4], e), _mm256_add_epi32(s[5], f),
                          _mm256_add_epi32(s[6], g), _mm256_add_epi32(s[7], h)};
  for (std::size_t k = 0; k < 8; ++k) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), sum[k]);
    for (std::size_t lane = 0; lane < 8; ++lane) states[lane][k] = tmp[lane];
  }
}

#endif  // GK_SIMD_X86

// Digest up to kShaMaxLanes suffixes (possibly of unequal length), each
// resumed from its own midstate. Builds the FIPS 180-4 padding tail per lane,
// then walks block indices compressing every still-live lane together; lanes
// whose message ran out simply drop from the lane set, so stragglers finish
// on the narrower kernels.
void digest_chunk(const Sha256::State* states, std::size_t prefix_bytes,
                  const std::uint8_t* const* msgs, const std::size_t* lens,
                  std::size_t lanes, Sha256::Digest* out) noexcept {
  std::uint32_t lane_state[kShaMaxLanes][8];
  std::uint8_t tails[kShaMaxLanes][2 * Sha256::kBlockSize];
  std::size_t full_blocks[kShaMaxLanes];
  std::size_t total_blocks[kShaMaxLanes];
  std::size_t max_blocks = 0;

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::memcpy(lane_state[lane], states[lane].data(), sizeof(lane_state[lane]));
    const std::size_t len = lens[lane];
    full_blocks[lane] = len / Sha256::kBlockSize;
    const std::size_t rem = len % Sha256::kBlockSize;
    const std::size_t tail_len =
        (rem + 9 <= Sha256::kBlockSize) ? Sha256::kBlockSize : 2 * Sha256::kBlockSize;
    std::fill(std::begin(tails[lane]), std::end(tails[lane]), std::uint8_t{0});
    if (rem > 0)
      std::memcpy(tails[lane], msgs[lane] + full_blocks[lane] * Sha256::kBlockSize, rem);
    tails[lane][rem] = 0x80;
    const std::uint64_t bit_len =
        (static_cast<std::uint64_t>(prefix_bytes) + len) * 8;
    for (std::size_t i = 0; i < 8; ++i)
      tails[lane][tail_len - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    total_blocks[lane] = full_blocks[lane] + tail_len / Sha256::kBlockSize;
    max_blocks = std::max(max_blocks, total_blocks[lane]);
  }

  for (std::size_t block = 0; block < max_blocks; ++block) {
    std::uint32_t* live_states[kShaMaxLanes];
    const std::uint8_t* live_blocks[kShaMaxLanes];
    std::size_t live = 0;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (block >= total_blocks[lane]) continue;
      live_states[live] = lane_state[lane];
      live_blocks[live] =
          block < full_blocks[lane]
              ? msgs[lane] + block * Sha256::kBlockSize
              : tails[lane] + (block - full_blocks[lane]) * Sha256::kBlockSize;
      ++live;
    }
    sha256_compress_many(live_states, live_blocks, live);
  }

  for (std::size_t lane = 0; lane < lanes; ++lane)
    for (std::size_t k = 0; k < 8; ++k)
      store_be32(out[lane].data() + 4 * k, lane_state[lane][k]);
}

}  // namespace

void sha256_compress_many(std::uint32_t* const* states,
                          const std::uint8_t* const* blocks,
                          std::size_t lanes) noexcept {
  std::size_t i = 0;
#if defined(GK_SIMD_X86)
  const CpuLevel level = cpu_level();
  if (level >= CpuLevel::kAvx2)
    for (; i + 8 <= lanes; i += 8) compress_x8_avx2(states + i, blocks + i);
  if (level >= CpuLevel::kSse2)
    for (; i + 4 <= lanes; i += 4) compress_x4_sse2(states + i, blocks + i);
#endif
  for (; i < lanes; ++i) compress_scalar(states[i], blocks[i]);
}

void sha256_many(const std::uint8_t* const* msgs, const std::size_t* lens,
                 std::size_t count, Sha256::Digest* out) noexcept {
  Sha256::State states[kShaMaxLanes];
  for (std::size_t offset = 0; offset < count; offset += kShaMaxLanes) {
    const std::size_t lanes = std::min(count - offset, kShaMaxLanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) states[lane] = Sha256::kInitialState;
    digest_chunk(states, 0, msgs + offset, lens + offset, lanes, out + offset);
  }
}

void sha256_many_resumed(const Sha256::State* states, std::size_t prefix_bytes,
                         const std::uint8_t* const* msgs, const std::size_t* lens,
                         std::size_t count, Sha256::Digest* out) noexcept {
  for (std::size_t offset = 0; offset < count; offset += kShaMaxLanes) {
    const std::size_t lanes = std::min(count - offset, kShaMaxLanes);
    digest_chunk(states + offset, prefix_bytes, msgs + offset, lens + offset, lanes,
                 out + offset);
  }
}

}  // namespace gk::crypto::simd
