#include "crypto/keywrap.h"

#include <algorithm>
#include <cstring>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/simd/chacha20_xn.h"
#include "crypto/simd/sha256_mb.h"

namespace gk::crypto {
namespace {

/// Associated data covered by the MAC: ids, versions, nonce, ciphertext.
/// Fixed-size stack buffer — the wrap hot path must not allocate.
using MacInput = std::array<std::uint8_t, 24 + 12 + Key128::kSize>;

MacInput mac_input(const WrappedKey& w) noexcept {
  MacInput buf;
  std::size_t at = 0;
  auto push_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf[at++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  push_u64(raw(w.target_id));
  push_u64((std::uint64_t{w.target_version} << 32) | w.wrapping_version);
  push_u64(raw(w.wrapping_id));
  std::memcpy(buf.data() + at, w.nonce.data(), w.nonce.size());
  at += w.nonce.size();
  std::memcpy(buf.data() + at, w.ciphertext.data(), w.ciphertext.size());
  return buf;
}

/// Domain-separated counter block hashed into a wrap nonce.
using NonceBlock = std::array<std::uint8_t, 4 + 8 + 8 + 4>;

NonceBlock nonce_block(std::uint64_t epoch, KeyId dest, std::uint32_t index) noexcept {
  NonceBlock block;
  block[0] = 'g';
  block[1] = 'k';
  block[2] = 'n';
  block[3] = '1';
  std::size_t at = 4;
  auto push_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) block[at++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  push_u64(epoch);
  push_u64(raw(dest));
  for (int i = 0; i < 4; ++i) block[at++] = static_cast<std::uint8_t>(index >> (8 * i));
  return block;
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

/// Initial ChaCha20 state (RFC 8439 layout, counter 0) for one wrap — the
/// same state the scalar ChaCha20 constructor builds.
void fill_chacha_state(std::uint32_t* state, const std::uint8_t* cipher_key,
                       const WrapNonce& nonce) noexcept {
  state[0] = 0x61707865;  // "expand 32-byte k"
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (std::size_t i = 0; i < 8; ++i) state[4 + i] = load_le32(cipher_key + 4 * i);
  state[12] = 0;
  for (std::size_t i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);
}

/// Chunk width of the batched wrap kernels: a multiple of the widest SIMD
/// lane count, small enough that every scratch buffer stays on the stack.
constexpr std::size_t kWrapChunk = 64;

}  // namespace

WrapNonce derive_wrap_nonce(std::uint64_t epoch, KeyId dest,
                            std::uint32_t index) noexcept {
  // SHA-256 over a domain-separated counter block, truncated to 96 bits.
  const NonceBlock block = nonce_block(epoch, dest, index);
  const auto digest = sha256(block);
  WrapNonce nonce;
  std::memcpy(nonce.data(), digest.data(), nonce.size());
  return nonce;
}

void derive_wrap_nonces(std::span<const WrapNonceSpec> specs, WrapNonce* out) noexcept {
  NonceBlock blocks[kWrapChunk];
  const std::uint8_t* msgs[kWrapChunk];
  std::size_t lens[kWrapChunk];
  Sha256::Digest digests[kWrapChunk];

  for (std::size_t offset = 0; offset < specs.size(); offset += kWrapChunk) {
    const std::size_t n = std::min(specs.size() - offset, kWrapChunk);
    for (std::size_t i = 0; i < n; ++i) {
      const WrapNonceSpec& s = specs[offset + i];
      blocks[i] = nonce_block(s.epoch, s.dest, s.index);
      msgs[i] = blocks[i].data();
      lens[i] = blocks[i].size();
    }
    simd::sha256_many(msgs, lens, n, digests);
    for (std::size_t i = 0; i < n; ++i)
      std::memcpy(out[offset + i].data(), digests[i].data(), out[offset + i].size());
  }
}

PreparedKek::PreparedKek(const Key128& kek) noexcept {
  // Expand the 128-bit KEK into independent 256-bit cipher and MAC keys.
  static constexpr std::uint8_t kCipherLabel[] = {'g', 'k', 'c', '1'};
  static constexpr std::uint8_t kMacLabel[] = {'g', 'k', 'm', '1'};
  const auto cipher_digest = hmac_sha256(kek.bytes(), std::span(kCipherLabel));
  auto mac_digest = hmac_sha256(kek.bytes(), std::span(kMacLabel));
  std::memcpy(cipher_key_.data(), cipher_digest.data(), cipher_key_.size());
  mac_midstate_ = hmac_midstate(std::span<const std::uint8_t>(mac_digest));
  secure_wipe(mac_digest.data(), mac_digest.size());
}

void PreparedKek::prepare_many(const Key128* const* keks, std::size_t count,
                               PreparedKek* out) noexcept {
  static constexpr std::uint8_t kCipherLabel[] = {'g', 'k', 'c', '1'};
  static constexpr std::uint8_t kMacLabel[] = {'g', 'k', 'm', '1'};

  HmacMidstate midstates[kWrapChunk];
  const HmacMidstate* midstate_ptrs[kWrapChunk];
  const std::uint8_t* key_ptrs[kWrapChunk];
  std::size_t key_lens[kWrapChunk];
  const std::uint8_t* label_ptrs[kWrapChunk];
  std::size_t label_lens[kWrapChunk];
  Sha256::Digest cipher_digests[kWrapChunk];
  Sha256::Digest mac_digests[kWrapChunk];

  for (std::size_t offset = 0; offset < count; offset += kWrapChunk) {
    const std::size_t n = std::min(count - offset, kWrapChunk);
    for (std::size_t i = 0; i < n; ++i) {
      key_ptrs[i] = keks[offset + i]->bytes().data();
      key_lens[i] = Key128::kSize;
      midstate_ptrs[i] = &midstates[i];
      label_ptrs[i] = kCipherLabel;
      label_lens[i] = sizeof(kCipherLabel);
    }
    hmac_midstate_many(key_ptrs, key_lens, n, midstates);
    hmac_sha256_many(midstate_ptrs, label_ptrs, label_lens, n, cipher_digests);
    for (std::size_t i = 0; i < n; ++i) label_ptrs[i] = kMacLabel;
    hmac_sha256_many(midstate_ptrs, label_ptrs, label_lens, n, mac_digests);

    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(out[offset + i].cipher_key_.data(), cipher_digests[i].data(),
                  out[offset + i].cipher_key_.size());
      key_ptrs[i] = mac_digests[i].data();
      key_lens[i] = mac_digests[i].size();
    }
    hmac_midstate_many(key_ptrs, key_lens, n, midstates);
    for (std::size_t i = 0; i < n; ++i) out[offset + i].mac_midstate_ = midstates[i];
  }
  secure_wipe(cipher_digests, sizeof(cipher_digests));
  secure_wipe(mac_digests, sizeof(mac_digests));
}

WrappedKey PreparedKek::wrap(KeyId wrapping_id, std::uint32_t wrapping_version,
                             const Key128& payload, KeyId target_id,
                             std::uint32_t target_version,
                             const WrapNonce& nonce) const noexcept {
  WrappedKey out;
  out.target_id = target_id;
  out.target_version = target_version;
  out.wrapping_id = wrapping_id;
  out.wrapping_version = wrapping_version;
  out.nonce = nonce;

  std::memcpy(out.ciphertext.data(), payload.bytes().data(), out.ciphertext.size());
  ChaCha20 cipher(std::span<const std::uint8_t, ChaCha20::kKeySize>(cipher_key_),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(out.nonce));
  cipher.crypt(std::span<std::uint8_t>(out.ciphertext));

  const auto input = mac_input(out);
  const auto digest = hmac_sha256(mac_midstate_, std::span<const std::uint8_t>(input));
  std::memcpy(out.tag.data(), digest.data(), out.tag.size());
  return out;
}

std::optional<Key128> PreparedKek::unwrap(const WrappedKey& wrapped) const noexcept {
  const auto input = mac_input(wrapped);
  const auto digest = hmac_sha256(mac_midstate_, std::span<const std::uint8_t>(input));
  if (!ct_equal(std::span<const std::uint8_t>(wrapped.tag),
                std::span<const std::uint8_t>(digest.data(), wrapped.tag.size())))
    return std::nullopt;

  WipedBytes<Key128::kSize> plain(wrapped.ciphertext);
  ChaCha20 cipher(std::span<const std::uint8_t, ChaCha20::kKeySize>(cipher_key_),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(wrapped.nonce));
  cipher.crypt(plain.span());
  return Key128(plain.array());
}

void wrap_keys_batch(std::span<const PreparedWrapRequest> requests,
                     std::span<WrappedKey> out) noexcept {
  std::uint32_t states[kWrapChunk][16];
  std::uint8_t keystream[kWrapChunk][simd::kChaChaBlockBytes];
  const std::uint32_t* state_ptrs[kWrapChunk];
  std::uint8_t* keystream_ptrs[kWrapChunk];
  MacInput mac_inputs[kWrapChunk];
  const HmacMidstate* midstates[kWrapChunk];
  const std::uint8_t* msgs[kWrapChunk];
  std::size_t lens[kWrapChunk];
  Sha256::Digest tags[kWrapChunk];

  for (std::size_t offset = 0; offset < requests.size(); offset += kWrapChunk) {
    const std::size_t n = std::min(requests.size() - offset, kWrapChunk);
    for (std::size_t i = 0; i < n; ++i) {
      const PreparedWrapRequest& r = requests[offset + i];
      WrappedKey& w = out[offset + i];
      w.target_id = r.target_id;
      w.target_version = r.target_version;
      w.wrapping_id = r.wrapping_id;
      w.wrapping_version = r.wrapping_version;
      w.nonce = r.nonce;
      std::memcpy(w.ciphertext.data(), r.payload->bytes().data(), w.ciphertext.size());
      fill_chacha_state(states[i], r.kek->cipher_key_.data(), r.nonce);
      state_ptrs[i] = states[i];
      keystream_ptrs[i] = keystream[i];
    }
    simd::chacha20_blocks(state_ptrs, keystream_ptrs, n);
    for (std::size_t i = 0; i < n; ++i) {
      WrappedKey& w = out[offset + i];
      for (std::size_t b = 0; b < w.ciphertext.size(); ++b)
        w.ciphertext[b] = static_cast<std::uint8_t>(w.ciphertext[b] ^ keystream[i][b]);
      mac_inputs[i] = mac_input(w);
      midstates[i] = &requests[offset + i].kek->mac_midstate_;
      msgs[i] = mac_inputs[i].data();
      lens[i] = mac_inputs[i].size();
    }
    hmac_sha256_many(midstates, msgs, lens, n, tags);
    for (std::size_t i = 0; i < n; ++i)
      std::memcpy(out[offset + i].tag.data(), tags[i].data(), out[offset + i].tag.size());
  }
  secure_wipe(states, sizeof(states));
  secure_wipe(keystream, sizeof(keystream));
}

void wrap_keys_batch(std::span<const KeyedWrapRequest> requests,
                     std::span<WrappedKey> out) noexcept {
  PreparedKek prepared[kWrapChunk];
  const Key128* keks[kWrapChunk];
  PreparedWrapRequest batch[kWrapChunk];

  for (std::size_t offset = 0; offset < requests.size(); offset += kWrapChunk) {
    const std::size_t n = std::min(requests.size() - offset, kWrapChunk);
    for (std::size_t i = 0; i < n; ++i) keks[i] = requests[offset + i].kek;
    PreparedKek::prepare_many(keks, n, prepared);
    for (std::size_t i = 0; i < n; ++i) {
      const KeyedWrapRequest& r = requests[offset + i];
      batch[i] = PreparedWrapRequest{&prepared[i],  r.wrapping_id,
                                     r.wrapping_version, r.payload,
                                     r.target_id,   r.target_version,
                                     r.nonce};
    }
    wrap_keys_batch(std::span<const PreparedWrapRequest>(batch, n),
                    out.subspan(offset, n));
  }
}

void wrap_keys_batch(const Key128& kek, KeyId wrapping_id,
                     std::uint32_t wrapping_version,
                     std::span<const WrapRequest> requests,
                     std::span<WrappedKey> out) noexcept {
  const PreparedKek prepared(kek);
  PreparedWrapRequest batch[kWrapChunk];

  for (std::size_t offset = 0; offset < requests.size(); offset += kWrapChunk) {
    const std::size_t n = std::min(requests.size() - offset, kWrapChunk);
    for (std::size_t i = 0; i < n; ++i) {
      const WrapRequest& r = requests[offset + i];
      batch[i] = PreparedWrapRequest{&prepared,   wrapping_id, wrapping_version,
                                     &r.payload,  r.target_id, r.target_version,
                                     r.nonce};
    }
    wrap_keys_batch(std::span<const PreparedWrapRequest>(batch, n),
                    out.subspan(offset, n));
  }
}

std::vector<WrappedKey> wrap_keys_batch(const Key128& kek, KeyId wrapping_id,
                                        std::uint32_t wrapping_version,
                                        std::span<const WrapRequest> requests) {
  std::vector<WrappedKey> out(requests.size());
  wrap_keys_batch(kek, wrapping_id, wrapping_version, requests,
                  std::span<WrappedKey>(out));
  return out;
}

WrapNonce random_wrap_nonce(Rng& rng) noexcept {
  WrapNonce nonce;
  for (std::size_t i = 0; i < nonce.size(); i += 4) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 4; ++j)
      nonce[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return nonce;
}

WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
                    const Key128& payload, KeyId target_id, std::uint32_t target_version,
                    Rng& rng) noexcept {
  return PreparedKek(kek).wrap(wrapping_id, wrapping_version, payload, target_id,
                               target_version, random_wrap_nonce(rng));
}

WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
                    const Key128& payload, KeyId target_id, std::uint32_t target_version,
                    const WrapNonce& nonce) noexcept {
  return PreparedKek(kek).wrap(wrapping_id, wrapping_version, payload, target_id,
                               target_version, nonce);
}

std::optional<Key128> unwrap_key(const Key128& kek, const WrappedKey& wrapped) noexcept {
  return PreparedKek(kek).unwrap(wrapped);
}

}  // namespace gk::crypto
