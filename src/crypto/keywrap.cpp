#include "crypto/keywrap.h"

#include <cstring>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace gk::crypto {
namespace {

/// Associated data covered by the MAC: ids, versions, nonce, ciphertext.
/// Fixed-size stack buffer — the wrap hot path must not allocate.
using MacInput = std::array<std::uint8_t, 24 + 12 + Key128::kSize>;

MacInput mac_input(const WrappedKey& w) noexcept {
  MacInput buf;
  std::size_t at = 0;
  auto push_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf[at++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  push_u64(raw(w.target_id));
  push_u64((std::uint64_t{w.target_version} << 32) | w.wrapping_version);
  push_u64(raw(w.wrapping_id));
  std::memcpy(buf.data() + at, w.nonce.data(), w.nonce.size());
  at += w.nonce.size();
  std::memcpy(buf.data() + at, w.ciphertext.data(), w.ciphertext.size());
  return buf;
}

}  // namespace

WrapNonce derive_wrap_nonce(std::uint64_t epoch, KeyId dest,
                            std::uint32_t index) noexcept {
  // SHA-256 over a domain-separated counter block, truncated to 96 bits.
  std::array<std::uint8_t, 4 + 8 + 8 + 4> block;
  block[0] = 'g';
  block[1] = 'k';
  block[2] = 'n';
  block[3] = '1';
  std::size_t at = 4;
  auto push_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) block[at++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  push_u64(epoch);
  push_u64(raw(dest));
  for (int i = 0; i < 4; ++i) block[at++] = static_cast<std::uint8_t>(index >> (8 * i));

  const auto digest = sha256(block);
  WrapNonce nonce;
  std::memcpy(nonce.data(), digest.data(), nonce.size());
  return nonce;
}

PreparedKek::PreparedKek(const Key128& kek) noexcept {
  // Expand the 128-bit KEK into independent 256-bit cipher and MAC keys.
  static constexpr std::uint8_t kCipherLabel[] = {'g', 'k', 'c', '1'};
  static constexpr std::uint8_t kMacLabel[] = {'g', 'k', 'm', '1'};
  const auto cipher_digest = hmac_sha256(kek.bytes(), std::span(kCipherLabel));
  const auto mac_digest = hmac_sha256(kek.bytes(), std::span(kMacLabel));
  std::memcpy(cipher_key_.data(), cipher_digest.data(), cipher_key_.size());
  std::memcpy(mac_key_.data(), mac_digest.data(), mac_key_.size());
}

WrappedKey PreparedKek::wrap(KeyId wrapping_id, std::uint32_t wrapping_version,
                             const Key128& payload, KeyId target_id,
                             std::uint32_t target_version,
                             const WrapNonce& nonce) const noexcept {
  WrappedKey out;
  out.target_id = target_id;
  out.target_version = target_version;
  out.wrapping_id = wrapping_id;
  out.wrapping_version = wrapping_version;
  out.nonce = nonce;

  std::memcpy(out.ciphertext.data(), payload.bytes().data(), out.ciphertext.size());
  ChaCha20 cipher(std::span<const std::uint8_t, ChaCha20::kKeySize>(cipher_key_),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(out.nonce));
  cipher.crypt(std::span<std::uint8_t>(out.ciphertext));

  const auto input = mac_input(out);
  const auto digest = hmac_sha256(std::span<const std::uint8_t>(mac_key_),
                                  std::span<const std::uint8_t>(input));
  std::memcpy(out.tag.data(), digest.data(), out.tag.size());
  return out;
}

std::optional<Key128> PreparedKek::unwrap(const WrappedKey& wrapped) const noexcept {
  const auto input = mac_input(wrapped);
  const auto digest = hmac_sha256(std::span<const std::uint8_t>(mac_key_),
                                  std::span<const std::uint8_t>(input));
  if (!ct_equal(std::span<const std::uint8_t>(wrapped.tag),
                std::span<const std::uint8_t>(digest.data(), wrapped.tag.size())))
    return std::nullopt;

  std::array<std::uint8_t, Key128::kSize> plain = wrapped.ciphertext;
  ChaCha20 cipher(std::span<const std::uint8_t, ChaCha20::kKeySize>(cipher_key_),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(wrapped.nonce));
  cipher.crypt(std::span<std::uint8_t>(plain));
  return Key128(plain);
}

void wrap_keys_batch(const Key128& kek, KeyId wrapping_id,
                     std::uint32_t wrapping_version,
                     std::span<const WrapRequest> requests,
                     std::span<WrappedKey> out) noexcept {
  const PreparedKek prepared(kek);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& r = requests[i];
    out[i] = prepared.wrap(wrapping_id, wrapping_version, r.payload, r.target_id,
                           r.target_version, r.nonce);
  }
}

std::vector<WrappedKey> wrap_keys_batch(const Key128& kek, KeyId wrapping_id,
                                        std::uint32_t wrapping_version,
                                        std::span<const WrapRequest> requests) {
  std::vector<WrappedKey> out(requests.size());
  wrap_keys_batch(kek, wrapping_id, wrapping_version, requests,
                  std::span<WrappedKey>(out));
  return out;
}

WrapNonce random_wrap_nonce(Rng& rng) noexcept {
  WrapNonce nonce;
  for (std::size_t i = 0; i < nonce.size(); i += 4) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 4; ++j)
      nonce[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return nonce;
}

WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
                    const Key128& payload, KeyId target_id, std::uint32_t target_version,
                    Rng& rng) noexcept {
  return PreparedKek(kek).wrap(wrapping_id, wrapping_version, payload, target_id,
                               target_version, random_wrap_nonce(rng));
}

WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
                    const Key128& payload, KeyId target_id, std::uint32_t target_version,
                    const WrapNonce& nonce) noexcept {
  return PreparedKek(kek).wrap(wrapping_id, wrapping_version, payload, target_id,
                               target_version, nonce);
}

std::optional<Key128> unwrap_key(const Key128& kek, const WrappedKey& wrapped) noexcept {
  return PreparedKek(kek).unwrap(wrapped);
}

}  // namespace gk::crypto
