#include "crypto/keywrap.h"

#include <cstring>
#include <vector>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace gk::crypto {
namespace {

/// Expand the 128-bit KEK into independent 256-bit cipher and MAC keys.
struct ExpandedKek {
  std::array<std::uint8_t, ChaCha20::kKeySize> cipher_key;
  std::array<std::uint8_t, 32> mac_key;
};

ExpandedKek expand(const Key128& kek) noexcept {
  static constexpr std::uint8_t kCipherLabel[] = {'g', 'k', 'c', '1'};
  static constexpr std::uint8_t kMacLabel[] = {'g', 'k', 'm', '1'};
  ExpandedKek out;
  const auto cipher_digest = hmac_sha256(kek.bytes(), std::span(kCipherLabel));
  const auto mac_digest = hmac_sha256(kek.bytes(), std::span(kMacLabel));
  std::memcpy(out.cipher_key.data(), cipher_digest.data(), out.cipher_key.size());
  std::memcpy(out.mac_key.data(), mac_digest.data(), out.mac_key.size());
  return out;
}

/// Associated data covered by the MAC: ids, versions, nonce, ciphertext.
std::vector<std::uint8_t> mac_input(const WrappedKey& w) {
  std::vector<std::uint8_t> buf;
  buf.reserve(WrappedKey::kWireSize - w.tag.size());
  auto push_u64 = [&buf](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  push_u64(raw(w.target_id));
  push_u64((std::uint64_t{w.target_version} << 32) | w.wrapping_version);
  push_u64(raw(w.wrapping_id));
  buf.insert(buf.end(), w.nonce.begin(), w.nonce.end());
  buf.insert(buf.end(), w.ciphertext.begin(), w.ciphertext.end());
  return buf;
}

}  // namespace

WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
                    const Key128& payload, KeyId target_id, std::uint32_t target_version,
                    Rng& rng) noexcept {
  WrappedKey out;
  out.target_id = target_id;
  out.target_version = target_version;
  out.wrapping_id = wrapping_id;
  out.wrapping_version = wrapping_version;

  for (std::size_t i = 0; i < out.nonce.size(); i += 4) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 4; ++j)
      out.nonce[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }

  const auto expanded = expand(kek);
  std::memcpy(out.ciphertext.data(), payload.bytes().data(), out.ciphertext.size());
  ChaCha20 cipher(std::span<const std::uint8_t, ChaCha20::kKeySize>(expanded.cipher_key),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(out.nonce));
  cipher.crypt(std::span<std::uint8_t>(out.ciphertext));

  const auto input = mac_input(out);
  const auto digest = hmac_sha256(std::span<const std::uint8_t>(expanded.mac_key),
                                  std::span<const std::uint8_t>(input));
  std::memcpy(out.tag.data(), digest.data(), out.tag.size());
  return out;
}

std::optional<Key128> unwrap_key(const Key128& kek, const WrappedKey& wrapped) noexcept {
  const auto expanded = expand(kek);
  const auto input = mac_input(wrapped);
  const auto digest = hmac_sha256(std::span<const std::uint8_t>(expanded.mac_key),
                                  std::span<const std::uint8_t>(input));
  if (!constant_time_equal(std::span<const std::uint8_t>(wrapped.tag),
                           std::span<const std::uint8_t>(digest.data(), wrapped.tag.size())))
    return std::nullopt;

  std::array<std::uint8_t, Key128::kSize> plain = wrapped.ciphertext;
  ChaCha20 cipher(std::span<const std::uint8_t, ChaCha20::kKeySize>(expanded.cipher_key),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(wrapped.nonce));
  cipher.crypt(std::span<std::uint8_t>(plain));
  return Key128(plain);
}

}  // namespace gk::crypto
