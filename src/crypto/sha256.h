#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace gk::crypto {

/// SHA-256 digest (FIPS 180-4), implemented from the specification.
///
/// Streaming interface: construct, update() any number of times, finish().
/// A one-shot free function is provided below. The implementation is pure
/// portable C++ with no table lookups beyond the round constants, which is
/// plenty for a protocol simulator (we wrap keys, we do not fight nation
/// states).
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;
  using State = std::array<std::uint32_t, 8>;

  /// FIPS 180-4 §5.3.3 initial hash value.
  static constexpr State kInitialState = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                          0xa54ff53a, 0x510e527f, 0x9b05688c,
                                          0x1f83d9ab, 0x5be0cd19};

  Sha256() noexcept;

  /// Resume from a midstate that has already absorbed `bytes_processed`
  /// bytes (must be a multiple of the 64-byte block size — e.g. the HMAC
  /// ipad/opad block). Lets callers cache per-key compressions.
  Sha256(const State& state, std::uint64_t bytes_processed) noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const std::string& data) noexcept;

  /// Finalize and return the digest. The object must not be reused after
  /// finish() without reassignment.
  [[nodiscard]] Digest finish() noexcept;

  /// One FIPS 180-4 compression of a single 64-byte block into `state`.
  /// Building block for the multi-buffer kernels in crypto/simd/sha256_mb.h.
  static void compress(State& state, const std::uint8_t* block) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  State state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// FIPS 180-4 §4.2.2 round constants, shared with the multi-buffer kernels.
inline constexpr std::array<std::uint32_t, 64> kSha256RoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

/// One-shot convenience.
[[nodiscard]] Sha256::Digest sha256(std::span<const std::uint8_t> data) noexcept;

/// Hex rendering of any byte span (digests, keys) for logs and tests.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace gk::crypto
