#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace gk::crypto {

/// SHA-256 digest (FIPS 180-4), implemented from the specification.
///
/// Streaming interface: construct, update() any number of times, finish().
/// A one-shot free function is provided below. The implementation is pure
/// portable C++ with no table lookups beyond the round constants, which is
/// plenty for a protocol simulator (we wrap keys, we do not fight nation
/// states).
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const std::string& data) noexcept;

  /// Finalize and return the digest. The object must not be reused after
  /// finish() without reassignment.
  [[nodiscard]] Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Sha256::Digest sha256(std::span<const std::uint8_t> data) noexcept;

/// Hex rendering of any byte span (digests, keys) for logs and tests.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace gk::crypto
