#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/key.h"

namespace gk::crypto {

/// Labelled key derivation: HMAC-SHA-256(key, label || context) truncated to
/// 128 bits. Used for the OFT one-way functions and for deriving
/// per-purpose subkeys. Distinct labels yield computationally independent
/// outputs.
[[nodiscard]] Key128 derive_key(const Key128& key, std::string_view label,
                                std::uint64_t context = 0) noexcept;

/// OFT "blinding" function g: reveals a one-way image of a node key that can
/// be given to the sibling subtree without revealing the key itself.
[[nodiscard]] Key128 oft_blind(const Key128& key) noexcept;

/// OFT "mixing" function f: parent key from the XOR of the children's
/// blinded keys (binary OFT per Balenson–McGrew–Sherman).
[[nodiscard]] Key128 oft_mix(const Key128& left_blinded,
                             const Key128& right_blinded) noexcept;

}  // namespace gk::crypto
