#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/key.h"

namespace gk::crypto {

/// An encrypted ("wrapped") key as carried in a rekey message: the payload
/// key encrypted under a key-encryption key (KEK) with ChaCha20, plus an
/// HMAC-SHA-256 tag over nonce || header || ciphertext (Encrypt-then-MAC).
///
/// One WrappedKey is the paper's unit of rekey bandwidth. kWireSize gives
/// the serialized size used by the transport layer when packing packets.
struct WrappedKey {
  /// Node id of the key being distributed (the payload).
  KeyId target_id{};
  /// Version of the payload key.
  std::uint32_t target_version = 0;
  /// Node id of the KEK the payload is encrypted under.
  KeyId wrapping_id{};
  /// Version of the KEK that was used.
  std::uint32_t wrapping_version = 0;

  std::array<std::uint8_t, 12> nonce{};
  std::array<std::uint8_t, Key128::kSize> ciphertext{};
  std::array<std::uint8_t, 16> tag{};

  /// Serialized size in bytes: ids/versions (24) + nonce (12) +
  /// ciphertext (16) + tag (16).
  static constexpr std::size_t kWireSize = 24 + 12 + Key128::kSize + 16;
};

/// 96-bit ChaCha20 nonce for one wrap.
using WrapNonce = std::array<std::uint8_t, 12>;

/// Derive the nonce for wrap number `index` of destination node `dest` in
/// rekey epoch `epoch` — a counter-based KDF (SHA-256 over the labelled
/// counter tuple, truncated) that replaces drawing nonces from the server's
/// shared RNG stream.
///
/// Safety: a (KEK, nonce) pair never repeats. Within one epoch every dirty
/// node's wraps carry distinct (dest, index) tuples (node ids are unique
/// across all trees of a session — they share one IdAllocator); across
/// epochs the epoch counter differs; a journal replay of the same epoch
/// regenerates the *same* plaintext under the same keys, so identical
/// nonces reproduce identical bytes rather than leaking anything new.
/// Because the derivation needs no shared mutable state, wrap emission
/// becomes order-independent and can be fanned across threads while staying
/// byte-identical to a sequential run.
[[nodiscard]] WrapNonce derive_wrap_nonce(std::uint64_t epoch, KeyId dest,
                                          std::uint32_t index) noexcept;

/// Draw a random 96-bit nonce from `rng`. For unicast paths (registration,
/// resync) where wraps are not part of the deterministic multicast stream.
[[nodiscard]] WrapNonce random_wrap_nonce(Rng& rng) noexcept;

/// A KEK with its ChaCha20/HMAC subkey expansion precomputed. Expanding a
/// KEK costs two HMAC-SHA-256 invocations — the dominant share of a single
/// wrap — so hot paths that wrap under the same KEK more than once (batch
/// kernels, resync bundles, the key tree's per-node KEK cache) prepare once
/// and reuse.
class PreparedKek {
 public:
  PreparedKek() noexcept = default;
  explicit PreparedKek(const Key128& kek) noexcept;

  /// Wrap `payload` under this KEK with an explicit nonce.
  [[nodiscard]] WrappedKey wrap(KeyId wrapping_id, std::uint32_t wrapping_version,
                                const Key128& payload, KeyId target_id,
                                std::uint32_t target_version,
                                const WrapNonce& nonce) const noexcept;

  /// Unwrap; returns nullopt if the tag does not verify.
  [[nodiscard]] std::optional<Key128> unwrap(const WrappedKey& wrapped) const noexcept;

 private:
  std::array<std::uint8_t, 32> cipher_key_{};
  std::array<std::uint8_t, 32> mac_key_{};
};

/// One payload of a batched wrap.
struct WrapRequest {
  Key128 payload;
  KeyId target_id{};
  std::uint32_t target_version = 0;
  WrapNonce nonce{};
};

/// Batched keywrap kernel: wrap every request under one shared KEK,
/// amortizing the KEK's subkey expansion across the whole batch. `out` must
/// have at least `requests.size()` slots; results land at matching indices.
void wrap_keys_batch(const Key128& kek, KeyId wrapping_id,
                     std::uint32_t wrapping_version,
                     std::span<const WrapRequest> requests,
                     std::span<WrappedKey> out) noexcept;

/// Convenience form returning a fresh vector.
[[nodiscard]] std::vector<WrappedKey> wrap_keys_batch(
    const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
    std::span<const WrapRequest> requests);

/// Wrap `payload` under `kek`. The nonce is drawn from `rng`; all metadata
/// is authenticated. One-shot path: expands the KEK on every call — prefer
/// PreparedKek / wrap_keys_batch when a KEK is reused.
[[nodiscard]] WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id,
                                  std::uint32_t wrapping_version, const Key128& payload,
                                  KeyId target_id, std::uint32_t target_version,
                                  Rng& rng) noexcept;

/// One-shot wrap with an explicit (derived) nonce.
[[nodiscard]] WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id,
                                  std::uint32_t wrapping_version, const Key128& payload,
                                  KeyId target_id, std::uint32_t target_version,
                                  const WrapNonce& nonce) noexcept;

/// Unwrap with `kek`; returns nullopt if the tag does not verify (wrong key
/// or corrupted message).
[[nodiscard]] std::optional<Key128> unwrap_key(const Key128& kek,
                                               const WrappedKey& wrapped) noexcept;

}  // namespace gk::crypto
