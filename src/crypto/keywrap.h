#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/key.h"

namespace gk::crypto {

/// An encrypted ("wrapped") key as carried in a rekey message: the payload
/// key encrypted under a key-encryption key (KEK) with ChaCha20, plus an
/// HMAC-SHA-256 tag over nonce || header || ciphertext (Encrypt-then-MAC).
///
/// One WrappedKey is the paper's unit of rekey bandwidth. kWireSize gives
/// the serialized size used by the transport layer when packing packets.
struct WrappedKey {
  /// Node id of the key being distributed (the payload).
  KeyId target_id{};
  /// Version of the payload key.
  std::uint32_t target_version = 0;
  /// Node id of the KEK the payload is encrypted under.
  KeyId wrapping_id{};
  /// Version of the KEK that was used.
  std::uint32_t wrapping_version = 0;

  std::array<std::uint8_t, 12> nonce{};
  std::array<std::uint8_t, Key128::kSize> ciphertext{};
  std::array<std::uint8_t, 16> tag{};

  /// Serialized size in bytes: ids/versions (24) + nonce (12) +
  /// ciphertext (16) + tag (16).
  static constexpr std::size_t kWireSize = 24 + 12 + Key128::kSize + 16;
};

/// Wrap `payload` under `kek`. The nonce is drawn from `rng`; all metadata
/// is authenticated.
[[nodiscard]] WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id,
                                  std::uint32_t wrapping_version, const Key128& payload,
                                  KeyId target_id, std::uint32_t target_version,
                                  Rng& rng) noexcept;

/// Unwrap with `kek`; returns nullopt if the tag does not verify (wrong key
/// or corrupted message).
[[nodiscard]] std::optional<Key128> unwrap_key(const Key128& kek,
                                               const WrappedKey& wrapped) noexcept;

}  // namespace gk::crypto
