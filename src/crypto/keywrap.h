#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/key.h"

namespace gk::crypto {

/// An encrypted ("wrapped") key as carried in a rekey message: the payload
/// key encrypted under a key-encryption key (KEK) with ChaCha20, plus an
/// HMAC-SHA-256 tag over nonce || header || ciphertext (Encrypt-then-MAC).
///
/// One WrappedKey is the paper's unit of rekey bandwidth. kWireSize gives
/// the serialized size used by the transport layer when packing packets.
struct WrappedKey {
  /// Node id of the key being distributed (the payload).
  KeyId target_id{};
  /// Version of the payload key.
  std::uint32_t target_version = 0;
  /// Node id of the KEK the payload is encrypted under.
  KeyId wrapping_id{};
  /// Version of the KEK that was used.
  std::uint32_t wrapping_version = 0;

  std::array<std::uint8_t, 12> nonce{};
  std::array<std::uint8_t, Key128::kSize> ciphertext{};
  std::array<std::uint8_t, 16> tag{};

  /// Serialized size in bytes: ids/versions (24) + nonce (12) +
  /// ciphertext (16) + tag (16).
  static constexpr std::size_t kWireSize = 24 + 12 + Key128::kSize + 16;
};

/// 96-bit ChaCha20 nonce for one wrap.
using WrapNonce = std::array<std::uint8_t, 12>;

/// Derive the nonce for wrap number `index` of destination node `dest` in
/// rekey epoch `epoch` — a counter-based KDF (SHA-256 over the labelled
/// counter tuple, truncated) that replaces drawing nonces from the server's
/// shared RNG stream.
///
/// Safety: a (KEK, nonce) pair never repeats. Within one epoch every dirty
/// node's wraps carry distinct (dest, index) tuples (node ids are unique
/// across all trees of a session — they share one IdAllocator); across
/// epochs the epoch counter differs; a journal replay of the same epoch
/// regenerates the *same* plaintext under the same keys, so identical
/// nonces reproduce identical bytes rather than leaking anything new.
/// Because the derivation needs no shared mutable state, wrap emission
/// becomes order-independent and can be fanned across threads while staying
/// byte-identical to a sequential run.
[[nodiscard]] WrapNonce derive_wrap_nonce(std::uint64_t epoch, KeyId dest,
                                          std::uint32_t index) noexcept;

/// Input tuple of one derive_wrap_nonce() call, for batch derivation.
struct WrapNonceSpec {
  std::uint64_t epoch = 0;
  KeyId dest{};
  std::uint32_t index = 0;
};

/// Batch form of derive_wrap_nonce(): out[i] = derive_wrap_nonce(specs[i]).
/// The SHA-256 digests run through the multi-buffer kernel, byte-identical
/// to the one-at-a-time path.
void derive_wrap_nonces(std::span<const WrapNonceSpec> specs, WrapNonce* out) noexcept;

/// Draw a random 96-bit nonce from `rng`. For unicast paths (registration,
/// resync) where wraps are not part of the deterministic multicast stream.
[[nodiscard]] WrapNonce random_wrap_nonce(Rng& rng) noexcept;

struct PreparedWrapRequest;

/// A KEK with its ChaCha20/HMAC subkey expansion precomputed. Expanding a
/// KEK costs two HMAC-SHA-256 invocations — the dominant share of a single
/// wrap — so hot paths that wrap under the same KEK more than once (batch
/// kernels, resync bundles, the key tree's per-node KEK cache) prepare once
/// and reuse. The HMAC side is cached as an ipad/opad midstate, cutting the
/// per-wrap tag to two compressions.
class PreparedKek {
 public:
  PreparedKek() noexcept = default;
  explicit PreparedKek(const Key128& kek) noexcept;

  PreparedKek(const PreparedKek&) noexcept = default;
  PreparedKek& operator=(const PreparedKek&) noexcept = default;

  /// Cipher subkey material is wiped like Key128; the midstate wipes itself.
  ~PreparedKek() noexcept { secure_wipe(cipher_key_.data(), cipher_key_.size()); }

  /// Batch preparation: out[i] = PreparedKek(*keks[i]), with every subkey
  /// expansion and midstate compression run through the multi-buffer SHA-256
  /// kernel across lanes. Byte-identical to the one-at-a-time constructor.
  static void prepare_many(const Key128* const* keks, std::size_t count,
                           PreparedKek* out) noexcept;

  /// Wrap `payload` under this KEK with an explicit nonce.
  [[nodiscard]] WrappedKey wrap(KeyId wrapping_id, std::uint32_t wrapping_version,
                                const Key128& payload, KeyId target_id,
                                std::uint32_t target_version,
                                const WrapNonce& nonce) const noexcept;

  /// Unwrap; returns nullopt if the tag does not verify.
  [[nodiscard]] std::optional<Key128> unwrap(const WrappedKey& wrapped) const noexcept;

 private:
  friend void wrap_keys_batch(std::span<const PreparedWrapRequest> requests,
                              std::span<WrappedKey> out) noexcept;

  std::array<std::uint8_t, 32> cipher_key_{};
  HmacMidstate mac_midstate_{};
};

/// One payload of a batched wrap.
struct WrapRequest {
  Key128 payload;
  KeyId target_id{};
  std::uint32_t target_version = 0;
  WrapNonce nonce{};
};

/// One fully-specified wrap of a heterogeneous batch: its own (prepared)
/// KEK, header fields, payload, and nonce. This is the shape the rekey
/// engine emits — in a key tree every wrap goes under a *different* KEK
/// (each child of a dirty node, or a departing node's old key), so the SIMD
/// kernels vectorize across independent lanes rather than sharing one key
/// schedule.
struct PreparedWrapRequest {
  const PreparedKek* kek = nullptr;
  KeyId wrapping_id{};
  std::uint32_t wrapping_version = 0;
  const Key128* payload = nullptr;
  KeyId target_id{};
  std::uint32_t target_version = 0;
  WrapNonce nonce{};
};

/// Like PreparedWrapRequest but carrying a raw KEK; the batch kernel
/// prepares lane-width groups of key schedules on the fly (still through the
/// multi-buffer kernels). For paths like the flat key queue where each KEK
/// is used exactly once per epoch and caching buys nothing.
struct KeyedWrapRequest {
  const Key128* kek = nullptr;
  KeyId wrapping_id{};
  std::uint32_t wrapping_version = 0;
  const Key128* payload = nullptr;
  KeyId target_id{};
  std::uint32_t target_version = 0;
  WrapNonce nonce{};
};

/// Heterogeneous batched wrap: out[i] = requests[i].kek->wrap(...). The
/// ChaCha20 blocks and HMAC tags of up to 8 requests run per SIMD lane set;
/// output is byte-identical to calling PreparedKek::wrap per request.
void wrap_keys_batch(std::span<const PreparedWrapRequest> requests,
                     std::span<WrappedKey> out) noexcept;

/// Heterogeneous batched wrap from raw KEKs (batch-prepares lane-width
/// groups of key schedules first).
void wrap_keys_batch(std::span<const KeyedWrapRequest> requests,
                     std::span<WrappedKey> out) noexcept;

/// Batched keywrap kernel: wrap every request under one shared KEK,
/// amortizing the KEK's subkey expansion across the whole batch. `out` must
/// have at least `requests.size()` slots; results land at matching indices.
void wrap_keys_batch(const Key128& kek, KeyId wrapping_id,
                     std::uint32_t wrapping_version,
                     std::span<const WrapRequest> requests,
                     std::span<WrappedKey> out) noexcept;

/// Convenience form returning a fresh vector.
[[nodiscard]] std::vector<WrappedKey> wrap_keys_batch(
    const Key128& kek, KeyId wrapping_id, std::uint32_t wrapping_version,
    std::span<const WrapRequest> requests);

/// Wrap `payload` under `kek`. The nonce is drawn from `rng`; all metadata
/// is authenticated. One-shot path: expands the KEK on every call — prefer
/// PreparedKek / wrap_keys_batch when a KEK is reused.
[[nodiscard]] WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id,
                                  std::uint32_t wrapping_version, const Key128& payload,
                                  KeyId target_id, std::uint32_t target_version,
                                  Rng& rng) noexcept;

/// One-shot wrap with an explicit (derived) nonce.
[[nodiscard]] WrappedKey wrap_key(const Key128& kek, KeyId wrapping_id,
                                  std::uint32_t wrapping_version, const Key128& payload,
                                  KeyId target_id, std::uint32_t target_version,
                                  const WrapNonce& nonce) noexcept;

/// Unwrap with `kek`; returns nullopt if the tag does not verify (wrong key
/// or corrupted message).
[[nodiscard]] std::optional<Key128> unwrap_key(const Key128& kek,
                                               const WrappedKey& wrapped) noexcept;

}  // namespace gk::crypto
