#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace gk::crypto {

/// ChaCha20 stream cipher (RFC 8439 quarter-round construction).
///
/// Used in counter mode to encrypt key material in rekey messages. XOR-based
/// stream encryption means encrypt and decrypt are the same operation.
class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(std::span<const std::uint8_t, kKeySize> key,
           std::span<const std::uint8_t, kNonceSize> nonce,
           std::uint32_t initial_counter = 0) noexcept;

  /// XOR the keystream into `data` in place.
  void crypt(std::span<std::uint8_t> data) noexcept;

  /// Out-of-place convenience.
  [[nodiscard]] std::vector<std::uint8_t> crypt_copy(
      std::span<const std::uint8_t> data) noexcept;

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> keystream_{};
  std::size_t keystream_used_ = 64;  // force refill on first use
};

}  // namespace gk::crypto
