#include "crypto/chacha20.h"

#include <cstring>

#include "crypto/simd/chacha20_xn.h"

namespace gk::crypto {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t, kKeySize> key,
                   std::span<const std::uint8_t, kNonceSize> nonce,
                   std::uint32_t initial_counter) noexcept {
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (std::size_t i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = initial_counter;
  for (std::size_t i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> working = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (std::size_t i = 0; i < 16; ++i)
    store_le32(keystream_.data() + 4 * i, working[i] + state_[i]);
  ++state_[12];
  keystream_used_ = 0;
}

void ChaCha20::crypt(std::span<std::uint8_t> data) noexcept {
  std::size_t offset = 0;
  // Drain keystream left over from a previous partial block first.
  while (offset < data.size() && keystream_used_ < keystream_.size())
    data[offset++] ^= keystream_[keystream_used_++];

  // Whole blocks go through the multi-lane kernel (same keystream, same
  // counter sequence — byte-identical to the one-block-at-a-time path).
  const std::size_t whole = (data.size() - offset) / keystream_.size();
  if (whole > 0) {
    simd::chacha20_xor_stream(state_.data(), data.data() + offset, whole);
    offset += whole * keystream_.size();
  }

  while (offset < data.size()) {
    if (keystream_used_ == keystream_.size()) refill();
    data[offset++] ^= keystream_[keystream_used_++];
  }
}

std::vector<std::uint8_t> ChaCha20::crypt_copy(
    std::span<const std::uint8_t> data) noexcept {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  crypt(std::span<std::uint8_t>(out.data(), out.size()));
  return out;
}

}  // namespace gk::crypto
