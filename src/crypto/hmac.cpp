#include "crypto/hmac.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "crypto/simd/sha256_mb.h"

namespace gk::crypto {
namespace {

// Key padded/pre-hashed to exactly one SHA-256 block (RFC 2104 step 1).
std::array<std::uint8_t, Sha256::kBlockSize> block_key_of(
    std::span<const std::uint8_t> key) noexcept {
  std::array<std::uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > block_key.size()) {
    const auto digest = sha256(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  return block_key;
}

}  // namespace

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) noexcept {
  const HmacMidstate midstate = hmac_midstate(key);
  return hmac_sha256(midstate, message);
}

HmacMidstate hmac_midstate(std::span<const std::uint8_t> key) noexcept {
  auto block_key = block_key_of(key);

  std::array<std::uint8_t, Sha256::kBlockSize> pad;
  for (std::size_t i = 0; i < pad.size(); ++i)
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);

  HmacMidstate midstate;
  midstate.inner = Sha256::kInitialState;
  Sha256::compress(midstate.inner, pad.data());

  for (std::size_t i = 0; i < pad.size(); ++i)
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  midstate.outer = Sha256::kInitialState;
  Sha256::compress(midstate.outer, pad.data());

  secure_wipe(pad.data(), pad.size());
  secure_wipe(block_key.data(), block_key.size());
  return midstate;
}

Sha256::Digest hmac_sha256(const HmacMidstate& midstate,
                           std::span<const std::uint8_t> message) noexcept {
  Sha256 inner(midstate.inner, Sha256::kBlockSize);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer(midstate.outer, Sha256::kBlockSize);
  outer.update(std::span<const std::uint8_t>(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

void hmac_midstate_many(const std::uint8_t* const* keys, const std::size_t* lens,
                        std::size_t count, HmacMidstate* out) noexcept {
  constexpr std::size_t kLanes = simd::kShaMaxLanes;
  std::uint8_t pads[kLanes][Sha256::kBlockSize];
  std::uint32_t* states[kLanes];
  const std::uint8_t* blocks[kLanes];

  for (std::size_t offset = 0; offset < count; offset += kLanes) {
    const std::size_t lanes = std::min(count - offset, kLanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const auto block_key = block_key_of(
          std::span<const std::uint8_t>(keys[offset + lane], lens[offset + lane]));
      for (std::size_t i = 0; i < Sha256::kBlockSize; ++i)
        pads[lane][i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
      out[offset + lane].inner = Sha256::kInitialState;
      out[offset + lane].outer = Sha256::kInitialState;
      states[lane] = out[offset + lane].inner.data();
      blocks[lane] = pads[lane];
    }
    simd::sha256_compress_many(states, blocks, lanes);

    for (std::size_t lane = 0; lane < lanes; ++lane) {
      // ipad ^ opad == 0x36 ^ 0x5c == 0x6a: flip the pad in place instead of
      // keeping the block key around.
      for (std::size_t i = 0; i < Sha256::kBlockSize; ++i)
        pads[lane][i] = static_cast<std::uint8_t>(pads[lane][i] ^ (0x36 ^ 0x5c));
      states[lane] = out[offset + lane].outer.data();
    }
    simd::sha256_compress_many(states, blocks, lanes);
  }
  secure_wipe(pads, sizeof(pads));
}

void hmac_sha256_many(const HmacMidstate* const* midstates,
                      const std::uint8_t* const* msgs, const std::size_t* lens,
                      std::size_t count, Sha256::Digest* out) noexcept {
  constexpr std::size_t kLanes = simd::kShaMaxLanes;
  Sha256::State lane_states[kLanes];
  Sha256::Digest inner_digests[kLanes];
  const std::uint8_t* digest_ptrs[kLanes];
  std::size_t digest_lens[kLanes];

  for (std::size_t offset = 0; offset < count; offset += kLanes) {
    const std::size_t lanes = std::min(count - offset, kLanes);
    for (std::size_t lane = 0; lane < lanes; ++lane)
      lane_states[lane] = midstates[offset + lane]->inner;
    simd::sha256_many_resumed(lane_states, Sha256::kBlockSize, msgs + offset,
                              lens + offset, lanes, inner_digests);

    for (std::size_t lane = 0; lane < lanes; ++lane) {
      lane_states[lane] = midstates[offset + lane]->outer;
      digest_ptrs[lane] = inner_digests[lane].data();
      digest_lens[lane] = inner_digests[lane].size();
    }
    simd::sha256_many_resumed(lane_states, Sha256::kBlockSize, digest_ptrs, digest_lens,
                              lanes, out + offset);
  }
}

}  // namespace gk::crypto
