#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace gk::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> block_key{};

  if (key.size() > kBlockSize) {
    const auto digest = sha256(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(std::span<const std::uint8_t>(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace gk::crypto
