#include "crypto/sha256.h"

#include <bit>
#include <cstring>

namespace gk::crypto {
namespace {

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Sha256::Sha256() noexcept { state_ = kInitialState; }

Sha256::Sha256(const State& state, std::uint64_t bytes_processed) noexcept
    : state_(state), total_bytes_(bytes_processed) {}

void Sha256::compress(State& state, const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 64> w;
  for (std::size_t i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kSha256RoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  compress(state_, block);
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha256::update(const std::string& data) noexcept {
  update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                       data.size()));
}

Sha256::Digest Sha256::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));

  std::array<std::uint8_t, 8> length_be;
  for (std::size_t i = 0; i < 8; ++i)
    length_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  // update() also advances total_bytes_, but we already captured bit_length.
  update(std::span<const std::uint8_t>(length_be.data(), 8));

  Digest digest;
  for (std::size_t i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Sha256::Digest sha256(std::span<const std::uint8_t> data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finish();
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

}  // namespace gk::crypto
