#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>

#include "common/rng.h"
#include "crypto/secure.h"

namespace gk::crypto {

/// A 128-bit symmetric key — the unit of the paper's cost metric
/// ("number of encrypted keys").
///
/// Keys are plain value types; the KeyServer generates them, wraps them
/// under other keys for distribution, and members unwrap them. Deterministic
/// generation from a seeded Rng keeps full simulations reproducible.
///
/// Secret-safety contract (machine-enforced by `tools/gklint`):
///  - key bytes are wiped on destruction so material does not linger in
///    freed arena slots, vector spares, or stack frames;
///  - equality is constant-time (`ct_equal`); there is deliberately no
///    ordering — secret bytes must never drive a sort order or branch;
///  - `hex()` is redacted (first 4 bytes + "…"); full key bytes only leave
///    via the explicitly named `hex_full()`.
class Key128 {  // gklint: secret-type(Key128)
 public:
  static constexpr std::size_t kSize = 16;

  Key128() noexcept = default;
  explicit Key128(const std::array<std::uint8_t, kSize>& bytes) noexcept
      : bytes_(bytes) {}

  Key128(const Key128&) noexcept = default;
  Key128& operator=(const Key128&) noexcept = default;

  /// Zeroize on destruction. See secure_wipe() for why this cannot be a
  /// plain memset.
  ~Key128() noexcept { secure_wipe(bytes_.data(), bytes_.size()); }

  /// Fresh uniformly random key.
  [[nodiscard]] static Key128 random(Rng& rng) noexcept;

  [[nodiscard]] std::span<const std::uint8_t, kSize> bytes() const noexcept {
    return std::span<const std::uint8_t, kSize>(bytes_);
  }
  [[nodiscard]] std::span<std::uint8_t, kSize> mutable_bytes() noexcept {
    return std::span<std::uint8_t, kSize>(bytes_);
  }

  [[nodiscard]] bool is_zero() const noexcept;

  /// Redacted rendering: hex of the first 4 bytes followed by "…". Safe for
  /// logs, diagnostics, and test failure messages.
  [[nodiscard]] std::string hex() const;

  /// Full 32-hex-char rendering of the key material. Named loudly so every
  /// escape hatch is greppable; gklint's `secret-log` rule confines calls to
  /// crypto internals, tests, and tooling.
  [[nodiscard]] std::string hex_full() const;

  /// Constant-time equality — the only comparison Key128 offers. Ordered
  /// comparisons on secret bytes are banned (gklint `ct-compare`).
  [[nodiscard]] friend bool operator==(const Key128& a, const Key128& b) noexcept {
    return ct_equal(a.bytes(), b.bytes());
  }

  /// Redacted printer picked up by GoogleTest via ADL, so EXPECT_EQ failures
  /// never dump full key bytes into test logs.
  friend void PrintTo(const Key128& k, std::ostream* os);

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

/// Stable identifier of a logical key-tree node. The id survives key
/// *updates* (the node keeps its id while its key material is replaced), so
/// members can match wrapped keys in a rekey message against the nodes they
/// hold.
enum class KeyId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t raw(KeyId id) noexcept {
  return static_cast<std::uint64_t>(id);
}
[[nodiscard]] constexpr KeyId make_key_id(std::uint64_t v) noexcept {
  return static_cast<KeyId>(v);
}

/// A key together with its version. Every update to a node's key material
/// bumps the version; wrapped keys record which version of the wrapping key
/// was used so receivers can detect stale state.
struct VersionedKey {
  Key128 key;
  std::uint32_t version = 0;

  /// Version check is public; the key comparison goes through Key128's
  /// constant-time operator==.
  [[nodiscard]] friend bool operator==(const VersionedKey& a,
                                       const VersionedKey& b) noexcept {
    return a.version == b.version && a.key == b.key;
  }
};

}  // namespace gk::crypto

/// Hashing key bytes is required for the unordered_map-based member/key
/// indexes. The hash is not secret-independent in theory (bucket placement
/// depends on key bytes), but nothing observable branches on it and the
/// alternative — an ordered container — would need the banned ordered
/// comparison. See DESIGN.md §8.
template <>
struct std::hash<gk::crypto::Key128> {
  std::size_t operator()(const gk::crypto::Key128& k) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (std::uint8_t b : k.bytes()) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};
