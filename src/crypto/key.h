#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/rng.h"

namespace gk::crypto {

/// A 128-bit symmetric key — the unit of the paper's cost metric
/// ("number of encrypted keys").
///
/// Keys are plain value types; the KeyServer generates them, wraps them
/// under other keys for distribution, and members unwrap them. Deterministic
/// generation from a seeded Rng keeps full simulations reproducible.
class Key128 {
 public:
  static constexpr std::size_t kSize = 16;

  constexpr Key128() noexcept = default;
  explicit constexpr Key128(const std::array<std::uint8_t, kSize>& bytes) noexcept
      : bytes_(bytes) {}

  /// Fresh uniformly random key.
  [[nodiscard]] static Key128 random(Rng& rng) noexcept;

  [[nodiscard]] std::span<const std::uint8_t, kSize> bytes() const noexcept {
    return std::span<const std::uint8_t, kSize>(bytes_);
  }
  [[nodiscard]] std::span<std::uint8_t, kSize> mutable_bytes() noexcept {
    return std::span<std::uint8_t, kSize>(bytes_);
  }

  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] std::string hex() const;

  friend constexpr auto operator<=>(const Key128&, const Key128&) noexcept = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

/// Stable identifier of a logical key-tree node. The id survives key
/// *updates* (the node keeps its id while its key material is replaced), so
/// members can match wrapped keys in a rekey message against the nodes they
/// hold.
enum class KeyId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t raw(KeyId id) noexcept {
  return static_cast<std::uint64_t>(id);
}
[[nodiscard]] constexpr KeyId make_key_id(std::uint64_t v) noexcept {
  return static_cast<KeyId>(v);
}

/// A key together with its version. Every update to a node's key material
/// bumps the version; wrapped keys record which version of the wrapping key
/// was used so receivers can detect stale state.
struct VersionedKey {
  Key128 key;
  std::uint32_t version = 0;
};

}  // namespace gk::crypto

template <>
struct std::hash<gk::crypto::Key128> {
  std::size_t operator()(const gk::crypto::Key128& k) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (std::uint8_t b : k.bytes()) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};
