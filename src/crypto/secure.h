#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace gk::crypto {

/// Constant-time byte-span equality. The only sanctioned way to compare
/// secret material (keys, MAC tags, blinded seeds): the loop touches every
/// byte regardless of where the first mismatch sits, so the comparison's
/// running time leaks nothing about the secrets. Returns false on length
/// mismatch (lengths are public).
///
/// gklint's `ct-compare` rule bans `memcmp`/defaulted comparison operators
/// on secret types precisely so that every comparison funnels through here.
[[nodiscard]] inline bool ct_equal(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

/// Best-effort guaranteed zeroization. A plain `memset` before free is
/// legal for the compiler to elide under dead-store elimination — the
/// classic way wiped keys silently survive in memory. Writing through a
/// `volatile` pointer plus a compiler barrier keeps the stores observable.
inline void secure_wipe(void* data, std::size_t size) noexcept {
  auto* bytes = static_cast<volatile unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) bytes[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(data) : "memory");
#endif
}

/// Span convenience overload.
inline void secure_wipe(std::span<std::uint8_t> data) noexcept {
  secure_wipe(data.data(), data.size());
}

/// A fixed-size stack buffer for key material that wipes itself on every
/// exit path — returns, exceptions, early error branches — so the scratch
/// bytes a derivation writes can never outlive the frame. gklint's
/// `raii-wipe` rule flags plain byte arrays fed to derivation helpers;
/// declaring the buffer WipedBytes is the structural fix (a manual
/// secure_wipe() before each return is the spot fix, and cannot cover
/// unwinding at all).
template <std::size_t N>
class WipedBytes {
 public:
  WipedBytes() noexcept = default;
  explicit WipedBytes(const std::array<std::uint8_t, N>& bytes) noexcept
      : bytes_(bytes) {}
  ~WipedBytes() noexcept { secure_wipe(bytes_.data(), bytes_.size()); }

  // No copies: every copy is another frame to scrub.
  WipedBytes(const WipedBytes&) = delete;
  WipedBytes& operator=(const WipedBytes&) = delete;

  [[nodiscard]] std::array<std::uint8_t, N>& array() noexcept { return bytes_; }
  [[nodiscard]] const std::array<std::uint8_t, N>& array() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::uint8_t* data() noexcept { return bytes_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return bytes_.data(); }
  [[nodiscard]] static constexpr std::size_t size() noexcept { return N; }
  [[nodiscard]] std::uint8_t& operator[](std::size_t i) noexcept { return bytes_[i]; }
  [[nodiscard]] const std::uint8_t& operator[](std::size_t i) const noexcept {
    return bytes_[i];
  }
  [[nodiscard]] std::span<std::uint8_t, N> span() noexcept { return bytes_; }
  [[nodiscard]] std::span<const std::uint8_t, N> span() const noexcept {
    return bytes_;
  }

 private:
  std::array<std::uint8_t, N> bytes_{};
};

}  // namespace gk::crypto
