#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gk::crypto {

/// Constant-time byte-span equality. The only sanctioned way to compare
/// secret material (keys, MAC tags, blinded seeds): the loop touches every
/// byte regardless of where the first mismatch sits, so the comparison's
/// running time leaks nothing about the secrets. Returns false on length
/// mismatch (lengths are public).
///
/// gklint's `ct-compare` rule bans `memcmp`/defaulted comparison operators
/// on secret types precisely so that every comparison funnels through here.
[[nodiscard]] inline bool ct_equal(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

/// Best-effort guaranteed zeroization. A plain `memset` before free is
/// legal for the compiler to elide under dead-store elimination — the
/// classic way wiped keys silently survive in memory. Writing through a
/// `volatile` pointer plus a compiler barrier keeps the stores observable.
inline void secure_wipe(void* data, std::size_t size) noexcept {
  auto* bytes = static_cast<volatile unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) bytes[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(data) : "memory");
#endif
}

/// Span convenience overload.
inline void secure_wipe(std::span<std::uint8_t> data) noexcept {
  secure_wipe(data.data(), data.size());
}

}  // namespace gk::crypto
