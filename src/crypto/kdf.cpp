#include "crypto/kdf.h"

#include <cstring>
#include <vector>

#include "crypto/hmac.h"

namespace gk::crypto {

Key128 derive_key(const Key128& key, std::string_view label,
                  std::uint64_t context) noexcept {
  std::vector<std::uint8_t> input;
  input.reserve(label.size() + 8);
  input.insert(input.end(), label.begin(), label.end());
  for (int i = 0; i < 8; ++i)
    input.push_back(static_cast<std::uint8_t>(context >> (8 * i)));

  auto digest = hmac_sha256(key.bytes(), std::span<const std::uint8_t>(input));
  WipedBytes<Key128::kSize> bytes;
  std::memcpy(bytes.data(), digest.data(), bytes.size());
  secure_wipe(digest.data(), digest.size());
  return Key128(bytes.array());
}

Key128 oft_blind(const Key128& key) noexcept { return derive_key(key, "oft-blind-g"); }

Key128 oft_mix(const Key128& left_blinded, const Key128& right_blinded) noexcept {
  WipedBytes<Key128::kSize> mixed;
  const auto l = left_blinded.bytes();
  const auto r = right_blinded.bytes();
  for (std::size_t i = 0; i < mixed.size(); ++i)
    mixed[i] = static_cast<std::uint8_t>(l[i] ^ r[i]);
  // A final PRF application matches OFT's f() and avoids structural
  // relations between parent and children keys.
  return derive_key(Key128(mixed.array()), "oft-mix-f");
}

}  // namespace gk::crypto
