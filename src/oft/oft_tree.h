#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/kdf.h"
#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "lkh/ids.h"
#include "lkh/rekey_message.h"
#include "workload/member.h"

namespace gk::oft {

/// One-way function tree (OFT) key server [BM00].
///
/// A binary tree in which each interior node's key is *computed*, not
/// random: k(parent) = f(g(k(left)) XOR g(k(right))), where g is the
/// blinding one-way function and f a PRF (crypto/kdf.h). Each member holds
/// its leaf key plus the blinded keys of every sibling along its path, from
/// which it derives the whole path up to the group key.
///
/// On a membership change the server re-randomizes the affected leaf's
/// sibling path and distributes each changed *blinded* key encrypted under
/// the key of the subtree that needs it — roughly log2(N) wrapped keys per
/// departure versus d*logd(N) for LKH. The paper's Section 2.1.1 note that
/// its partition optimizations "are also applicable" to OFT is demonstrated
/// by parameterizing the two-partition server over this tree type as well.
class OftTree {
 public:
  explicit OftTree(Rng rng, std::shared_ptr<lkh::IdAllocator> ids = nullptr);
  ~OftTree();

  OftTree(OftTree&&) noexcept;
  OftTree& operator=(OftTree&&) noexcept;
  OftTree(const OftTree&) = delete;
  OftTree& operator=(const OftTree&) = delete;

  /// Everything a joining member receives over the registration unicast
  /// channel: its leaf key, ids, and the blinded sibling path at join time.
  struct JoinGrant {
    crypto::Key128 leaf_key;
    crypto::KeyId leaf_id{};
    /// Version of the leaf key at grant time (0 for fresh joins; higher
    /// when a grant is re-derived after re-randomizations).
    std::uint32_t leaf_version = 0;
    /// (node id whose blinded key this is, blinded key, version) for each
    /// sibling bottom-up.
    struct BlindedSibling {
      crypto::KeyId id{};
      crypto::Key128 blinded;
      std::uint32_t version = 0;
    };
    std::vector<BlindedSibling> sibling_path;
  };

  /// Add a member and emit the incremental rekey message for incumbents.
  JoinGrant join(workload::MemberId member, lkh::RekeyMessage& out);

  /// Re-derive the unicast grant for a current member (its leaf key plus
  /// the *current* blinded sibling path). Used when a higher-level server
  /// needs to re-issue registration state, e.g. after a partition
  /// migration.
  [[nodiscard]] JoinGrant current_grant(workload::MemberId member) const;

  /// Remove a member and emit the rekey message (changed blinded keys
  /// wrapped for the subtrees that need them).
  void leave(workload::MemberId member, lkh::RekeyMessage& out);

  [[nodiscard]] std::size_t size() const noexcept { return leaves_.size(); }
  [[nodiscard]] bool empty() const noexcept { return leaves_.empty(); }
  [[nodiscard]] bool contains(workload::MemberId member) const noexcept;

  /// Current group key (root of the one-way function computation).
  [[nodiscard]] crypto::VersionedKey group_key() const;
  [[nodiscard]] crypto::KeyId root_id() const noexcept;

  /// Server-side record of a member's leaf key (tests / unicast).
  [[nodiscard]] const crypto::Key128& leaf_key(workload::MemberId member) const;

  /// Public topology of one member's path. `path` lists node ids leaf
  /// first, root last; `siblings[i]` is the id of `path[i]`'s sibling under
  /// `path[i+1]`, or KeyId{0} when that level has a single child (the
  /// member folds with the zero key there). Tree shape is not secret in
  /// LKH/OFT protocols, so members may read this directly; only *blinded
  /// values* travel encrypted.
  struct PathInfo {
    std::vector<crypto::KeyId> path;
    std::vector<crypto::KeyId> siblings;
  };
  [[nodiscard]] PathInfo path_info(workload::MemberId member) const;

 private:
  struct Node;

  Node* locate(workload::MemberId member) const;
  Node* choose_split_leaf();
  static Node* lightest_leaf(Node* node) noexcept;
  void recompute_upward(Node* node);
  [[nodiscard]] crypto::Key128 node_blinded(const Node* node) const;

  Rng rng_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  std::unique_ptr<Node> root_;
  std::unordered_map<std::uint64_t, Node*> leaves_;
};

}  // namespace gk::oft
