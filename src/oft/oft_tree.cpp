#include "oft/oft_tree.h"

#include <algorithm>

#include "common/ensure.h"

namespace gk::oft {

struct OftTree::Node {
  crypto::KeyId id{};
  crypto::VersionedKey key;  // leaves: random; interior: f(g(left) ^ g(right))
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;  // 0..2 entries
  std::optional<workload::MemberId> member;
  std::size_t leaf_count = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return member.has_value(); }

  [[nodiscard]] Node* other_child(const Node* one) const noexcept {
    for (const auto& child : children)
      if (child.get() != one) return child.get();
    return nullptr;
  }
};

/// Lightest-leaf descent: the leaf we split on join / re-randomize on
/// departure, chosen to keep the tree balanced.
OftTree::Node* OftTree::lightest_leaf(Node* node) noexcept {
  while (!node->is_leaf()) {
    Node* lightest = node->children.front().get();
    for (const auto& child : node->children)
      if (child->leaf_count < lightest->leaf_count) lightest = child.get();
    node = lightest;
  }
  return node;
}

OftTree::OftTree(Rng rng, std::shared_ptr<lkh::IdAllocator> ids)
    : rng_(rng), ids_(ids ? std::move(ids) : lkh::IdAllocator::create()) {
  root_ = std::make_unique<Node>();
  root_->id = ids_->next();
  root_->key = {crypto::Key128::random(rng_), 0};
}

OftTree::~OftTree() = default;
OftTree::OftTree(OftTree&&) noexcept = default;
OftTree& OftTree::operator=(OftTree&&) noexcept = default;

bool OftTree::contains(workload::MemberId member) const noexcept {
  return leaves_.count(workload::raw(member)) != 0;
}

OftTree::Node* OftTree::locate(workload::MemberId member) const {
  const auto it = leaves_.find(workload::raw(member));
  GK_ENSURE_MSG(it != leaves_.end(),
                "member " << workload::raw(member) << " not in OFT tree");
  return it->second;
}

crypto::Key128 OftTree::node_blinded(const Node* node) const {
  return crypto::oft_blind(node->key.key);
}

void OftTree::recompute_upward(Node* node) {
  for (Node* cursor = node->parent; cursor != nullptr; cursor = cursor->parent) {
    GK_ENSURE(!cursor->children.empty());
    crypto::Key128 key;
    if (cursor->children.size() == 1) {
      key = crypto::oft_mix(node_blinded(cursor->children.front().get()),
                            crypto::Key128{});
    } else {
      key = crypto::oft_mix(node_blinded(cursor->children[0].get()),
                            node_blinded(cursor->children[1].get()));
    }
    cursor->key.key = key;
    ++cursor->key.version;
  }
}

OftTree::Node* OftTree::choose_split_leaf() {
  if (root_->children.empty()) return nullptr;
  return lightest_leaf(root_.get());
}

OftTree::JoinGrant OftTree::join(workload::MemberId member, lkh::RekeyMessage& out) {
  GK_ENSURE_MSG(!contains(member),
                "member " << workload::raw(member) << " already in OFT tree");

  auto leaf = std::make_unique<Node>();
  leaf->id = ids_->next();
  leaf->key = {crypto::Key128::random(rng_), 0};
  leaf->member = member;
  leaf->leaf_count = 1;
  Node* leaf_raw = leaf.get();

  if (root_->children.size() < 2) {
    // A free slot at the root (first or second member).
    leaf->parent = root_.get();
    root_->children.push_back(std::move(leaf));
  } else {
    // Replace the lightest leaf with a fresh interior node {old leaf, new}.
    Node* split = choose_split_leaf();
    Node* parent = split->parent;
    auto slot = std::find_if(
        parent->children.begin(), parent->children.end(),
        [split](const std::unique_ptr<Node>& c) { return c.get() == split; });
    GK_ENSURE(slot != parent->children.end());

    auto interior = std::make_unique<Node>();
    interior->id = ids_->next();
    interior->parent = parent;
    interior->leaf_count = split->leaf_count;
    auto owned_split = std::move(*slot);
    owned_split->parent = interior.get();
    leaf->parent = interior.get();
    interior->children.push_back(std::move(owned_split));
    interior->children.push_back(std::move(leaf));
    *slot = std::move(interior);
  }

  leaves_.emplace(workload::raw(member), leaf_raw);
  for (Node* cursor = leaf_raw->parent; cursor != nullptr; cursor = cursor->parent)
    ++cursor->leaf_count;

  // Backward confidentiality: the newcomer will learn the blinded keys of
  // its sibling path, so a key inside the sibling subtree must change or
  // the newcomer could unwind the previous group key. Re-randomize the
  // lightest leaf under the sibling (in the common split case this is the
  // split leaf itself).
  Node* sibling = leaf_raw->parent->other_child(leaf_raw);
  Node* fresh = nullptr;
  if (sibling != nullptr) {
    fresh = lightest_leaf(sibling);
    const crypto::Key128 old_key = fresh->key.key;
    fresh->key.key = crypto::Key128::random(rng_);
    ++fresh->key.version;
    out.wraps.push_back(crypto::wrap_key(old_key, fresh->id, fresh->key.version - 1,
                                         fresh->key.key, fresh->id, fresh->key.version,
                                         rng_));
  }

  recompute_upward(leaf_raw);

  // Blinded-key updates for incumbents. Inside the sibling subtree, the
  // re-randomized leaf's path up to (but excluding) the join parent:
  if (fresh != nullptr) {
    Node* child_on_path = fresh;
    for (Node* cursor = fresh->parent; cursor != leaf_raw->parent;
         cursor = cursor->parent) {
      Node* other = cursor->other_child(child_on_path);
      if (other != nullptr)
        out.wraps.push_back(crypto::wrap_key(
            other->key.key, other->id, other->key.version,
            node_blinded(child_on_path), child_on_path->id,
            child_on_path->key.version, rng_));
      child_on_path = cursor;
    }
  }
  // ...and the new leaf's own path to the root (covers handing the
  // newcomer's blinded key to the sibling subtree at the first level).
  {
    Node* child_on_path = leaf_raw;
    for (Node* cursor = leaf_raw->parent; cursor != nullptr; cursor = cursor->parent) {
      Node* other = cursor->other_child(child_on_path);
      if (other != nullptr)
        out.wraps.push_back(crypto::wrap_key(
            other->key.key, other->id, other->key.version,
            node_blinded(child_on_path), child_on_path->id,
            child_on_path->key.version, rng_));
      child_on_path = cursor;
    }
  }

  JoinGrant grant;
  grant.leaf_key = leaf_raw->key.key;
  grant.leaf_id = leaf_raw->id;
  grant.leaf_version = leaf_raw->key.version;
  {
    Node* child_on_path = leaf_raw;
    for (Node* cursor = leaf_raw->parent; cursor != nullptr; cursor = cursor->parent) {
      Node* sib = cursor->other_child(child_on_path);
      if (sib != nullptr)
        grant.sibling_path.push_back({sib->id, node_blinded(sib), sib->key.version});
      child_on_path = cursor;
    }
  }

  out.group_key_id = root_->id;
  out.group_key_version = root_->key.version;
  return grant;
}

void OftTree::leave(workload::MemberId member, lkh::RekeyMessage& out) {
  Node* leaf = locate(member);
  Node* parent = leaf->parent;
  GK_ENSURE(parent != nullptr);
  leaves_.erase(workload::raw(member));

  for (Node* cursor = parent; cursor != nullptr; cursor = cursor->parent)
    --cursor->leaf_count;

  Node* sibling = parent->other_child(leaf);

  auto leaf_slot = std::find_if(
      parent->children.begin(), parent->children.end(),
      [leaf](const std::unique_ptr<Node>& c) { return c.get() == leaf; });
  GK_ENSURE(leaf_slot != parent->children.end());
  parent->children.erase(leaf_slot);

  if (sibling == nullptr) {
    // The departed member was alone under the root: no incumbents to rekey,
    // just retire the group key.
    GK_ENSURE(parent == root_.get());
    root_->key.key = crypto::Key128::random(rng_);
    ++root_->key.version;
    out.group_key_id = root_->id;
    out.group_key_version = root_->key.version;
    return;
  }

  Node* promoted = sibling;
  if (parent != root_.get()) {
    // Splice: the sibling takes the parent's place.
    Node* grandparent = parent->parent;
    auto parent_slot = std::find_if(
        grandparent->children.begin(), grandparent->children.end(),
        [parent](const std::unique_ptr<Node>& c) { return c.get() == parent; });
    GK_ENSURE(parent_slot != grandparent->children.end());
    auto owned_sibling = std::move(parent->children.front());
    owned_sibling->parent = grandparent;
    promoted = owned_sibling.get();
    *parent_slot = std::move(owned_sibling);
  }

  // Forward confidentiality: the departed member knew every blinded key on
  // its sibling path, so re-randomize a leaf under the promoted subtree and
  // recompute the functional keys above it.
  Node* fresh = lightest_leaf(promoted);
  const crypto::Key128 old_key = fresh->key.key;
  fresh->key.key = crypto::Key128::random(rng_);
  ++fresh->key.version;
  out.wraps.push_back(crypto::wrap_key(old_key, fresh->id, fresh->key.version - 1,
                                       fresh->key.key, fresh->id, fresh->key.version,
                                       rng_));

  recompute_upward(fresh);

  Node* child_on_path = fresh;
  for (Node* cursor = fresh->parent; cursor != nullptr; cursor = cursor->parent) {
    Node* other = cursor->other_child(child_on_path);
    if (other != nullptr)
      out.wraps.push_back(crypto::wrap_key(other->key.key, other->id,
                                           other->key.version,
                                           node_blinded(child_on_path),
                                           child_on_path->id,
                                           child_on_path->key.version, rng_));
    child_on_path = cursor;
  }

  out.group_key_id = root_->id;
  out.group_key_version = root_->key.version;
}

crypto::VersionedKey OftTree::group_key() const { return root_->key; }

crypto::KeyId OftTree::root_id() const noexcept { return root_->id; }

const crypto::Key128& OftTree::leaf_key(workload::MemberId member) const {
  return locate(member)->key.key;
}

OftTree::JoinGrant OftTree::current_grant(workload::MemberId member) const {
  const Node* leaf = locate(member);
  JoinGrant grant;
  grant.leaf_key = leaf->key.key;
  grant.leaf_id = leaf->id;
  grant.leaf_version = leaf->key.version;
  const Node* child_on_path = leaf;
  for (const Node* cursor = leaf->parent; cursor != nullptr; cursor = cursor->parent) {
    const Node* sibling = cursor->other_child(child_on_path);
    if (sibling != nullptr)
      grant.sibling_path.push_back(
          {sibling->id, node_blinded(sibling), sibling->key.version});
    child_on_path = cursor;
  }
  return grant;
}

OftTree::PathInfo OftTree::path_info(workload::MemberId member) const {
  PathInfo info;
  const Node* child_on_path = locate(member);
  info.path.push_back(child_on_path->id);
  for (const Node* cursor = child_on_path->parent; cursor != nullptr;
       cursor = cursor->parent) {
    const Node* sibling = cursor->other_child(child_on_path);
    info.siblings.push_back(sibling != nullptr ? sibling->id : crypto::make_key_id(0));
    info.path.push_back(cursor->id);
    child_on_path = cursor;
  }
  return info;
}

}  // namespace gk::oft

