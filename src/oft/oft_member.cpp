#include "oft/oft_member.h"

#include "common/ensure.h"
#include "crypto/kdf.h"

namespace gk::oft {

OftMember::OftMember(workload::MemberId owner, const OftTree::JoinGrant& grant,
                     OftTree::PathInfo structure)
    : owner_(owner), leaf_id_(grant.leaf_id),
      leaf_key_{grant.leaf_key, grant.leaf_version},
      structure_(std::move(structure)) {
  for (const auto& sibling : grant.sibling_path)
    blinded_[crypto::raw(sibling.id)] = {sibling.blinded, sibling.version};
}

void OftMember::set_structure(OftTree::PathInfo structure) {
  structure_ = std::move(structure);
}

std::optional<crypto::Key128> OftMember::path_key(std::size_t level) const {
  GK_ENSURE(level < structure_.path.size());
  crypto::Key128 key = leaf_key_.key;
  for (std::size_t i = 0; i < level; ++i) {
    const crypto::KeyId sibling = structure_.siblings[i];
    crypto::Key128 sibling_blinded{};  // zero key when the level is unary
    if (crypto::raw(sibling) != 0) {
      const auto it = blinded_.find(crypto::raw(sibling));
      if (it == blinded_.end()) return std::nullopt;
      sibling_blinded = it->second.key;
    }
    // Fold in child order? OFT mixing must be order-insensitive for the two
    // subtrees to agree; oft_mix() XORs the blinded values, and XOR is
    // commutative, so (own, sibling) ordering is immaterial.
    key = crypto::oft_mix(crypto::oft_blind(key), sibling_blinded);
  }
  return key;
}

std::size_t OftMember::process(std::span<const crypto::WrappedKey> wraps) {
  std::size_t accepted = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const auto& wrap : wraps) {
      // Case 1: our own leaf key re-randomized (new wrapped under old).
      if (wrap.target_id == leaf_id_ && wrap.wrapping_id == leaf_id_ &&
          wrap.wrapping_version == leaf_key_.version &&
          wrap.target_version > leaf_key_.version) {
        const auto fresh = crypto::unwrap_key(leaf_key_.key, wrap);
        if (fresh.has_value()) {
          leaf_key_ = {*fresh, wrap.target_version};
          ++accepted;
          progressed = true;
        }
        continue;
      }
      // Case 2: a blinded sibling value encrypted under one of our path
      // keys (including the leaf itself at level 0).
      const auto existing = blinded_.find(crypto::raw(wrap.target_id));
      if (existing != blinded_.end() &&
          existing->second.version >= wrap.target_version)
        continue;
      for (std::size_t level = 0; level < structure_.path.size(); ++level) {
        if (structure_.path[level] != wrap.wrapping_id) continue;
        const auto kek = path_key(level);
        if (!kek.has_value()) break;
        const auto payload = crypto::unwrap_key(*kek, wrap);
        if (payload.has_value()) {
          blinded_[crypto::raw(wrap.target_id)] = {*payload, wrap.target_version};
          ++accepted;
          progressed = true;
        }
        break;
      }
    }
  }
  return accepted;
}

std::optional<crypto::Key128> OftMember::compute_group_key() const {
  return path_key(structure_.path.size() - 1);
}

}  // namespace gk::oft
