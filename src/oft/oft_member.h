#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "oft/oft_tree.h"
#include "workload/member.h"

namespace gk::oft {

/// A member's OFT state: its leaf key, the blinded keys of its sibling
/// path, and the (public) path topology. The group key is *derived*, not
/// received: fold bottom-up with k(parent) = f(g(k(child)) ^ blinded
/// sibling).
class OftMember {
 public:
  OftMember(workload::MemberId owner, const OftTree::JoinGrant& grant,
            OftTree::PathInfo structure);

  /// Refresh the public topology after tree restructuring (splits above
  /// this member, splices, promotions). Blinded values are retained — only
  /// the fold order changes.
  void set_structure(OftTree::PathInfo structure);

  /// Consume rekey wraps; returns how many were accepted (new leaf key or
  /// new blinded sibling values).
  std::size_t process(std::span<const crypto::WrappedKey> wraps);

  /// Fold up the path; nullopt if a blinded sibling value is missing.
  [[nodiscard]] std::optional<crypto::Key128> compute_group_key() const;

  [[nodiscard]] workload::MemberId owner() const noexcept { return owner_; }
  [[nodiscard]] crypto::KeyId leaf_id() const noexcept { return leaf_id_; }

 private:
  /// Compute the key of path node `level` (0 = leaf); nullopt if blocked.
  [[nodiscard]] std::optional<crypto::Key128> path_key(std::size_t level) const;

  workload::MemberId owner_;
  crypto::KeyId leaf_id_;
  crypto::VersionedKey leaf_key_;
  OftTree::PathInfo structure_;
  std::unordered_map<std::uint64_t, crypto::VersionedKey> blinded_;
};

}  // namespace gk::oft
