#include "lkh/key_ring.h"

namespace gk::lkh {

KeyRing::KeyRing(workload::MemberId owner, crypto::KeyId leaf_id,
                 crypto::Key128 individual_key)
    : owner_(owner), leaf_id_(leaf_id) {
  keys_.emplace(crypto::raw(leaf_id), crypto::VersionedKey{individual_key, 0});
}

void KeyRing::grant(crypto::KeyId id, const crypto::VersionedKey& key) {
  keys_[crypto::raw(id)] = key;
}

bool KeyRing::try_unwrap(const crypto::WrappedKey& wrap) {
  const auto kek_it = keys_.find(crypto::raw(wrap.wrapping_id));
  if (kek_it == keys_.end()) return false;
  // A stale KEK version cannot decrypt (the MAC would fail); skip cheaply.
  if (kek_it->second.version != wrap.wrapping_version) return false;

  const auto existing = keys_.find(crypto::raw(wrap.target_id));
  if (existing != keys_.end() && existing->second.version >= wrap.target_version)
    return false;  // already have this or newer

  const auto payload = crypto::unwrap_key(kek_it->second.key, wrap);
  if (!payload.has_value()) return false;
  keys_[crypto::raw(wrap.target_id)] = {*payload, wrap.target_version};
  return true;
}

std::size_t KeyRing::process(std::span<const crypto::WrappedKey> wraps) {
  std::size_t learned = 0;
  bool progressed = true;
  // Fixed point: each pass can unlock wraps whose KEK arrived "later" in
  // the span. Terminates because each success strictly advances a version.
  while (progressed) {
    progressed = false;
    for (const auto& wrap : wraps) {
      if (try_unwrap(wrap)) {
        ++learned;
        progressed = true;
      }
    }
  }
  return learned;
}

std::size_t KeyRing::process(const RekeyMessage& message) {
  return process(std::span<const crypto::WrappedKey>(message.wraps));
}

std::optional<crypto::VersionedKey> KeyRing::lookup(crypto::KeyId id) const {
  const auto it = keys_.find(crypto::raw(id));
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

bool KeyRing::holds(crypto::KeyId id, std::uint32_t version) const {
  const auto it = keys_.find(crypto::raw(id));
  return it != keys_.end() && it->second.version == version;
}

bool KeyRing::wants(const crypto::WrappedKey& wrap) const {
  const auto kek_it = keys_.find(crypto::raw(wrap.wrapping_id));
  if (kek_it == keys_.end() || kek_it->second.version != wrap.wrapping_version)
    return false;
  const auto existing = keys_.find(crypto::raw(wrap.target_id));
  return existing == keys_.end() || existing->second.version < wrap.target_version;
}

}  // namespace gk::lkh
