#pragma once

#include <cstdint>
#include <memory>

#include "crypto/key.h"

namespace gk::lkh {

/// Allocates logical-key-node ids that are unique across every key tree of
/// one key server. Composite schemes (two-partition, loss-homogenized)
/// run several trees under one session, so trees share an allocator.
class IdAllocator {
 public:
  /// `first_id` carves out a private id range: the sharded engine gives
  /// every shard a disjoint base so key ids never collide across shards in
  /// a member's KeyRing (which is an id-keyed map). 0 is reserved.
  explicit IdAllocator(std::uint64_t first_id = 1)
      : counter_(first_id == 0 ? 1 : first_id) {}

  [[nodiscard]] crypto::KeyId next() noexcept { return crypto::make_key_id(counter_++); }

  /// Ensure future ids exceed `used` (snapshot restore: ids in the restored
  /// tree must never be re-issued).
  void advance_past(std::uint64_t used) noexcept {
    if (counter_ <= used) counter_ = used + 1;
  }

  /// The next id this allocator will hand out. Durable servers persist it
  /// so that a journal-replayed server allocates the exact same ids as the
  /// crash-free run.
  [[nodiscard]] std::uint64_t watermark() const noexcept { return counter_; }

  /// Force the counter to an exact saved watermark. Only valid when *all*
  /// trees sharing this allocator are being restored in the same operation
  /// (state-restore replaces every live id, so moving the counter backwards
  /// past ids consumed by throwaway blank construction is safe).
  void reset_to(std::uint64_t watermark) noexcept { counter_ = watermark; }

  [[nodiscard]] static std::shared_ptr<IdAllocator> create(std::uint64_t first_id = 1) {
    return std::make_shared<IdAllocator>(first_id);
  }

 private:
  std::uint64_t counter_;  // 0 is reserved as "no key"
};

}  // namespace gk::lkh
