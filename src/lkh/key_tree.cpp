#include "lkh/key_tree.h"

#include <algorithm>
#include <deque>

#include "common/ensure.h"
#include "crypto/keywrap.h"
#include "lkh/key_tree_node.h"

namespace gk::lkh {

namespace {

void raise_mark(Mark& mark, Mark to) noexcept {
  if (static_cast<std::uint8_t>(to) > static_cast<std::uint8_t>(mark)) mark = to;
}

}  // namespace

KeyTree::KeyTree(unsigned degree, Rng rng, std::shared_ptr<IdAllocator> ids)
    : degree_(degree), rng_(rng), ids_(ids ? std::move(ids) : IdAllocator::create()) {
  GK_ENSURE(degree_ >= 2);
  root_ = std::make_unique<Node>();
  root_->id = ids_->next();
  root_->key = {crypto::Key128::random(rng_), 0};
}

KeyTree::~KeyTree() = default;
KeyTree::KeyTree(KeyTree&&) noexcept = default;
KeyTree& KeyTree::operator=(KeyTree&&) noexcept = default;

bool KeyTree::contains(workload::MemberId member) const noexcept {
  return leaves_.count(workload::raw(member)) != 0;
}

KeyTree::Node* KeyTree::locate(workload::MemberId member) const {
  const auto it = leaves_.find(workload::raw(member));
  GK_ENSURE_MSG(it != leaves_.end(), "member " << workload::raw(member) << " not in tree");
  return it->second;
}

KeyTree::Node* KeyTree::choose_insert_parent() {
  // Refill slots vacated by this batch's departures first: their paths are
  // already dirty, so the join is (nearly) free in multicast cost.
  while (!vacancies_.empty()) {
    Node* candidate = vacancies_.back();
    vacancies_.pop_back();
    if (candidate->children.size() < degree_) return candidate;
  }

  Node* node = root_.get();
  while (true) {
    if (node->children.size() < degree_) return node;
    // Full fan-out: descend into the lightest subtree to keep the tree
    // balanced without global rebuilds.
    Node* lightest = nullptr;
    for (const auto& child : node->children)
      if (lightest == nullptr || child->leaf_count < lightest->leaf_count)
        lightest = child.get();
    if (!lightest->is_leaf()) {
      node = lightest;
      continue;
    }
    // The lightest child is a leaf in a full node: grow downward by
    // splitting the leaf under a fresh interior node.
    auto interior = std::make_unique<Node>();
    Node* interior_raw = interior.get();
    interior->id = ids_->next();
    interior->key = {crypto::Key128::random(rng_), 0};
    interior->mark = Mark::kNew;
    interior->parent = node;
    interior->leaf_count = 1;

    auto owned_leaf = std::move(*std::find_if(
        node->children.begin(), node->children.end(),
        [lightest](const std::unique_ptr<Node>& c) { return c.get() == lightest; }));
    auto slot = std::find_if(node->children.begin(), node->children.end(),
                             [](const std::unique_ptr<Node>& c) { return c == nullptr; });
    owned_leaf->parent = interior_raw;
    interior->children.push_back(std::move(owned_leaf));
    *slot = std::move(interior);
    return interior_raw;
  }
}

void KeyTree::mark_path(Node* node, int level) {
  const auto mark = static_cast<Mark>(level);
  for (Node* cursor = node; cursor != nullptr; cursor = cursor->parent)
    raise_mark(cursor->mark, mark);
}

KeyTree::JoinGrant KeyTree::insert(workload::MemberId member) {
  return insert_with_key(member, crypto::Key128::random(rng_));
}

KeyTree::JoinGrant KeyTree::insert_with_key(workload::MemberId member,
                                            const crypto::Key128& key) {
  GK_ENSURE_MSG(!contains(member), "member " << workload::raw(member) << " already joined");

  Node* parent = choose_insert_parent();

  auto leaf = std::make_unique<Node>();
  leaf->id = ids_->next();
  leaf->key = {key, 0};
  leaf->member = member;
  leaf->new_leaf = true;
  leaf->leaf_count = 1;
  leaf->parent = parent;
  Node* leaf_raw = leaf.get();
  parent->children.push_back(std::move(leaf));
  leaves_.emplace(workload::raw(member), leaf_raw);

  // A parent that had no members cannot use the wrap-under-old-key
  // optimization (nobody holds its old key) — mark it as newly keyed.
  raise_mark(parent->mark,
             parent->leaf_count == 0 ? Mark::kNew : Mark::kJoin);
  for (Node* cursor = parent; cursor != nullptr; cursor = cursor->parent) {
    ++cursor->leaf_count;
    if (cursor != parent) raise_mark(cursor->mark, Mark::kJoin);
  }

  return {leaf_raw->key.key, leaf_raw->id};
}

void KeyTree::forget_vacancy(Node* node) noexcept {
  vacancies_.erase(std::remove(vacancies_.begin(), vacancies_.end(), node),
                   vacancies_.end());
}

void KeyTree::splice_if_degenerate(Node* node) {
  // Collapse chains left behind by departures so the tree stays compact:
  // an interior node with a single child is replaced by that child; an
  // empty interior node is deleted. The root is special — it anchors the
  // tree-wide key id — so instead of being replaced it absorbs a lone
  // interior child's children.
  while (node != nullptr && node != root_.get() && !node->is_leaf()) {
    Node* parent = node->parent;
    auto self = std::find_if(parent->children.begin(), parent->children.end(),
                             [node](const std::unique_ptr<Node>& c) { return c.get() == node; });
    GK_ENSURE(self != parent->children.end());
    if (node->children.empty()) {
      forget_vacancy(node);
      parent->children.erase(self);
    } else if (node->children.size() == 1) {
      forget_vacancy(node);
      auto orphan = std::move(node->children.front());
      orphan->parent = parent;
      *self = std::move(orphan);
    } else {
      return;
    }
    node = parent;
  }
  if (node == root_.get() && root_->children.size() == 1 &&
      !root_->children.front()->is_leaf()) {
    forget_vacancy(root_->children.front().get());
    auto lone = std::move(root_->children.front());
    root_->children.clear();
    for (auto& grandchild : lone->children) {
      grandchild->parent = root_.get();
      root_->children.push_back(std::move(grandchild));
    }
  }
}

void KeyTree::remove(workload::MemberId member) {
  Node* leaf = locate(member);
  Node* parent = leaf->parent;
  GK_ENSURE(parent != nullptr);

  leaves_.erase(workload::raw(member));
  for (Node* cursor = parent; cursor != nullptr; cursor = cursor->parent) {
    GK_ENSURE(cursor->leaf_count > 0);
    --cursor->leaf_count;
  }
  auto slot = std::find_if(parent->children.begin(), parent->children.end(),
                           [leaf](const std::unique_ptr<Node>& c) { return c.get() == leaf; });
  GK_ENSURE(slot != parent->children.end());
  parent->children.erase(slot);

  mark_path(parent, static_cast<int>(Mark::kLeave));
  // Nodes that keep >= 2 children survive splicing and offer a free slot to
  // this batch's joins; the root always survives.
  if (parent->children.size() >= 2 || parent == root_.get())
    vacancies_.push_back(parent);
  splice_if_degenerate(parent);
}

bool KeyTree::dirty() const noexcept { return root_->is_dirty(); }

void KeyTree::refresh_dirty(Node* node) {
  if (!node->is_dirty()) return;
  for (auto& child : node->children)
    if (!child->is_leaf()) refresh_dirty(child.get());
  node->old_key = node->key.key;
  node->key.key = crypto::Key128::random(rng_);
  ++node->key.version;
}

void KeyTree::emit_wraps(Node* node, RekeyMessage& out) {
  if (!node->is_dirty()) return;

  Rng& rng = rng_;  // nonce source

  if (node->mark == Mark::kJoin) {
    // One wrap under the node's previous key covers every incumbent...
    out.wraps.push_back(crypto::wrap_key(node->old_key, node->id, node->key.version - 1,
                                         node->key.key, node->id, node->key.version, rng));
    // ...plus chain wraps so arriving members can climb from their leaf.
    for (const auto& child : node->children) {
      const bool arriving = child->new_leaf || (!child->is_leaf() && child->is_dirty());
      if (arriving)
        out.wraps.push_back(crypto::wrap_key(child->key.key, child->id, child->key.version,
                                             node->key.key, node->id, node->key.version,
                                             rng));
    }
  } else {
    // kLeave / kNew: the old key is compromised or nonexistent — wrap under
    // every surviving child key.
    for (const auto& child : node->children)
      out.wraps.push_back(crypto::wrap_key(child->key.key, child->id, child->key.version,
                                           node->key.key, node->id, node->key.version, rng));
  }

  for (const auto& child : node->children)
    if (!child->is_leaf()) emit_wraps(child.get(), out);
}

RekeyMessage KeyTree::commit(std::uint64_t epoch) {
  RekeyMessage message;
  message.epoch = epoch;

  refresh_dirty(root_.get());
  emit_wraps(root_.get(), message);

  // Reset marks and new-leaf flags across the dirty region.
  struct Resetter {
    static void run(Node* node) {
      node->mark = Mark::kClean;
      for (auto& child : node->children) {
        child->new_leaf = false;
        if (child->is_dirty()) run(child.get());
      }
    }
  };
  if (root_->is_dirty()) Resetter::run(root_.get());
  vacancies_.clear();  // vacancy reuse is a same-batch optimization only

  message.group_key_id = root_->id;
  message.group_key_version = root_->key.version;
  return message;
}

KeyTree::OrganizationEstimate KeyTree::estimate_message_organizations() const {
  OrganizationEstimate estimate;
  struct Walker {
    static void run(const Node* node, OrganizationEstimate& out) {
      if (!node->is_dirty()) return;
      ++out.key_oriented_messages;
      if (node->mark == Mark::kJoin) {
        // Mirrors emit_wraps: one wrap under the old key plus chain wraps.
        ++out.group_oriented_encryptions;
        for (const auto& child : node->children)
          if (child->new_leaf || (!child->is_leaf() && child->is_dirty()))
            ++out.group_oriented_encryptions;
      } else {
        out.group_oriented_encryptions += node->children.size();
      }
      // Every member below an updated key needs that key in its
      // user-oriented message.
      out.user_oriented_encryptions += node->leaf_count;
      for (const auto& child : node->children)
        if (!child->is_leaf()) run(child.get(), out);
    }
  };
  Walker::run(root_.get(), estimate);
  return estimate;
}

crypto::KeyId KeyTree::root_id() const noexcept { return root_->id; }

const crypto::VersionedKey& KeyTree::root_key() const noexcept { return root_->key; }

const crypto::Key128& KeyTree::individual_key(workload::MemberId member) const {
  return locate(member)->key.key;
}

crypto::KeyId KeyTree::leaf_id(workload::MemberId member) const {
  return locate(member)->id;
}

std::vector<crypto::KeyId> KeyTree::path_ids(workload::MemberId member) const {
  std::vector<crypto::KeyId> path;
  for (const Node* cursor = locate(member)->parent; cursor != nullptr;
       cursor = cursor->parent)
    path.push_back(cursor->id);
  return path;
}

std::vector<KeyTree::PathKey> KeyTree::path_keys(workload::MemberId member) const {
  std::vector<PathKey> path;
  for (const Node* cursor = locate(member)->parent; cursor != nullptr;
       cursor = cursor->parent)
    path.push_back({cursor->id, cursor->key});
  return path;
}

std::vector<workload::MemberId> KeyTree::members() const {
  std::vector<workload::MemberId> out;
  out.reserve(leaves_.size());
  for (const auto& [id, node] : leaves_) out.push_back(workload::make_member_id(id));
  return out;
}

TreeStats KeyTree::stats() const {
  TreeStats stats;
  stats.member_count = leaves_.size();
  double depth_sum = 0.0;

  std::deque<std::pair<const Node*, unsigned>> queue;
  queue.emplace_back(root_.get(), 0);
  while (!queue.empty()) {
    const auto [node, depth] = queue.front();
    queue.pop_front();
    if (node->is_leaf()) {
      stats.height = std::max(stats.height, depth);
      depth_sum += depth;
      continue;
    }
    ++stats.node_count;
    for (const auto& child : node->children) queue.emplace_back(child.get(), depth + 1);
  }
  stats.mean_leaf_depth =
      leaves_.empty() ? 0.0 : depth_sum / static_cast<double>(leaves_.size());
  return stats;
}

}  // namespace gk::lkh
