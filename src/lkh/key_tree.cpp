#include "lkh/key_tree.h"

#include <algorithm>
#include <utility>

#include "common/ensure.h"
#include "common/thread_pool.h"
#include "crypto/keywrap.h"
#include "lkh/key_tree_node.h"

namespace gk::lkh {

namespace {

constexpr std::uint32_t kNil = 0xffffffffu;

void raise_mark(Mark& mark, Mark to) noexcept {
  if (static_cast<std::uint8_t>(to) > static_cast<std::uint8_t>(mark)) mark = to;
}

/// Dirty-node batches below this many wraps are emitted on the calling
/// thread even when a pool is attached: the fan-out overhead would exceed
/// the crypto work.
constexpr std::size_t kParallelWrapThreshold = 64;

}  // namespace

KeyTree::Node& KeyTree::node(std::uint32_t index) noexcept { return nodes_[index]; }
const KeyTree::Node& KeyTree::node(std::uint32_t index) const noexcept {
  return nodes_[index];
}

std::uint32_t KeyTree::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    nodes_[index].in_free_list = false;
    return index;
  }
  GK_ENSURE_MSG(nodes_.size() < Node::kNil, "key tree arena exhausted");
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void KeyTree::release_node(std::uint32_t index) noexcept {
  Node& n = nodes_[index];
  n.children.clear();  // keeps capacity: recycled interiors reallocate nothing
  n.member.reset();
  n.parent = kNil;
  n.slot = 0;
  n.leaf_count = 0;
  n.vacancy_entries = 0;
  n.mark = Mark::kClean;
  n.new_leaf = false;
  n.kek_version = Node::kNoKek;
  n.in_free_list = true;
  free_.push_back(index);
}

KeyTree::KeyTree(unsigned degree, Rng rng, std::shared_ptr<IdAllocator> ids)
    : degree_(degree), rng_(rng), ids_(ids ? std::move(ids) : IdAllocator::create()) {
  GK_ENSURE(degree_ >= 2);
  root_ = alloc_node();
  Node& root = node(root_);
  root.id = ids_->next();
  root.key = {crypto::Key128::random(rng_), 0};
}

KeyTree::~KeyTree() = default;
KeyTree::KeyTree(KeyTree&&) noexcept = default;
KeyTree& KeyTree::operator=(KeyTree&&) noexcept = default;

void KeyTree::reserve(std::size_t expected_members) {
  // Leaves plus roughly N/(d-1) interior nodes, with slack for splits that
  // briefly overshoot.
  const std::size_t interior = expected_members / std::max(1u, degree_ - 1) + 8;
  nodes_.reserve(nodes_.size() + expected_members + interior);
  leaves_.reserve(expected_members);
}

bool KeyTree::contains(workload::MemberId member) const noexcept {
  return leaves_.contains(workload::raw(member));
}

std::uint32_t KeyTree::locate(workload::MemberId member) const {
  const auto it = leaves_.find(workload::raw(member));
  GK_ENSURE_MSG(it != leaves_.end(), "member " << workload::raw(member) << " not in tree");
  return it->second;
}

std::uint32_t KeyTree::choose_insert_parent() {
  // Refill slots vacated by this batch's departures first: their paths are
  // already dirty, so the join is (nearly) free in multicast cost. Stale
  // entries (forgotten or spliced-away nodes) are skipped via the lazy
  // per-node counter.
  while (!vacancies_.empty()) {
    const std::uint32_t candidate = vacancies_.back();
    vacancies_.pop_back();
    Node& c = node(candidate);
    if (c.vacancy_entries == 0) continue;
    --c.vacancy_entries;
    if (c.children.size() < degree_) return candidate;
  }

  std::uint32_t index = root_;
  while (true) {
    if (node(index).children.size() < degree_) return index;
    // Full fan-out: descend into the lightest subtree to keep the tree
    // balanced without global rebuilds.
    std::uint32_t lightest = kNil;
    for (const std::uint32_t child : node(index).children)
      if (lightest == kNil || node(child).leaf_count < node(lightest).leaf_count)
        lightest = child;
    if (!node(lightest).is_leaf()) {
      index = lightest;
      continue;
    }
    // The lightest child is a leaf in a full node: grow downward by
    // splitting the leaf under a fresh interior node (which takes over the
    // leaf's slot).
    const std::uint32_t slot = node(lightest).slot;
    const std::uint32_t interior_idx = alloc_node();  // may invalidate refs
    Node& interior = node(interior_idx);
    interior.id = ids_->next();
    interior.key = {crypto::Key128::random(rng_), 0};
    interior.mark = Mark::kNew;
    interior.parent = index;
    interior.slot = slot;
    interior.leaf_count = 1;
    interior.children.push_back(lightest);
    Node& leaf = node(lightest);
    leaf.parent = interior_idx;
    leaf.slot = 0;
    node(index).children[slot] = interior_idx;
    return interior_idx;
  }
}

void KeyTree::mark_path(std::uint32_t index, Mark mark) noexcept {
  for (std::uint32_t cursor = index; cursor != kNil; cursor = node(cursor).parent)
    raise_mark(node(cursor).mark, mark);
}

KeyTree::JoinGrant KeyTree::insert(workload::MemberId member) {
  return insert_with_key(member, crypto::Key128::random(rng_));
}

KeyTree::JoinGrant KeyTree::insert_with_key(workload::MemberId member,
                                            const crypto::Key128& key) {
  GK_ENSURE_MSG(!contains(member), "member " << workload::raw(member) << " already joined");

  const std::uint32_t parent_idx = choose_insert_parent();
  const std::uint32_t leaf_idx = alloc_node();
  Node& leaf = node(leaf_idx);
  leaf.id = ids_->next();
  leaf.key = {key, 0};
  leaf.member = member;
  leaf.new_leaf = true;
  leaf.leaf_count = 1;
  leaf.parent = parent_idx;
  Node& parent = node(parent_idx);
  leaf.slot = static_cast<std::uint32_t>(parent.children.size());
  parent.children.push_back(leaf_idx);
  leaves_.emplace(workload::raw(member), leaf_idx);

  // A parent that had no members cannot use the wrap-under-old-key
  // optimization (nobody holds its old key) — mark it as newly keyed.
  raise_mark(parent.mark, parent.leaf_count == 0 ? Mark::kNew : Mark::kJoin);
  for (std::uint32_t cursor = parent_idx; cursor != kNil; cursor = node(cursor).parent) {
    ++node(cursor).leaf_count;
    if (cursor != parent_idx) raise_mark(node(cursor).mark, Mark::kJoin);
  }

  return {leaf.key.key, leaf.id};
}

void KeyTree::forget_vacancy(std::uint32_t index) noexcept {
  node(index).vacancy_entries = 0;  // stale vector entries skipped on pop
}

void KeyTree::splice_if_degenerate(std::uint32_t index) {
  // Collapse chains left behind by departures so the tree stays compact:
  // an interior node with a single child is replaced by that child; an
  // empty interior node is deleted. The root is special — it anchors the
  // tree-wide key id — so instead of being replaced it absorbs a lone
  // interior child's children.
  while (index != kNil && index != root_ && !node(index).is_leaf()) {
    const std::uint32_t parent_idx = node(index).parent;
    Node& n = node(index);
    Node& parent = node(parent_idx);
    GK_ENSURE(n.slot < parent.children.size() && parent.children[n.slot] == index);
    if (n.children.empty()) {
      forget_vacancy(index);
      const std::uint32_t last = parent.children.back();
      parent.children[n.slot] = last;
      node(last).slot = n.slot;
      parent.children.pop_back();
      release_node(index);
    } else if (n.children.size() == 1) {
      forget_vacancy(index);
      const std::uint32_t orphan = n.children.front();
      node(orphan).parent = parent_idx;
      node(orphan).slot = n.slot;
      parent.children[n.slot] = orphan;
      release_node(index);
    } else {
      return;
    }
    index = parent_idx;
  }
  if (index == root_ && node(root_).children.size() == 1 &&
      !node(node(root_).children.front()).is_leaf()) {
    const std::uint32_t lone = node(root_).children.front();
    forget_vacancy(lone);
    Node& root = node(root_);
    root.children.clear();
    for (const std::uint32_t grandchild : node(lone).children) {
      node(grandchild).parent = root_;
      node(grandchild).slot = static_cast<std::uint32_t>(root.children.size());
      root.children.push_back(grandchild);
    }
    release_node(lone);
  }
}

void KeyTree::remove(workload::MemberId member) {
  const std::uint32_t leaf_idx = locate(member);
  const std::uint32_t parent_idx = node(leaf_idx).parent;
  GK_ENSURE(parent_idx != kNil);

  leaves_.erase(workload::raw(member));
  for (std::uint32_t cursor = parent_idx; cursor != kNil; cursor = node(cursor).parent) {
    GK_ENSURE(node(cursor).leaf_count > 0);
    --node(cursor).leaf_count;
  }
  // Detach the leaf: swap-pop — child order carries no meaning (wrap
  // emission and lightest-child descent are order-agnostic).
  Node& parent = node(parent_idx);
  const std::uint32_t slot = node(leaf_idx).slot;
  const std::uint32_t last = parent.children.back();
  parent.children[slot] = last;
  node(last).slot = slot;
  parent.children.pop_back();
  release_node(leaf_idx);

  mark_path(parent_idx, Mark::kLeave);
  // Nodes that keep >= 2 children survive splicing and offer a free slot to
  // this batch's joins; the root always survives.
  if (parent.children.size() >= 2 || parent_idx == root_) {
    vacancies_.push_back(parent_idx);
    ++parent.vacancy_entries;
  }
  splice_if_degenerate(parent_idx);
}

bool KeyTree::dirty() const noexcept { return node(root_).is_dirty(); }

void KeyTree::collect_dirty_preorder() {
  // Every dirty node's ancestors are dirty (marks are raised path-to-root),
  // so the dirty region is one connected subtree containing the root and a
  // descent that only follows dirty children covers it.
  dirty_scratch_.clear();
  if (!node(root_).is_dirty()) return;
  std::vector<std::uint32_t> stack{root_};
  while (!stack.empty()) {
    const std::uint32_t index = stack.back();
    stack.pop_back();
    dirty_scratch_.push_back(index);
    const auto& children = node(index).children;
    // Reverse push so children pop in slot order: wraps stay top-down and
    // the message layout is deterministic.
    for (auto it = children.rbegin(); it != children.rend(); ++it)
      if (!node(*it).is_leaf() && node(*it).is_dirty()) stack.push_back(*it);
  }
}

void KeyTree::refresh_dirty() {
  // Key refreshes are independent per node; one deterministic pass over the
  // pre-order list draws from the tree's single RNG stream. (Nonces no
  // longer consume RNG draws — see derive_wrap_nonce — so this is the only
  // stochastic part of a commit.)
  for (const std::uint32_t index : dirty_scratch_) {
    Node& n = node(index);
    n.old_key = n.key.key;
    n.key.key = crypto::Key128::random(rng_);
    ++n.key.version;
  }
}

std::size_t KeyTree::wrap_count(const Node& n) const noexcept {
  if (n.mark == Mark::kJoin) {
    std::size_t wraps = 1;  // new key under the old key, for every incumbent
    for (const std::uint32_t child : n.children) {
      const Node& c = node(child);
      if (c.new_leaf || (!c.is_leaf() && c.is_dirty())) ++wraps;
    }
    return wraps;
  }
  return n.children.size();  // kLeave / kNew: wrap under every child
}

void KeyTree::emit_range_wraps(std::uint64_t epoch, std::size_t begin, std::size_t end,
                               std::span<crypto::WrappedKey> out) noexcept {
  // One wrap to be emitted: node `node_index`'s refreshed key, wrapped under
  // child `child_index`'s key — or under the node's own *old* key when
  // child_index == kNil (the kJoin incumbent wrap). `w` is the node-local
  // wrap ordinal the nonce KDF consumes.
  struct WrapSpec {
    std::uint32_t node_index;
    std::uint32_t child_index;
    std::uint32_t w;
  };

  // Specs accumulate until roughly this many wraps, then one flush derives
  // every nonce, prepares every missing KEK schedule, and wraps the whole
  // chunk through the lane-batched SIMD kernels. Chunking bounds scratch
  // memory; each emission task keeps its own scratch, so parallel commits
  // stay data-race-free.
  constexpr std::size_t kEmitChunk = 512;

  std::vector<WrapSpec> specs;
  specs.reserve(kEmitChunk + degree_ + 1);
  std::vector<crypto::WrapNonceSpec> nonce_specs;
  std::vector<crypto::WrapNonce> nonces;
  std::vector<const crypto::PreparedKek*> kek_ptrs;
  std::vector<crypto::PreparedKek> scratch_keks;
  std::vector<const crypto::Key128*> prep_keys;
  std::vector<crypto::PreparedKek*> prep_dests;
  std::vector<crypto::PreparedKek> prep_tmp;
  std::vector<crypto::PreparedWrapRequest> requests;
  std::size_t out_at = 0;  // next output slot, relative to `out`

  const auto flush = [&]() noexcept {
    const std::size_t count = specs.size();
    if (count == 0) return;

    nonce_specs.resize(count);
    nonces.resize(count);
    for (std::size_t j = 0; j < count; ++j)
      nonce_specs[j] =
          crypto::WrapNonceSpec{epoch, node(specs[j].node_index).id, specs[j].w};
    crypto::derive_wrap_nonces(nonce_specs, nonces.data());

    // Resolve each spec's KEK schedule: the child's cached expansion when the
    // cache is on (refreshing stale entries), otherwise a scratch slot. A
    // child has exactly one parent and old-key wraps are one-per-node, so no
    // KEK appears twice in a chunk and the cache writes below are unique.
    kek_ptrs.resize(count);
    scratch_keks.resize(count);
    prep_keys.clear();
    prep_dests.clear();
    std::size_t scratch_at = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const WrapSpec& s = specs[j];
      if (s.child_index != kNil && wrap_cache_enabled_) {
        Node& c = node(s.child_index);
        if (c.kek_version != c.key.version) {
          prep_keys.push_back(&c.key.key);
          prep_dests.push_back(&c.kek);
          c.kek_version = c.key.version;
        }
        kek_ptrs[j] = &c.kek;
      } else {
        const crypto::Key128* key = s.child_index == kNil
                                        ? &node(s.node_index).old_key
                                        : &node(s.child_index).key.key;
        crypto::PreparedKek* slot = &scratch_keks[scratch_at++];
        prep_keys.push_back(key);
        prep_dests.push_back(slot);
        kek_ptrs[j] = slot;
      }
    }
    if (!prep_keys.empty()) {
      prep_tmp.resize(prep_keys.size());
      crypto::PreparedKek::prepare_many(prep_keys.data(), prep_keys.size(),
                                        prep_tmp.data());
      for (std::size_t k = 0; k < prep_keys.size(); ++k) *prep_dests[k] = prep_tmp[k];
    }

    requests.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      const WrapSpec& s = specs[j];
      const Node& n = node(s.node_index);
      crypto::KeyId wrapping_id = n.id;
      std::uint32_t wrapping_version = n.key.version - 1;
      if (s.child_index != kNil) {
        const Node& c = node(s.child_index);
        wrapping_id = c.id;
        wrapping_version = c.key.version;
      }
      requests[j] =
          crypto::PreparedWrapRequest{kek_ptrs[j], wrapping_id,    wrapping_version,
                                      &n.key.key,  n.id,           n.key.version,
                                      nonces[j]};
    }
    // Specs are generated in output order, so a chunk's slots are contiguous.
    crypto::wrap_keys_batch(std::span<const crypto::PreparedWrapRequest>(requests),
                            out.subspan(out_at, count));
    out_at += count;
    specs.clear();
  };

  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t index = dirty_scratch_[i];
    const Node& n = node(index);
    std::uint32_t w = 0;
    if (n.mark == Mark::kJoin) {
      // One wrap under the node's previous key covers every incumbent...
      specs.push_back(WrapSpec{index, kNil, w++});
      // ...plus chain wraps so arriving members can climb from their leaf.
      for (const std::uint32_t child : n.children) {
        const Node& c = node(child);
        const bool arriving = c.new_leaf || (!c.is_leaf() && c.is_dirty());
        if (arriving) specs.push_back(WrapSpec{index, child, w++});
      }
    } else {
      // kLeave / kNew: the old key is compromised or nonexistent — wrap under
      // every surviving child key.
      for (const std::uint32_t child : n.children)
        specs.push_back(WrapSpec{index, child, w++});
    }
    if (specs.size() >= kEmitChunk) flush();
  }
  flush();
}

void KeyTree::emit_wraps(std::uint64_t epoch, RekeyMessage& out) {
  // Fixed per-node output slots: offsets are prefix sums of the wrap
  // counts, so every emission task writes a disjoint range and the message
  // is byte-identical no matter how the work is scheduled.
  const std::size_t dirty_count = dirty_scratch_.size();
  wrap_offsets_.resize(dirty_count + 1);
  wrap_offsets_[0] = 0;
  for (std::size_t i = 0; i < dirty_count; ++i)
    wrap_offsets_[i + 1] = wrap_offsets_[i] + wrap_count(node(dirty_scratch_[i]));
  const std::size_t total = wrap_offsets_[dirty_count];
  out.wraps.resize(total);

  const auto emit_range = [&](std::size_t begin, std::size_t end) {
    emit_range_wraps(epoch, begin, end,
                     std::span<crypto::WrappedKey>(out.wraps)
                         .subspan(wrap_offsets_[begin],
                                  wrap_offsets_[end] - wrap_offsets_[begin]));
  };

  if (pool_ != nullptr && pool_->size() > 1 && total >= kParallelWrapThreshold) {
    const std::size_t grain =
        std::max<std::size_t>(1, dirty_count / (std::size_t{pool_->size()} * 8));
    pool_->parallel_for(dirty_count, grain, emit_range);
  } else {
    emit_range(0, dirty_count);
  }
}

RekeyMessage KeyTree::commit(std::uint64_t epoch) {
  RekeyMessage message;
  message.epoch = epoch;

  if (node(root_).is_dirty()) {
    collect_dirty_preorder();
    refresh_dirty();
    emit_wraps(epoch, message);

    // Reset marks and new-leaf flags across the dirty region.
    for (const std::uint32_t index : dirty_scratch_) {
      Node& n = node(index);
      n.mark = Mark::kClean;
      for (const std::uint32_t child : n.children) node(child).new_leaf = false;
    }
    dirty_scratch_.clear();
  }
  for (const std::uint32_t index : vacancies_) node(index).vacancy_entries = 0;
  vacancies_.clear();  // vacancy reuse is a same-batch optimization only

  message.group_key_id = node(root_).id;
  message.group_key_version = node(root_).key.version;
  return message;
}

KeyTree::OrganizationEstimate KeyTree::estimate_message_organizations() const {
  OrganizationEstimate estimate;
  if (!node(root_).is_dirty()) return estimate;
  std::vector<std::uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    ++estimate.key_oriented_messages;
    // Mirrors emit_node_wraps' per-node wrap counting.
    estimate.group_oriented_encryptions += wrap_count(n);
    // Every member below an updated key needs that key in its
    // user-oriented message.
    estimate.user_oriented_encryptions += n.leaf_count;
    for (const std::uint32_t child : n.children)
      if (!node(child).is_leaf() && node(child).is_dirty()) stack.push_back(child);
  }
  return estimate;
}

crypto::KeyId KeyTree::root_id() const noexcept { return node(root_).id; }

const crypto::VersionedKey& KeyTree::root_key() const noexcept {
  return node(root_).key;
}

const crypto::Key128& KeyTree::individual_key(workload::MemberId member) const {
  return node(locate(member)).key.key;
}

crypto::KeyId KeyTree::leaf_id(workload::MemberId member) const {
  return node(locate(member)).id;
}

std::vector<crypto::KeyId> KeyTree::path_ids(workload::MemberId member) const {
  std::vector<crypto::KeyId> path;
  for (std::uint32_t cursor = node(locate(member)).parent; cursor != kNil;
       cursor = node(cursor).parent)
    path.push_back(node(cursor).id);
  return path;
}

std::vector<KeyTree::PathKey> KeyTree::path_keys(workload::MemberId member) const {
  std::vector<PathKey> path;
  for (std::uint32_t cursor = node(locate(member)).parent; cursor != kNil;
       cursor = node(cursor).parent)
    path.push_back({node(cursor).id, node(cursor).key});
  return path;
}

std::vector<workload::MemberId> KeyTree::members() const {
  std::vector<workload::MemberId> out;
  out.reserve(leaves_.size());
  for (const auto& [id, index] : leaves_) out.push_back(workload::make_member_id(id));
  return out;
}

void TreeStats::merge(const TreeStats& other) {
  const double combined = static_cast<double>(member_count + other.member_count);
  if (combined > 0.0)
    mean_leaf_depth =
        (mean_leaf_depth * static_cast<double>(member_count) +
         other.mean_leaf_depth * static_cast<double>(other.member_count)) /
        combined;
  member_count += other.member_count;
  node_count += other.node_count;
  height = std::max(height, other.height);
  if (leaf_depth_histogram.size() < other.leaf_depth_histogram.size())
    leaf_depth_histogram.resize(other.leaf_depth_histogram.size(), 0);
  for (std::size_t d = 0; d < other.leaf_depth_histogram.size(); ++d)
    leaf_depth_histogram[d] += other.leaf_depth_histogram[d];
}

TreeStats KeyTree::stats() const {
  TreeStats stats;
  stats.member_count = leaves_.size();
  double depth_sum = 0.0;

  std::vector<std::pair<std::uint32_t, unsigned>> stack;
  stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const Node& n = node(index);
    if (n.is_leaf()) {
      stats.height = std::max(stats.height, depth);
      depth_sum += depth;
      if (stats.leaf_depth_histogram.size() <= depth)
        stats.leaf_depth_histogram.resize(depth + 1, 0);
      ++stats.leaf_depth_histogram[depth];
      continue;
    }
    ++stats.node_count;
    for (const std::uint32_t child : n.children) stack.emplace_back(child, depth + 1);
  }
  stats.mean_leaf_depth =
      leaves_.empty() ? 0.0 : depth_sum / static_cast<double>(leaves_.size());
  return stats;
}

}  // namespace gk::lkh
