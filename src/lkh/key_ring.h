#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "lkh/rekey_message.h"
#include "workload/member.h"

namespace gk::lkh {

/// A member's view of the key hierarchy: its individual key plus every
/// KEK it has successfully unwrapped from rekey messages.
///
/// The ring is deliberately server-structure-agnostic — it knows node ids,
/// not tree shapes — so the same class serves members of plain LKH trees,
/// QT queues, and every composite scheme. process() iterates to a fixed
/// point, so wraps may arrive in any order (multicast packets are not
/// ordered) and chains resolve regardless.
class KeyRing {
 public:
  KeyRing(workload::MemberId owner, crypto::KeyId leaf_id, crypto::Key128 individual_key);

  /// Install a key received over the registration unicast channel.
  void grant(crypto::KeyId id, const crypto::VersionedKey& key);

  /// Attempt to unwrap every wrap; returns how many new/updated keys were
  /// learned. Safe to call with messages that are mostly irrelevant to
  /// this member (failed MACs are simply skipped).
  std::size_t process(const RekeyMessage& message);
  std::size_t process(std::span<const crypto::WrappedKey> wraps);

  [[nodiscard]] std::optional<crypto::VersionedKey> lookup(crypto::KeyId id) const;

  /// True if the ring holds `id` at exactly `version`.
  [[nodiscard]] bool holds(crypto::KeyId id, std::uint32_t version) const;

  /// True if this wrap could advance the ring: we hold the wrapping key at
  /// the right version and do not yet hold the target at its version.
  /// The transport layer uses this as the receiver's "key of interest"
  /// predicate (the sparseness property of rekey payloads, Section 2.2).
  [[nodiscard]] bool wants(const crypto::WrappedKey& wrap) const;

  [[nodiscard]] workload::MemberId owner() const noexcept { return owner_; }
  [[nodiscard]] crypto::KeyId leaf_id() const noexcept { return leaf_id_; }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

 private:
  bool try_unwrap(const crypto::WrappedKey& wrap);

  workload::MemberId owner_;
  crypto::KeyId leaf_id_;
  std::unordered_map<std::uint64_t, crypto::VersionedKey> keys_;
};

}  // namespace gk::lkh
