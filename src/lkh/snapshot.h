#pragma once

#include <cstdint>
#include <vector>

#include "lkh/key_tree.h"

namespace gk::lkh {

/// Key-server persistence: serialize a KeyTree's complete state (structure,
/// node ids, key material, versions, member bindings) so a restarted
/// server resumes the session without rekeying the whole group.
///
/// The snapshot contains raw key material — treat the bytes like a master
/// key (a production deployment would seal them to an HSM or encrypt with
/// a KEK; that wrapping is orthogonal and omitted here).
///
/// Restrictions: a tree with staged (uncommitted) changes cannot be
/// snapshotted — commit first. The RNG state is not captured; the restored
/// tree is seeded freshly, which only affects *future* key generation.
[[nodiscard]] std::vector<std::uint8_t> snapshot_tree(const KeyTree& tree);

/// Rebuild a tree from snapshot bytes. `rng` seeds future key generation.
/// Throws ContractViolation on malformed input.
[[nodiscard]] KeyTree restore_tree(std::span<const std::uint8_t> bytes, Rng rng);

}  // namespace gk::lkh
