#pragma once

#include <cstdint>
#include <vector>

#include "lkh/key_tree.h"

namespace gk::lkh {

/// Key-server persistence: serialize a KeyTree's complete state (structure,
/// node ids, key material, versions, member bindings) so a restarted
/// server resumes the session without rekeying the whole group.
///
/// The snapshot contains raw key material — treat the bytes like a master
/// key (a production deployment would seal them to an HSM or encrypt with
/// a KEK; that wrapping is orthogonal and omitted here).
///
/// Restrictions: a tree with staged (uncommitted) changes cannot be
/// snapshotted — commit first. The RNG state is not captured; the restored
/// tree is seeded freshly, which only affects *future* key generation.
[[nodiscard]] std::vector<std::uint8_t> snapshot_tree(const KeyTree& tree);

/// Rebuild a tree from snapshot bytes. `rng` seeds future key generation.
/// Throws ContractViolation on malformed input.
[[nodiscard]] KeyTree restore_tree(std::span<const std::uint8_t> bytes, Rng rng);

/// Exact-resume variant: additionally captures the tree's RNG stream so
/// *future* key generation is byte-identical to an uninterrupted run. The
/// write-ahead rekey journal (journal.h) builds its checkpoints on this —
/// a crashed server that restores an exact snapshot and replays the
/// journaled membership operations reproduces the interrupted epoch's key
/// material bit for bit.
[[nodiscard]] std::vector<std::uint8_t> snapshot_tree_exact(const KeyTree& tree);

/// Rebuild a tree from exact-snapshot bytes. `ids` lets composite servers
/// re-attach the restored tree to their shared id allocator (pass nullptr
/// for a standalone tree). Throws ContractViolation on malformed input.
[[nodiscard]] KeyTree restore_tree_exact(std::span<const std::uint8_t> bytes,
                                         std::shared_ptr<IdAllocator> ids = nullptr);

}  // namespace gk::lkh
