#include "lkh/rekey_message.h"

#include <iterator>

namespace gk::lkh {

void RekeyMessage::append(RekeyMessage&& other) {
  wraps.insert(wraps.end(), std::make_move_iterator(other.wraps.begin()),
               std::make_move_iterator(other.wraps.end()));
  other.wraps.clear();
}

}  // namespace gk::lkh
