#pragma once

// Internal header: the KeyTree node representation, shared between
// key_tree.cpp and snapshot.cpp. Not part of the public API.

#include <memory>
#include <optional>
#include <vector>

#include "crypto/key.h"
#include "lkh/key_tree.h"
#include "workload/member.h"

namespace gk::lkh {

/// Dirty-mark lattice. Precedence (kLeave > kNew > kJoin) decides which
/// emission rule a node uses at commit:
///  - kJoin:  only joins below — one wrap under the node's *old* key serves
///            every incumbent, plus chain wraps for arriving members.
///  - kNew:   node created this epoch — no incumbent holds an old key, wrap
///            under every child.
///  - kLeave: a departure below — the old key is compromised, wrap under
///            every surviving child.
enum class Mark : std::uint8_t { kClean = 0, kJoin = 1, kNew = 2, kLeave = 3 };

struct KeyTree::Node {
  crypto::KeyId id{};
  crypto::VersionedKey key;
  crypto::Key128 old_key;  // pre-refresh key, valid during commit when mark == kJoin
  Mark mark = Mark::kClean;
  bool new_leaf = false;  // leaf inserted in the current (uncommitted) batch
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;
  std::optional<workload::MemberId> member;
  std::size_t leaf_count = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return member.has_value(); }
  [[nodiscard]] bool is_dirty() const noexcept { return mark != Mark::kClean; }
};

}  // namespace gk::lkh
