#pragma once

// Internal header: the KeyTree node representation, shared between
// key_tree.cpp and snapshot.cpp. Not part of the public API.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "lkh/key_tree.h"
#include "workload/member.h"

namespace gk::lkh {

/// Dirty-mark lattice. Precedence (kLeave > kNew > kJoin) decides which
/// emission rule a node uses at commit:
///  - kJoin:  only joins below — one wrap under the node's *old* key serves
///            every incumbent, plus chain wraps for arriving members.
///  - kNew:   node created this epoch — no incumbent holds an old key, wrap
///            under every child.
///  - kLeave: a departure below — the old key is compromised, wrap under
///            every surviving child.
enum class Mark : std::uint8_t { kClean = 0, kJoin = 1, kNew = 2, kLeave = 3 };

/// Arena node. Nodes live in KeyTree::nodes_ (a flat vector pool) and refer
/// to each other by 32-bit indices, never by pointer — traversals walk the
/// pool cache-linearly, membership churn recycles slots through a free
/// list, and moving a KeyTree moves the pool without any pointer fix-ups.
struct KeyTree::Node {
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// `kek_version` sentinel meaning "no cached expansion".
  static constexpr std::uint32_t kNoKek = 0xffffffffu;

  crypto::KeyId id{};
  crypto::VersionedKey key;
  crypto::Key128 old_key;  // pre-refresh key, valid during commit when mark == kJoin
  std::optional<workload::MemberId> member;

  std::uint32_t parent = kNil;
  std::uint32_t slot = 0;  // this node's index in parent's children array
  std::vector<std::uint32_t> children;
  std::uint32_t leaf_count = 0;

  /// Outstanding entries for this node in KeyTree::vacancies_ (lazy
  /// invalidation: forgetting a vacancy zeroes the counter in O(1) and the
  /// stale vector entries are skipped when popped).
  std::uint32_t vacancy_entries = 0;

  Mark mark = Mark::kClean;
  bool new_leaf = false;  // leaf inserted in the current (uncommitted) batch
  bool in_free_list = false;

  /// Cached subkey expansion of `key.key` for use as a KEK, valid while
  /// `kek_version == key.version`. A node's expansion is only ever touched
  /// by its (unique) parent's emission task, so the cache is data-race-free
  /// under parallel commit.
  crypto::PreparedKek kek;
  std::uint32_t kek_version = kNoKek;

  [[nodiscard]] bool is_leaf() const noexcept { return member.has_value(); }
  [[nodiscard]] bool is_dirty() const noexcept { return mark != Mark::kClean; }
};

}  // namespace gk::lkh
