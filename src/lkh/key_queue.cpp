#include "lkh/key_queue.h"

#include "common/ensure.h"

namespace gk::lkh {

KeyQueue::KeyQueue(Rng rng, std::shared_ptr<IdAllocator> ids)
    : rng_(rng), ids_(ids ? std::move(ids) : IdAllocator::create()) {}

KeyQueue::JoinGrant KeyQueue::insert(workload::MemberId member) {
  GK_ENSURE_MSG(!contains(member),
                "member " << workload::raw(member) << " already in queue");
  Entry entry{crypto::Key128::random(rng_), ids_->next()};
  const JoinGrant grant{entry.key, entry.id};
  members_.emplace(workload::raw(member), entry);
  return grant;
}

void KeyQueue::remove(workload::MemberId member) {
  const auto erased = members_.erase(workload::raw(member));
  GK_ENSURE_MSG(erased == 1, "member " << workload::raw(member) << " not in queue");
}

bool KeyQueue::contains(workload::MemberId member) const noexcept {
  return members_.count(workload::raw(member)) != 0;
}

const KeyQueue::Entry& KeyQueue::entry(workload::MemberId member) const {
  const auto it = members_.find(workload::raw(member));
  GK_ENSURE_MSG(it != members_.end(), "member " << workload::raw(member) << " not in queue");
  return it->second;
}

std::vector<crypto::WrappedKey> KeyQueue::wrap_for_all(const crypto::Key128& payload,
                                                       crypto::KeyId target_id,
                                                       std::uint32_t target_version) {
  std::vector<crypto::WrappedKey> wraps;
  wraps.reserve(members_.size());
  for (const auto& [raw_id, entry] : members_)
    wraps.push_back(crypto::wrap_key(entry.key, entry.id, 0, payload, target_id,
                                     target_version, rng_));
  return wraps;
}

crypto::WrappedKey KeyQueue::wrap_for(workload::MemberId member,
                                      const crypto::Key128& payload,
                                      crypto::KeyId target_id,
                                      std::uint32_t target_version) {
  const Entry& e = entry(member);
  return crypto::wrap_key(e.key, e.id, 0, payload, target_id, target_version, rng_);
}

const crypto::Key128& KeyQueue::individual_key(workload::MemberId member) const {
  return entry(member).key;
}

crypto::KeyId KeyQueue::leaf_id(workload::MemberId member) const {
  return entry(member).id;
}

std::vector<workload::MemberId> KeyQueue::members() const {
  std::vector<workload::MemberId> out;
  out.reserve(members_.size());
  for (const auto& [raw_id, entry] : members_)
    out.push_back(workload::make_member_id(raw_id));
  return out;
}

}  // namespace gk::lkh
