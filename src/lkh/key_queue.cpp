#include "lkh/key_queue.h"

#include <algorithm>
#include <span>

#include "common/ensure.h"
#include "crypto/secure.h"

namespace gk::lkh {

KeyQueue::KeyQueue(Rng rng, std::shared_ptr<IdAllocator> ids)
    : rng_(rng), ids_(ids ? std::move(ids) : IdAllocator::create()) {}

KeyQueue::JoinGrant KeyQueue::insert(workload::MemberId member) {
  GK_ENSURE_MSG(!contains(member),
                "member " << workload::raw(member) << " already in queue");
  Entry entry{crypto::Key128::random(rng_), ids_->next()};
  const JoinGrant grant{entry.key, entry.id};
  members_.emplace(workload::raw(member), entry);
  return grant;
}

void KeyQueue::remove(workload::MemberId member) {
  const auto erased = members_.erase(workload::raw(member));
  GK_ENSURE_MSG(erased == 1, "member " << workload::raw(member) << " not in queue");
}

bool KeyQueue::contains(workload::MemberId member) const noexcept {
  return members_.count(workload::raw(member)) != 0;
}

const KeyQueue::Entry& KeyQueue::entry(workload::MemberId member) const {
  const auto it = members_.find(workload::raw(member));
  GK_ENSURE_MSG(it != members_.end(),
                "member " << workload::raw(member) << " not in queue");
  return it->second;
}

std::vector<crypto::WrappedKey> KeyQueue::wrap_for_all(const crypto::Key128& payload,
                                                       crypto::KeyId target_id,
                                                       std::uint32_t target_version) {
  // Nonces are drawn from the queue's RNG stream in map-iteration order, so
  // the spec pass below must consume rng_ exactly as the old wrap-per-entry
  // loop did; the SIMD batch then reproduces those wraps byte-for-byte.
  std::vector<crypto::KeyedWrapRequest> requests;
  requests.reserve(members_.size());
  for (const auto& [raw_id, entry] : members_)
    requests.push_back(crypto::KeyedWrapRequest{&entry.key, entry.id, 0, &payload,
                                                target_id, target_version,
                                                crypto::random_wrap_nonce(rng_)});
  std::vector<crypto::WrappedKey> wraps(requests.size());
  crypto::wrap_keys_batch(std::span<const crypto::KeyedWrapRequest>(requests),
                          std::span<crypto::WrappedKey>(wraps));
  return wraps;
}

crypto::WrappedKey KeyQueue::wrap_for(workload::MemberId member,
                                      const crypto::Key128& payload,
                                      crypto::KeyId target_id,
                                      std::uint32_t target_version) {
  const Entry& e = entry(member);
  return crypto::wrap_key(e.key, e.id, 0, payload, target_id, target_version, rng_);
}

const crypto::Key128& KeyQueue::individual_key(workload::MemberId member) const {
  return entry(member).key;
}

crypto::KeyId KeyQueue::leaf_id(workload::MemberId member) const {
  return entry(member).id;
}

std::vector<workload::MemberId> KeyQueue::members() const {
  std::vector<workload::MemberId> out;
  out.reserve(members_.size());
  for (const auto& [raw_id, entry] : members_)
    out.push_back(workload::make_member_id(raw_id));
  return out;
}

void KeyQueue::save_state(common::ByteWriter& out) const {
  for (const auto word : rng_.save_state()) out.u64(word);
  // Entries sorted by member id so the serialized bytes are a pure function
  // of the queue's logical contents, not of hash-map history.
  std::vector<std::uint64_t> order;
  order.reserve(members_.size());
  for (const auto& [raw_id, entry] : members_) order.push_back(raw_id);
  std::sort(order.begin(), order.end());
  out.u64(order.size());
  for (const auto raw_id : order) {
    const auto& entry = members_.at(raw_id);
    out.u64(raw_id);
    out.u64(crypto::raw(entry.id));
    out.bytes(entry.key.bytes());
  }
}

void KeyQueue::restore_state(common::ByteReader& in) {
  Rng::State state;
  for (auto& word : state) word = in.u64();
  rng_.restore_state(state);
  members_.clear();
  const auto count = in.u64();
  std::uint64_t max_id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    Entry entry;
    entry.id = crypto::make_key_id(in.u64());
    max_id = std::max(max_id, crypto::raw(entry.id));
    crypto::WipedBytes<crypto::Key128::kSize> raw;
    const auto view = in.bytes(raw.size());
    std::copy(view.begin(), view.end(), raw.array().begin());
    entry.key = crypto::Key128(raw.array());
    GK_ENSURE_MSG(members_.emplace(raw_id, entry).second,
                  "queue state corrupt: duplicate member");
  }
  ids_->advance_past(max_id);
}

}  // namespace gk::lkh
