#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "lkh/ids.h"
#include "workload/member.h"

namespace gk::lkh {

/// The QT-scheme's S-partition: a flat "queue" of members who hold only
/// their individual key and the session group key (Section 3.2).
///
/// Joining costs one key (the group key); the price is paid on departure,
/// when a replacement group key must be wrapped individually for every
/// queue resident. The two-partition server trades these against each
/// other based on how many short-lived members it expects.
class KeyQueue {
 public:
  explicit KeyQueue(Rng rng, std::shared_ptr<IdAllocator> ids = nullptr);

  struct JoinGrant {
    crypto::Key128 individual_key;
    crypto::KeyId leaf_id{};
  };
  /// Register a member. No multicast cost; the grant travels on the
  /// registration unicast channel.
  JoinGrant insert(workload::MemberId member);

  /// Deregister a member (departure or migration to the L-partition).
  void remove(workload::MemberId member);

  /// Wrap `payload` under every resident's individual key — the queue's
  /// whole-partition rekey primitive (cost == size()).
  [[nodiscard]] std::vector<crypto::WrappedKey> wrap_for_all(
      const crypto::Key128& payload, crypto::KeyId target_id,
      std::uint32_t target_version);

  /// Wrap `payload` for a single resident (cost 1).
  [[nodiscard]] crypto::WrappedKey wrap_for(workload::MemberId member,
                                            const crypto::Key128& payload,
                                            crypto::KeyId target_id,
                                            std::uint32_t target_version);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] bool contains(workload::MemberId member) const noexcept;
  [[nodiscard]] const crypto::Key128& individual_key(workload::MemberId member) const;
  [[nodiscard]] crypto::KeyId leaf_id(workload::MemberId member) const;
  [[nodiscard]] std::vector<workload::MemberId> members() const;

  /// Exact persistence (rekey journal checkpoints): entries plus the RNG
  /// stream, so future key generation and wrap nonces replay identically.
  void save_state(common::ByteWriter& out) const;
  void restore_state(common::ByteReader& in);

 private:
  struct Entry {
    crypto::Key128 key;
    crypto::KeyId id{};
  };
  const Entry& entry(workload::MemberId member) const;

  Rng rng_;
  std::shared_ptr<IdAllocator> ids_;
  std::unordered_map<std::uint64_t, Entry> members_;
};

}  // namespace gk::lkh
