#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keywrap.h"

namespace gk::lkh {

/// The output of one (batched) rekey operation: the ordered list of wrapped
/// keys the server must deliver. `wraps.size()` is exactly the paper's cost
/// metric, "number of encrypted keys".
///
/// Wraps are emitted top-down (root first); a receiver that processes them
/// in order can decrypt each wrap as soon as it appears, but the member-side
/// KeyRing also handles arbitrary order (packets arrive shuffled) by
/// iterating to a fixed point.
struct RekeyMessage {
  /// Rekey epoch this message belongs to.
  std::uint64_t epoch = 0;
  /// Node id of the session data-encryption key after this rekey.
  crypto::KeyId group_key_id{};
  /// Version of the group key after this rekey.
  std::uint32_t group_key_version = 0;
  std::vector<crypto::WrappedKey> wraps;

  [[nodiscard]] std::size_t cost() const noexcept { return wraps.size(); }

  /// Concatenate another message's wraps (composite schemes emit per-tree
  /// messages and merge them).
  void append(RekeyMessage&& other);
};

}  // namespace gk::lkh
