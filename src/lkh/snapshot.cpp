#include "lkh/snapshot.h"

#include <algorithm>
#include <cstring>

#include "common/ensure.h"

// The snapshot format is a pre-order walk of the tree:
//
//   magic "GKT1" | u32 degree | nodes...
//   node := u8 kind ('L' leaf | 'I' interior)
//           u64 id | u32 key-version | 16-byte key
//           leaf:     u64 member id
//           interior: u32 child count | children...
//
// All integers little-endian.

#include "lkh/key_tree_node.h"

namespace gk::lkh {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    GK_ENSURE_MSG(offset_ + 1 <= bytes_.size(), "snapshot truncated");
    return bytes_[offset_++];
  }
  std::uint32_t u32() {
    GK_ENSURE_MSG(offset_ + 4 <= bytes_.size(), "snapshot truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[offset_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    GK_ENSURE_MSG(offset_ + 8 <= bytes_.size(), "snapshot truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[offset_++]} << (8 * i);
    return v;
  }
  crypto::Key128 key() {
    GK_ENSURE_MSG(offset_ + crypto::Key128::kSize <= bytes_.size(),
                  "snapshot truncated");
    std::array<std::uint8_t, crypto::Key128::kSize> raw;
    std::memcpy(raw.data(), bytes_.data() + offset_, raw.size());
    offset_ += raw.size();
    return crypto::Key128(raw);
  }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

/// Friend of KeyTree: the recursive (de)serializers over private nodes.
struct SnapshotAccess {
  static void write_node(std::vector<std::uint8_t>& out, const KeyTree::Node& node) {
    out.push_back(node.is_leaf() ? 'L' : 'I');
    put_u64(out, crypto::raw(node.id));
    put_u32(out, node.key.version);
    out.insert(out.end(), node.key.key.bytes().begin(), node.key.key.bytes().end());
    if (node.is_leaf()) {
      put_u64(out, workload::raw(*node.member));
      return;
    }
    put_u32(out, static_cast<std::uint32_t>(node.children.size()));
    for (const auto& child : node.children) write_node(out, *child);
  }

  struct RestoreContext {
    std::unordered_map<std::uint64_t, KeyTree::Node*>* leaves;
    std::uint64_t max_id = 0;
    unsigned degree = 0;
  };

  static std::unique_ptr<KeyTree::Node> read_node(Reader& in, KeyTree::Node* parent,
                                                  RestoreContext& ctx, unsigned depth) {
    GK_ENSURE_MSG(depth < 64, "snapshot nesting too deep");
    auto node = std::make_unique<KeyTree::Node>();
    const auto kind = in.u8();
    GK_ENSURE_MSG(kind == 'L' || kind == 'I', "snapshot corrupt: bad node kind");
    node->parent = parent;
    node->id = crypto::make_key_id(in.u64());
    ctx.max_id = std::max(ctx.max_id, crypto::raw(node->id));
    node->key.version = in.u32();
    node->key.key = in.key();

    if (kind == 'L') {
      node->member = workload::make_member_id(in.u64());
      node->leaf_count = 1;
      GK_ENSURE_MSG(
          ctx.leaves->emplace(workload::raw(*node->member), node.get()).second,
          "snapshot corrupt: duplicate member");
      return node;
    }
    const auto child_count = in.u32();
    GK_ENSURE_MSG(child_count <= ctx.degree, "snapshot corrupt: fan-out exceeds degree");
    node->leaf_count = 0;
    for (std::uint32_t c = 0; c < child_count; ++c) {
      auto child = read_node(in, node.get(), ctx, depth + 1);
      node->leaf_count += child->leaf_count;
      node->children.push_back(std::move(child));
    }
    return node;
  }
};

std::vector<std::uint8_t> snapshot_tree(const KeyTree& tree) {
  GK_ENSURE_MSG(!tree.dirty(), "commit staged changes before snapshotting");
  std::vector<std::uint8_t> out;
  out.reserve(64);
  out.push_back('G');
  out.push_back('K');
  out.push_back('T');
  out.push_back('1');
  put_u32(out, tree.degree_);
  SnapshotAccess::write_node(out, *tree.root_);
  return out;
}

KeyTree restore_tree(std::span<const std::uint8_t> bytes, Rng rng) {
  Reader in(bytes);
  GK_ENSURE_MSG(in.u8() == 'G' && in.u8() == 'K' && in.u8() == 'T' && in.u8() == '1',
                "not a key tree snapshot");
  const auto degree = in.u32();
  GK_ENSURE_MSG(degree >= 2 && degree <= 1024, "snapshot corrupt: bad degree");

  KeyTree tree(degree, rng);
  tree.leaves_.clear();
  SnapshotAccess::RestoreContext ctx{&tree.leaves_, 0, degree};
  tree.root_ = SnapshotAccess::read_node(in, nullptr, ctx, 0);
  GK_ENSURE_MSG(in.exhausted(), "snapshot has trailing bytes");
  GK_ENSURE_MSG(!tree.root_->is_leaf(), "snapshot corrupt: leaf root");
  tree.ids_->advance_past(ctx.max_id);
  return tree;
}

}  // namespace gk::lkh
