#include "lkh/snapshot.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/ensure.h"
#include "crypto/secure.h"

// Two snapshot formats share one node encoding (a pre-order walk):
//
//   "GKT1" | u32 degree | nodes...                       (structure only)
//   "GKT2" | u32 degree | 4 x u64 rng state | nodes...   (exact resume)
//   node := u8 kind ('L' leaf | 'I' interior)
//           u64 id | u32 key-version | 16-byte key
//           leaf:     u64 member id
//           interior: u32 child count | children...
//
// All integers little-endian (common/bytes.h).

#include "lkh/key_tree_node.h"

namespace gk::lkh {

/// Friend of KeyTree: the recursive (de)serializers over private arena
/// nodes. The wire format is index-free (a pre-order walk), so arena slot
/// numbers never leak into snapshots — a restored tree may pack the same
/// logical tree into different slots.
struct SnapshotAccess {
  static void write_node(common::ByteWriter& out, const KeyTree& tree,
                         std::uint32_t index) {
    const KeyTree::Node& node = tree.node(index);
    out.u8(node.is_leaf() ? 'L' : 'I');
    out.u64(crypto::raw(node.id));
    out.u32(node.key.version);
    out.bytes(node.key.key.bytes());
    if (node.is_leaf()) {
      out.u64(workload::raw(*node.member));
      return;
    }
    out.u32(static_cast<std::uint32_t>(node.children.size()));
    for (const std::uint32_t child : node.children) write_node(out, tree, child);
  }

  struct RestoreContext {
    std::uint64_t max_id = 0;
    unsigned degree = 0;
  };

  static crypto::Key128 read_key(common::ByteReader& in) {
    crypto::WipedBytes<crypto::Key128::kSize> raw;
    const auto view = in.bytes(raw.size());
    std::copy(view.begin(), view.end(), raw.array().begin());
    return crypto::Key128(raw.array());
  }

  static std::uint32_t read_node(common::ByteReader& in, KeyTree& tree,
                                 std::uint32_t parent, std::uint32_t slot,
                                 RestoreContext& ctx, unsigned depth) {
    GK_ENSURE_MSG(depth < 64, "snapshot nesting too deep");
    const auto kind = in.u8();
    GK_ENSURE_MSG(kind == 'L' || kind == 'I', "snapshot corrupt: bad node kind");
    const std::uint32_t index = tree.alloc_node();
    {
      KeyTree::Node& node = tree.node(index);
      node.parent = parent;
      node.slot = slot;
      node.id = crypto::make_key_id(in.u64());
      ctx.max_id = std::max(ctx.max_id, crypto::raw(node.id));
      node.key.version = in.u32();
      node.key.key = read_key(in);
    }

    if (kind == 'L') {
      KeyTree::Node& node = tree.node(index);
      node.member = workload::make_member_id(in.u64());
      node.leaf_count = 1;
      GK_ENSURE_MSG(tree.leaves_.emplace(workload::raw(*node.member), index).second,
                    "snapshot corrupt: duplicate member");
      return index;
    }
    const auto child_count = in.u32();
    GK_ENSURE_MSG(child_count <= ctx.degree, "snapshot corrupt: fan-out exceeds degree");
    tree.node(index).children.reserve(child_count);
    std::uint32_t leaf_count = 0;
    for (std::uint32_t c = 0; c < child_count; ++c) {
      // alloc_node in the recursive call may grow the arena — re-resolve the
      // parent node after every child instead of holding a reference.
      const std::uint32_t child = read_node(in, tree, index, c, ctx, depth + 1);
      leaf_count += tree.node(child).leaf_count;
      tree.node(index).children.push_back(child);
    }
    tree.node(index).leaf_count = leaf_count;
    return index;
  }

  static void write(common::ByteWriter& out, const KeyTree& tree, bool exact) {
    GK_ENSURE_MSG(!tree.dirty(), "commit staged changes before snapshotting");
    out.u8('G');
    out.u8('K');
    out.u8('T');
    out.u8(exact ? '2' : '1');
    out.u32(tree.degree_);
    if (exact)
      for (const auto word : tree.rng_.save_state()) out.u64(word);
    write_node(out, tree, tree.root_);
  }

  static KeyTree read(common::ByteReader& in, bool exact,
                      std::shared_ptr<IdAllocator> ids, Rng rng) {
    GK_ENSURE_MSG(in.u8() == 'G' && in.u8() == 'K' && in.u8() == 'T' &&
                      in.u8() == (exact ? '2' : '1'),
                  "not a key tree snapshot");
    const auto degree = in.u32();
    GK_ENSURE_MSG(degree >= 2 && degree <= 1024, "snapshot corrupt: bad degree");
    if (exact) {
      Rng::State state;
      for (auto& word : state) word = in.u64();
      rng.restore_state(state);
    }

    KeyTree tree(degree, rng, std::move(ids));
    tree.rng_ = rng;  // the constructor consumed a draw for its placeholder root
    tree.nodes_.clear();  // drop the placeholder root; rebuild the arena
    tree.free_.clear();
    tree.leaves_.clear();
    RestoreContext ctx{0, degree};
    tree.root_ = read_node(in, tree, KeyTree::Node::kNil, 0, ctx, 0);
    GK_ENSURE_MSG(in.exhausted(), "snapshot has trailing bytes");
    GK_ENSURE_MSG(!tree.node(tree.root_).is_leaf(), "snapshot corrupt: leaf root");
    tree.ids_->advance_past(ctx.max_id);
    return tree;
  }
};

std::vector<std::uint8_t> snapshot_tree(const KeyTree& tree) {
  common::ByteWriter out;
  SnapshotAccess::write(out, tree, /*exact=*/false);
  return out.take();
}

KeyTree restore_tree(std::span<const std::uint8_t> bytes, Rng rng) {
  common::ByteReader in(bytes);
  return SnapshotAccess::read(in, /*exact=*/false, nullptr, rng);
}

std::vector<std::uint8_t> snapshot_tree_exact(const KeyTree& tree) {
  common::ByteWriter out;
  SnapshotAccess::write(out, tree, /*exact=*/true);
  return out.take();
}

KeyTree restore_tree_exact(std::span<const std::uint8_t> bytes,
                           std::shared_ptr<IdAllocator> ids) {
  common::ByteReader in(bytes);
  return SnapshotAccess::read(in, /*exact=*/true, std::move(ids), Rng(0));
}

}  // namespace gk::lkh
