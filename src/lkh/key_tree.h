#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/key.h"
#include "lkh/ids.h"
#include "lkh/rekey_message.h"
#include "workload/member.h"

namespace gk::common {
class ThreadPool;
}

namespace gk::lkh {

enum class Mark : std::uint8_t;

/// Per-level occupancy snapshot, for balance diagnostics and tests.
struct TreeStats {
  std::size_t member_count = 0;
  unsigned height = 0;          // edges from root to deepest leaf
  std::size_t node_count = 0;   // internal nodes incl. root (leaves excluded)
  double mean_leaf_depth = 0.0;
  /// leaf_depth_histogram[d] = number of leaves at depth d (size height+1;
  /// empty for an empty tree). Throughput benches report this to show the
  /// arena keeps trees balanced at scale.
  std::vector<std::size_t> leaf_depth_histogram;

  /// Fold another tree's stats into this one (multi-tree schemes: QT/TT/PT
  /// partitions, loss bins). Counts sum, height takes the max, mean leaf
  /// depth is re-weighted by member count, histograms add element-wise.
  void merge(const TreeStats& other);
};

/// A logical key hierarchy (LKH) maintained by the key server
/// [WGL98, WHA98].
///
/// The tree's root key is the key-encryption key shared by everyone in the
/// tree; interior nodes are auxiliary KEKs; each leaf is one member's
/// individual key. Membership changes are *staged* with insert()/remove()
/// and applied by commit(), which refreshes every compromised or extended
/// path and returns the batched, group-oriented rekey message
/// (Section 2.1.1 of the paper). Staging joins and leaves separately lets
/// composite schemes (two-partition, loss-homogenized) batch migrations
/// into the same commit.
///
/// Storage: nodes live in a flat arena (vector pool, 32-bit indices, free
/// list) — no per-node heap allocation, no pointer-chasing traversals.
/// Wrap nonces are derived from (epoch, node id, wrap index) rather than
/// the tree's RNG stream, so emission is order-independent; commit() fans
/// wrap emission across an optional thread pool (set_executor) and the
/// output is byte-identical to the single-threaded run.
///
/// Cost model: `commit().cost()` counts exactly the encrypted keys a real
/// server would multicast, which is the unit used throughout the paper's
/// evaluation.
class KeyTree {
 public:
  /// `degree` is the tree fan-out d >= 2. Trees participating in one
  /// session share `ids` so wrapped keys never collide across trees.
  KeyTree(unsigned degree, Rng rng, std::shared_ptr<IdAllocator> ids = nullptr);
  ~KeyTree();

  KeyTree(KeyTree&&) noexcept;
  KeyTree& operator=(KeyTree&&) noexcept;
  KeyTree(const KeyTree&) = delete;
  KeyTree& operator=(const KeyTree&) = delete;

  /// Stage a join. Returns the member's individual key and its leaf node id
  /// (delivered over the registration unicast channel in a real system).
  struct JoinGrant {
    crypto::Key128 individual_key;
    crypto::KeyId leaf_id{};
  };
  JoinGrant insert(workload::MemberId member);

  /// Stage a join reusing an individual key the member already shares with
  /// the server (partition migration: the member keeps its registration
  /// key, so no new unicast is needed and it can immediately unwrap its
  /// new path from the multicast rekey message).
  JoinGrant insert_with_key(workload::MemberId member, const crypto::Key128& key);

  /// Stage a departure. The member must be present and not already removed.
  void remove(workload::MemberId member);

  /// Refresh every key an inserted member must learn or a removed member
  /// knew, and emit the rekey message. Join-only path segments use the
  /// "new key wrapped under old key" optimization (one wrap serves all
  /// incumbents); any segment above a departure wraps per child.
  [[nodiscard]] RekeyMessage commit(std::uint64_t epoch);

  /// True if any membership change is staged but not committed.
  [[nodiscard]] bool dirty() const noexcept;

  /// Pre-size the arena and the member index for an expected group size
  /// (bulk build paths: initial provisioning, trace replay, benches).
  void reserve(std::size_t expected_members);

  /// Fan commit()'s wrap emission across `pool` (nullptr restores the
  /// sequential path). The emitted message is byte-identical either way —
  /// every wrap's bytes are a pure function of (epoch, node id, wrap
  /// index) and key material fixed before emission starts.
  void set_executor(common::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Disable / re-enable the per-node cached KEK expansion (benchmarks use
  /// this to reproduce the seed's one-expansion-per-wrap cost).
  void set_wrap_cache(bool enabled) noexcept { wrap_cache_enabled_ = enabled; }

  /// Wong et al [WGL98] define three ways to cut one rekey operation into
  /// messages; commit() natively emits the group-oriented form (one
  /// multicast message, each updated key encrypted once per child). This
  /// estimates, for the *currently staged* batch, what the alternatives
  /// would cost the server — the classic trade-off the paper builds on:
  /// user-oriented messages are friendly to receivers but cost the server
  /// an encryption per (member x updated key on its path).
  struct OrganizationEstimate {
    /// Group-oriented: encryptions commit() will emit (= messages: 1).
    std::size_t group_oriented_encryptions = 0;
    /// Key-oriented: same per-child encryptions, but one message per
    /// updated key.
    std::size_t key_oriented_messages = 0;
    /// User-oriented: sum over members of updated keys on their path.
    std::size_t user_oriented_encryptions = 0;
  };
  [[nodiscard]] OrganizationEstimate estimate_message_organizations() const;

  [[nodiscard]] std::size_t size() const noexcept { return leaves_.size(); }
  [[nodiscard]] bool empty() const noexcept { return leaves_.empty(); }
  [[nodiscard]] unsigned degree() const noexcept { return degree_; }
  /// The id allocator this tree draws from (shared across a session's
  /// trees). Durable servers persist its watermark so replayed id
  /// allocation matches the crash-free run exactly.
  [[nodiscard]] const std::shared_ptr<IdAllocator>& ids() const noexcept { return ids_; }
  [[nodiscard]] bool contains(workload::MemberId member) const noexcept;

  /// Root (tree-wide) key; in a standalone deployment this is the group
  /// data-encryption key, in a composite scheme it is the partition KEK.
  [[nodiscard]] crypto::KeyId root_id() const noexcept;
  [[nodiscard]] const crypto::VersionedKey& root_key() const noexcept;

  /// The member's individual key (server-side record; used by composite
  /// schemes for unicast-style deliveries in the QT queue and for tests).
  [[nodiscard]] const crypto::Key128& individual_key(workload::MemberId member) const;
  [[nodiscard]] crypto::KeyId leaf_id(workload::MemberId member) const;

  /// Node ids on the member's current path, leaf first, root last
  /// (excluding the leaf's own id). Used by the transport layer to compute
  /// per-receiver keys-of-interest.
  [[nodiscard]] std::vector<crypto::KeyId> path_ids(workload::MemberId member) const;

  /// The member's current path with key material (same order as path_ids).
  /// Server-side source for resync catch-up bundles: a desynchronized
  /// member re-learns exactly its leaf-to-root keys instead of forcing a
  /// group-wide rekey.
  struct PathKey {
    crypto::KeyId id{};
    crypto::VersionedKey key;
  };
  [[nodiscard]] std::vector<PathKey> path_keys(workload::MemberId member) const;

  /// All members currently in the tree (unspecified order).
  [[nodiscard]] std::vector<workload::MemberId> members() const;

  [[nodiscard]] TreeStats stats() const;

 private:
  struct Node;

  // Persistence (snapshot.h) reconstructs private state directly.
  friend std::vector<std::uint8_t> snapshot_tree(const KeyTree& tree);
  friend KeyTree restore_tree(std::span<const std::uint8_t> bytes, Rng rng);
  friend struct SnapshotAccess;

  [[nodiscard]] Node& node(std::uint32_t index) noexcept;
  [[nodiscard]] const Node& node(std::uint32_t index) const noexcept;
  [[nodiscard]] std::uint32_t alloc_node();
  void release_node(std::uint32_t index) noexcept;

  [[nodiscard]] std::uint32_t locate(workload::MemberId member) const;
  [[nodiscard]] std::uint32_t choose_insert_parent();
  void mark_path(std::uint32_t index, Mark mark) noexcept;
  void refresh_dirty();
  void emit_wraps(std::uint64_t epoch, RekeyMessage& out);
  void emit_range_wraps(std::uint64_t epoch, std::size_t begin, std::size_t end,
                        std::span<crypto::WrappedKey> out) noexcept;
  [[nodiscard]] std::size_t wrap_count(const Node& n) const noexcept;
  void splice_if_degenerate(std::uint32_t index);
  void forget_vacancy(std::uint32_t index) noexcept;
  void collect_dirty_preorder();

  unsigned degree_;
  Rng rng_;
  std::shared_ptr<IdAllocator> ids_;

  std::vector<Node> nodes_;          // the arena
  std::vector<std::uint32_t> free_;  // recycled arena slots
  std::uint32_t root_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> leaves_;  // raw(MemberId) -> leaf
  /// Interior nodes that lost a leaf in the current batch. Joins staged in
  /// the same epoch re-fill these slots first (Yang et al's batch marking
  /// convention): the path is already marked for refresh by the departure,
  /// so the join adds no extra dirty path. Entries are invalidated lazily
  /// via Node::vacancy_entries.
  std::vector<std::uint32_t> vacancies_;
  /// Scratch: dirty nodes in pre-order, rebuilt by each commit.
  std::vector<std::uint32_t> dirty_scratch_;
  std::vector<std::size_t> wrap_offsets_;

  common::ThreadPool* pool_ = nullptr;
  bool wrap_cache_enabled_ = true;
};

}  // namespace gk::lkh
