#include "losshomo/multi_tree_server.h"

#include "common/ensure.h"

namespace gk::losshomo {

MultiTreeServer::MultiTreeServer(unsigned degree, std::vector<double> bin_upper_bounds,
                                 Placement placement, Rng rng)
    : bounds_(std::move(bin_upper_bounds)),
      placement_(placement),
      rng_(rng.fork()),
      ids_(lkh::IdAllocator::create()),
      dek_(rng.fork(), ids_),
      arrivals_(bounds_.size(), false) {
  GK_ENSURE(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) GK_ENSURE(bounds_[i] > bounds_[i - 1]);
  trees_.reserve(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    trees_.emplace_back(degree, rng.fork(), ids_);
}

std::size_t MultiTreeServer::place(double reported_loss) {
  if (placement_ == Placement::kRandom) return rng_.uniform_u64(trees_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (reported_loss <= bounds_[i]) return i;
  return bounds_.size() - 1;  // above every bound: the lossiest tree
}

partition::Registration MultiTreeServer::join(workload::MemberId member,
                                              double reported_loss) {
  GK_ENSURE_MSG(records_.count(workload::raw(member)) == 0,
                "member " << workload::raw(member) << " already joined");
  const std::size_t tree = place(reported_loss);
  const auto grant = trees_[tree].insert(member);
  records_.emplace(workload::raw(member), tree);
  arrivals_[tree] = true;
  ++staged_joins_;
  return {grant.individual_key, grant.leaf_id};
}

void MultiTreeServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  trees_[it->second].remove(member);
  records_.erase(it);
  ++staged_leaves_;
}

MultiTreeServer::Output MultiTreeServer::end_epoch() {
  Output out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.leaves = staged_leaves_;
  out.per_tree_cost.reserve(trees_.size());

  for (auto& tree : trees_) {
    auto message = tree.commit(epoch_);
    out.per_tree_cost.push_back(message.cost());
    out.message.append(std::move(message));
  }

  if (staged_leaves_ > 0) {
    dek_.rotate();
    for (auto& tree : trees_)
      if (!tree.empty())
        dek_.wrap_under(tree.root_key().key, tree.root_id(), tree.root_key().version,
                        out.message);
  } else if (staged_joins_ > 0) {
    dek_.rotate();
    dek_.wrap_under_previous(out.message);
    for (std::size_t t = 0; t < trees_.size(); ++t)
      if (arrivals_[t] && !trees_[t].empty())
        dek_.wrap_under(trees_[t].root_key().key, trees_[t].root_id(),
                        trees_[t].root_key().version, out.message);
  }
  dek_.stamp(out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_leaves_ = 0;
  arrivals_.assign(trees_.size(), false);
  return out;
}

std::size_t MultiTreeServer::tree_size(std::size_t tree) const {
  GK_ENSURE(tree < trees_.size());
  return trees_[tree].size();
}

std::size_t MultiTreeServer::tree_of(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return it->second;
}

std::vector<crypto::KeyId> MultiTreeServer::member_path(
    workload::MemberId member) const {
  auto path = trees_[tree_of(member)].path_ids(member);
  path.push_back(dek_.id());
  return path;
}

}  // namespace gk::losshomo
