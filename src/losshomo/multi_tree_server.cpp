#include "losshomo/multi_tree_server.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::losshomo {

MultiTreeServer::MultiTreeServer(unsigned degree, std::vector<double> bin_upper_bounds,
                                 Placement placement, Rng rng)
    : bounds_(std::move(bin_upper_bounds)),
      placement_(placement),
      rng_(rng.fork()),
      ids_(lkh::IdAllocator::create()),
      dek_(rng.fork(), ids_),
      arrivals_(bounds_.size(), false) {
  GK_ENSURE(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) GK_ENSURE(bounds_[i] > bounds_[i - 1]);
  trees_.reserve(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    trees_.emplace_back(degree, rng.fork(), ids_);
}

std::size_t MultiTreeServer::place(double reported_loss) {
  if (placement_ == Placement::kRandom) return rng_.uniform_u64(trees_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (reported_loss <= bounds_[i]) return i;
  return bounds_.size() - 1;  // above every bound: the lossiest tree
}

partition::Registration MultiTreeServer::join(workload::MemberId member,
                                              double reported_loss) {
  GK_ENSURE_MSG(records_.count(workload::raw(member)) == 0,
                "member " << workload::raw(member) << " already joined");
  const std::size_t tree = place(reported_loss);
  const auto grant = trees_[tree].insert(member);
  records_.emplace(workload::raw(member), tree);
  arrivals_[tree] = true;
  ++staged_joins_;
  return {grant.individual_key, grant.leaf_id};
}

void MultiTreeServer::leave(workload::MemberId member) {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  trees_[it->second].remove(member);
  records_.erase(it);
  ++staged_leaves_;
}

MultiTreeServer::Output MultiTreeServer::end_epoch() {
  Output out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.leaves = staged_leaves_;
  out.per_tree_cost.reserve(trees_.size());

  for (auto& tree : trees_) {
    auto message = tree.commit(epoch_);
    out.per_tree_cost.push_back(message.cost());
    out.message.append(std::move(message));
  }

  if (staged_leaves_ > 0) {
    dek_.rotate();
    for (auto& tree : trees_)
      if (!tree.empty())
        dek_.wrap_under(tree.root_key().key, tree.root_id(), tree.root_key().version,
                        out.message);
  } else if (staged_joins_ > 0) {
    dek_.rotate();
    dek_.wrap_under_previous(out.message);
    for (std::size_t t = 0; t < trees_.size(); ++t)
      if (arrivals_[t] && !trees_[t].empty())
        dek_.wrap_under(trees_[t].root_key().key, trees_[t].root_id(),
                        trees_[t].root_key().version, out.message);
  }
  dek_.stamp(out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_leaves_ = 0;
  arrivals_.assign(trees_.size(), false);
  return out;
}

std::size_t MultiTreeServer::tree_size(std::size_t tree) const {
  GK_ENSURE(tree < trees_.size());
  return trees_[tree].size();
}

std::size_t MultiTreeServer::tree_of(workload::MemberId member) const {
  const auto it = records_.find(workload::raw(member));
  GK_ENSURE_MSG(it != records_.end(), "member " << workload::raw(member) << " unknown");
  return it->second;
}

std::vector<crypto::KeyId> MultiTreeServer::member_path(
    workload::MemberId member) const {
  auto path = trees_[tree_of(member)].path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<std::uint8_t> MultiTreeServer::save_state() const {
  GK_ENSURE_MSG(staged_joins_ == 0 && staged_leaves_ == 0,
                "commit staged changes before saving server state");
  common::ByteWriter out;
  out.u64(epoch_);
  out.u8(static_cast<std::uint8_t>(placement_));
  out.u64(bounds_.size());
  for (const auto bound : bounds_) out.f64(bound);
  for (const auto word : rng_.save_state()) out.u64(word);
  out.u64(ids_->watermark());
  for (const auto& tree : trees_) out.blob(lkh::snapshot_tree_exact(tree));
  dek_.save_state(out);
  std::vector<std::uint64_t> raw_ids;
  raw_ids.reserve(records_.size());
  for (const auto& [raw_id, tree] : records_) raw_ids.push_back(raw_id);
  std::sort(raw_ids.begin(), raw_ids.end());
  out.u64(raw_ids.size());
  for (const auto raw_id : raw_ids) {
    out.u64(raw_id);
    out.u64(records_.at(raw_id));
  }
  return out.take();
}

void MultiTreeServer::restore_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  epoch_ = in.u64();
  GK_ENSURE_MSG(in.u8() == static_cast<std::uint8_t>(placement_),
                "restored state has a different placement policy");
  GK_ENSURE_MSG(in.u64() == bounds_.size(), "restored state has a different bin count");
  for (const auto bound : bounds_)
    GK_ENSURE_MSG(in.f64() == bound, "restored state has different bin bounds");
  Rng::State state;
  for (auto& word : state) word = in.u64();
  rng_.restore_state(state);
  const auto watermark = in.u64();
  std::vector<lkh::KeyTree> restored;
  restored.reserve(trees_.size());
  for (const auto& tree : trees_) {
    restored.push_back(lkh::restore_tree_exact(in.blob(), ids_));
    GK_ENSURE_MSG(restored.back().degree() == tree.degree(),
                  "restored state has a different tree degree");
  }
  trees_ = std::move(restored);
  dek_.restore_state(in);
  records_.clear();
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    const auto tree = in.u64();
    GK_ENSURE_MSG(tree < trees_.size(), "server state corrupt: bad tree index");
    GK_ENSURE_MSG(records_.emplace(raw_id, tree).second,
                  "server state corrupt: duplicate member record");
  }
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  ids_->reset_to(watermark);
  arrivals_.assign(trees_.size(), false);
  staged_joins_ = 0;
  staged_leaves_ = 0;
}

std::vector<partition::PathKey> MultiTreeServer::member_path_keys(
    workload::MemberId member) const {
  std::vector<partition::PathKey> path;
  for (const auto& entry : trees_[tree_of(member)].path_keys(member))
    path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 MultiTreeServer::member_individual_key(workload::MemberId member) const {
  return trees_[tree_of(member)].individual_key(member);
}

crypto::KeyId MultiTreeServer::member_leaf_id(workload::MemberId member) const {
  return trees_[tree_of(member)].leaf_id(member);
}

}  // namespace gk::losshomo
