#include "losshomo/loss_bin_policy.h"

#include "common/bytes.h"
#include "common/ensure.h"
#include "lkh/snapshot.h"

namespace gk::losshomo {

LossBinPolicy::LossBinPolicy(unsigned degree, std::vector<double> bin_upper_bounds,
                             Placement placement, Rng rng)
    : bounds_(std::move(bin_upper_bounds)),
      placement_(placement),
      rng_(rng.fork()),
      ids_(lkh::IdAllocator::create()),
      dek_(rng.fork(), ids_),
      arrivals_(bounds_.size(), false) {
  GK_ENSURE(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) GK_ENSURE(bounds_[i] > bounds_[i - 1]);
  trees_.reserve(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    trees_.emplace_back(degree, rng.fork(), ids_);
  info_.name = "loss-bin";
  info_.durable = true;
}

std::size_t LossBinPolicy::place(double reported_loss) {
  if (placement_ == Placement::kRandom) return rng_.uniform_u64(trees_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (reported_loss <= bounds_[i]) return i;
  return bounds_.size() - 1;  // above every bound: the lossiest tree
}

LossBinPolicy::Admission LossBinPolicy::admit(const workload::MemberProfile& profile) {
  const std::size_t tree = place(profile.loss_rate);
  const auto grant = trees_[tree].insert(profile.id);
  arrivals_[tree] = true;
  return {{grant.individual_key, grant.leaf_id}, static_cast<std::uint32_t>(tree)};
}

void LossBinPolicy::evict(workload::MemberId member, std::uint32_t partition) {
  trees_[partition].remove(member);
}

lkh::RekeyMessage LossBinPolicy::emit(std::uint64_t epoch) {
  lkh::RekeyMessage out;
  per_tree_cost_.clear();
  per_tree_cost_.reserve(trees_.size());
  for (auto& tree : trees_) {
    auto message = tree.commit(epoch);
    per_tree_cost_.push_back(message.cost());
    out.append(std::move(message));
  }
  return out;
}

void LossBinPolicy::wrap_compromised(lkh::RekeyMessage& out) {
  for (auto& tree : trees_)
    if (!tree.empty())
      dek_.wrap_under(tree.root_key().key, tree.root_id(), tree.root_key().version, out);
}

void LossBinPolicy::wrap_arrivals(lkh::RekeyMessage& out) {
  for (std::size_t t = 0; t < trees_.size(); ++t)
    if (arrivals_[t] && !trees_[t].empty())
      dek_.wrap_under(trees_[t].root_key().key, trees_[t].root_id(),
                      trees_[t].root_key().version, out);
}

std::vector<crypto::KeyId> LossBinPolicy::member_path(workload::MemberId member,
                                                      std::uint32_t partition) const {
  auto path = trees_[partition].path_ids(member);
  path.push_back(dek_.id());
  return path;
}

std::size_t LossBinPolicy::tree_size(std::size_t tree) const {
  GK_ENSURE(tree < trees_.size());
  return trees_[tree].size();
}

std::vector<std::uint8_t> LossBinPolicy::save_policy_state() const {
  common::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(placement_));
  out.u64(bounds_.size());
  for (const auto bound : bounds_) out.f64(bound);
  for (const auto word : rng_.save_state()) out.u64(word);
  for (const auto& tree : trees_) out.blob(lkh::snapshot_tree_exact(tree));
  return out.take();
}

void LossBinPolicy::restore_policy_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  GK_ENSURE_MSG(in.u8() == static_cast<std::uint8_t>(placement_),
                "restored state has a different placement policy");
  GK_ENSURE_MSG(in.u64() == bounds_.size(), "restored state has a different bin count");
  for (const auto bound : bounds_)
    GK_ENSURE_MSG(in.f64() == bound, "restored state has different bin bounds");
  Rng::State state;
  for (auto& word : state) word = in.u64();
  rng_.restore_state(state);
  std::vector<lkh::KeyTree> restored;
  restored.reserve(trees_.size());
  for (const auto& tree : trees_) {
    restored.push_back(lkh::restore_tree_exact(in.blob(), ids_));
    GK_ENSURE_MSG(restored.back().degree() == tree.degree(),
                  "restored state has a different tree degree");
  }
  trees_ = std::move(restored);
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  arrivals_.assign(trees_.size(), false);
}

engine::PlacementPolicy::LegacyState LossBinPolicy::restore_legacy(
    std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  LegacyState legacy;
  legacy.epoch = in.u64();
  GK_ENSURE_MSG(in.u8() == static_cast<std::uint8_t>(placement_),
                "restored state has a different placement policy");
  GK_ENSURE_MSG(in.u64() == bounds_.size(), "restored state has a different bin count");
  for (const auto bound : bounds_)
    GK_ENSURE_MSG(in.f64() == bound, "restored state has different bin bounds");
  Rng::State state;
  for (auto& word : state) word = in.u64();
  rng_.restore_state(state);
  legacy.id_watermark = in.u64();
  std::vector<lkh::KeyTree> restored;
  restored.reserve(trees_.size());
  for (const auto& tree : trees_) {
    restored.push_back(lkh::restore_tree_exact(in.blob(), ids_));
    GK_ENSURE_MSG(restored.back().degree() == tree.degree(),
                  "restored state has a different tree degree");
  }
  trees_ = std::move(restored);
  dek_.restore_state(in);
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw_id = in.u64();
    const auto tree = in.u64();
    GK_ENSURE_MSG(tree < trees_.size(), "server state corrupt: bad tree index");
    legacy.ledger.push_back({raw_id, 0, static_cast<std::uint32_t>(tree)});
  }
  GK_ENSURE_MSG(in.exhausted(), "server state has trailing bytes");
  arrivals_.assign(trees_.size(), false);
  return legacy;
}

std::vector<engine::PathKey> LossBinPolicy::member_path_keys(
    workload::MemberId member, std::uint32_t partition) const {
  std::vector<engine::PathKey> path;
  for (const auto& entry : trees_[partition].path_keys(member))
    path.push_back({entry.id, entry.key});
  path.push_back({dek_.id(), dek_.current()});
  return path;
}

crypto::Key128 LossBinPolicy::member_individual_key(workload::MemberId member,
                                                    std::uint32_t partition) const {
  return trees_[partition].individual_key(member);
}

crypto::KeyId LossBinPolicy::member_leaf_id(workload::MemberId member,
                                            std::uint32_t partition) const {
  return trees_[partition].leaf_id(member);
}

}  // namespace gk::losshomo
