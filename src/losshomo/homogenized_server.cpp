#include "losshomo/homogenized_server.h"

namespace gk::losshomo {

engine::EpochOutput HomogenizedServer::end_epoch() {
  auto inner = inner_.end_epoch();
  engine::EpochOutput out;
  out.epoch = inner.epoch;
  out.message = std::move(inner.message);
  out.joins = inner.joins;
  out.l_departures = inner.leaves;
  return out;
}

}  // namespace gk::losshomo
