#pragma once

#include <memory>
#include <span>
#include <vector>

#include "engine/placement_policy.h"
#include "lkh/key_tree.h"

namespace gk::losshomo {

/// How a joining member is assigned to one of the key trees.
enum class Placement : std::uint8_t {
  /// Section 4.2: members with similar loss rates share a tree, so the
  /// proactive replication the high-loss members need never inflates the
  /// keys only low-loss members want. A member is mapped to the first bin
  /// whose upper bound covers its *reported* loss rate and never moves
  /// again (the paper's answer to question two: moving costs more than
  /// misclassification).
  kLossHomogenized,
  /// Control from Fig. 6: same number of trees, members placed uniformly
  /// at random — isolates "multiple trees" from "loss-homogenized trees".
  kRandom,
};

/// Placement policy for the loss-homogenized multi-tree scheme (Section 4):
/// several key trees under one session DEK, binned by reported member loss
/// rate. The engine's ledger partition number is the member's tree index.
///
/// RNG fork order: placement RNG, DEK, then one fork per tree in bin order.
class LossBinPolicy final : public engine::PlacementPolicy {
 public:
  /// `bin_upper_bounds` gives each tree's inclusive loss-rate ceiling in
  /// ascending order; the last bin additionally absorbs anything above it.
  /// E.g. {0.05, 1.0} builds a low-loss tree (p <= 5%) and a high-loss
  /// tree.
  LossBinPolicy(unsigned degree, std::vector<double> bin_upper_bounds,
                Placement placement, Rng rng);

  [[nodiscard]] const engine::PolicyInfo& info() const noexcept override {
    return info_;
  }

  Admission admit(const workload::MemberProfile& profile) override;
  void evict(workload::MemberId member, std::uint32_t partition) override;
  [[nodiscard]] lkh::RekeyMessage emit(std::uint64_t epoch) override;
  void epoch_reset() override { arrivals_.assign(trees_.size(), false); }

  [[nodiscard]] engine::GroupKeyManager* dek() noexcept override { return &dek_; }

  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const override;

  [[nodiscard]] std::shared_ptr<lkh::IdAllocator> ids() const override { return ids_; }
  [[nodiscard]] std::vector<std::uint8_t> save_policy_state() const override;
  void restore_policy_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] LegacyState restore_legacy(
      std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] std::vector<engine::PathKey> member_path_keys(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member, std::uint32_t partition) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member,
                                             std::uint32_t partition) const override;

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] std::size_t tree_size(std::size_t tree) const;

  [[nodiscard]] lkh::TreeStats tree_stats() const override {
    lkh::TreeStats stats;
    for (const auto& tree : trees_) stats.merge(tree.stats());
    return stats;
  }

  /// Wraps contributed by each tree in the last emit() (DEK wraps excluded).
  [[nodiscard]] const std::vector<std::size_t>& per_tree_cost() const noexcept {
    return per_tree_cost_;
  }

 protected:
  void wrap_compromised(lkh::RekeyMessage& out) override;
  void wrap_arrivals(lkh::RekeyMessage& out) override;

 private:
  [[nodiscard]] std::size_t place(double reported_loss);

  engine::PolicyInfo info_;
  std::vector<double> bounds_;
  Placement placement_;
  Rng rng_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  std::vector<lkh::KeyTree> trees_;
  engine::GroupKeyManager dek_;
  std::vector<bool> arrivals_;  // per tree, this epoch
  std::vector<std::size_t> per_tree_cost_;
};

}  // namespace gk::losshomo
