#pragma once

#include <memory>
#include <vector>

#include "engine/rekey_core.h"
#include "losshomo/loss_bin_policy.h"

namespace gk::losshomo {

/// Key server maintaining multiple key trees under one session DEK, binned
/// by member loss rate (the paper's second optimization, Section 4). A
/// bespoke facade over engine::RekeyCore running a LossBinPolicy — kept
/// because its callers speak loss rates and per-tree costs, not the
/// RekeyServer profile interface (HomogenizedServer adapts to that).
class MultiTreeServer {
 public:
  /// See LossBinPolicy for the bin-bound semantics.
  MultiTreeServer(unsigned degree, std::vector<double> bin_upper_bounds,
                  Placement placement, Rng rng)
      : core_(std::make_unique<LossBinPolicy>(degree, std::move(bin_upper_bounds),
                                              placement, rng)) {}

  /// Stage a join. `reported_loss` is what the member piggybacked on past
  /// NACKs (or estimated during an S-partition stay); misreporting models
  /// Fig. 7's misplacement.
  engine::Registration join(workload::MemberId member, double reported_loss) {
    workload::MemberProfile profile;
    profile.id = member;
    profile.loss_rate = reported_loss;
    return core_.join(profile);
  }

  void leave(workload::MemberId member) { core_.leave(member); }

  struct Output {
    std::uint64_t epoch = 0;
    lkh::RekeyMessage message;
    /// Wraps contributed by each tree (DEK wraps excluded).
    std::vector<std::size_t> per_tree_cost;
    std::size_t joins = 0;
    std::size_t leaves = 0;

    [[nodiscard]] std::size_t multicast_cost() const noexcept { return message.cost(); }
  };
  Output end_epoch() {
    auto committed = core_.end_epoch();
    Output out;
    out.epoch = committed.epoch;
    out.message = std::move(committed.message);
    out.per_tree_cost = policy().per_tree_cost();
    out.joins = committed.joins;
    out.leaves = committed.l_departures;
    return out;
  }

  [[nodiscard]] crypto::VersionedKey group_key() const { return core_.group_key(); }
  [[nodiscard]] crypto::KeyId group_key_id() const { return core_.group_key_id(); }
  [[nodiscard]] std::size_t size() const noexcept { return core_.size(); }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return policy().tree_count();
  }
  [[nodiscard]] std::size_t tree_size(std::size_t tree) const {
    return policy().tree_size(tree);
  }
  [[nodiscard]] std::size_t tree_of(workload::MemberId member) const {
    return core_.partition_of(member);
  }

  /// Leaf-to-DEK node ids for the member (transport interest sets).
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const {
    return core_.member_path(member);
  }

  /// Exact persistence + resync accessors (same contract as
  /// engine::DurableRekeyServer; HomogenizedServer adapts this class to
  /// that interface). save_state() requires no staged changes.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return core_.epoch(); }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const {
    return core_.save_state();
  }
  void restore_state(std::span<const std::uint8_t> bytes) {
    core_.restore_state(bytes);
  }
  [[nodiscard]] std::vector<engine::PathKey> member_path_keys(
      workload::MemberId member) const {
    return core_.member_path_keys(member);
  }
  [[nodiscard]] crypto::Key128 member_individual_key(workload::MemberId member) const {
    return core_.member_individual_key(member);
  }
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const {
    return core_.member_leaf_id(member);
  }

 private:
  [[nodiscard]] const LossBinPolicy& policy() const noexcept {
    return static_cast<const LossBinPolicy&>(core_.policy());
  }

  engine::RekeyCore core_;
};

}  // namespace gk::losshomo
