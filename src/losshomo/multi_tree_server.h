#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "lkh/key_tree.h"
#include "partition/group_key.h"
#include "partition/server.h"

namespace gk::losshomo {

/// How a joining member is assigned to one of the key trees.
enum class Placement : std::uint8_t {
  /// Section 4.2: members with similar loss rates share a tree, so the
  /// proactive replication the high-loss members need never inflates the
  /// keys only low-loss members want. A member is mapped to the first bin
  /// whose upper bound covers its *reported* loss rate and never moves
  /// again (the paper's answer to question two: moving costs more than
  /// misclassification).
  kLossHomogenized,
  /// Control from Fig. 6: same number of trees, members placed uniformly
  /// at random — isolates "multiple trees" from "loss-homogenized trees".
  kRandom,
};

/// Key server maintaining multiple key trees under one session DEK, binned
/// by member loss rate (the paper's second optimization, Section 4).
class MultiTreeServer {
 public:
  /// `bin_upper_bounds` gives each tree's inclusive loss-rate ceiling in
  /// ascending order; the last bin additionally absorbs anything above it.
  /// E.g. {0.05, 1.0} builds a low-loss tree (p <= 5%) and a high-loss
  /// tree.
  MultiTreeServer(unsigned degree, std::vector<double> bin_upper_bounds,
                  Placement placement, Rng rng);

  /// Stage a join. `reported_loss` is what the member piggybacked on past
  /// NACKs (or estimated during an S-partition stay); misreporting models
  /// Fig. 7's misplacement.
  partition::Registration join(workload::MemberId member, double reported_loss);

  void leave(workload::MemberId member);

  struct Output {
    std::uint64_t epoch = 0;
    lkh::RekeyMessage message;
    /// Wraps contributed by each tree (DEK wraps excluded).
    std::vector<std::size_t> per_tree_cost;
    std::size_t joins = 0;
    std::size_t leaves = 0;

    [[nodiscard]] std::size_t multicast_cost() const noexcept { return message.cost(); }
  };
  Output end_epoch();

  [[nodiscard]] crypto::VersionedKey group_key() const { return dek_.current(); }
  [[nodiscard]] crypto::KeyId group_key_id() const noexcept { return dek_.id(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] std::size_t tree_size(std::size_t tree) const;
  [[nodiscard]] std::size_t tree_of(workload::MemberId member) const;

  /// Leaf-to-DEK node ids for the member (transport interest sets).
  [[nodiscard]] std::vector<crypto::KeyId> member_path(workload::MemberId member) const;

  /// Exact persistence + resync accessors (same contract as
  /// partition::DurableRekeyServer; HomogenizedServer adapts this class to
  /// that interface). save_state() requires no staged changes.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const;
  void restore_state(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::vector<partition::PathKey> member_path_keys(
      workload::MemberId member) const;
  [[nodiscard]] crypto::Key128 member_individual_key(workload::MemberId member) const;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const;

 private:
  [[nodiscard]] std::size_t place(double reported_loss);

  std::vector<double> bounds_;
  Placement placement_;
  Rng rng_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  std::vector<lkh::KeyTree> trees_;
  partition::GroupKeyManager dek_;
  std::unordered_map<std::uint64_t, std::size_t> records_;  // raw id -> tree
  std::vector<bool> arrivals_;  // per tree, this epoch
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_leaves_ = 0;
};

}  // namespace gk::losshomo
