#pragma once

#include "engine/server.h"
#include "losshomo/multi_tree_server.h"

namespace gk::losshomo {

/// Adapts MultiTreeServer to the engine::DurableRekeyServer interface so
/// the fault-injection harness and the rekey journal can drive the
/// loss-homogenized scheme through the same code path as the partition
/// servers. Joins use the profile's loss_rate as the member's *reported*
/// loss (the value it would have piggybacked on past NACKs).
class HomogenizedServer final : public engine::DurableRekeyServer {
 public:
  HomogenizedServer(unsigned degree, std::vector<double> bin_upper_bounds,
                    Placement placement, Rng rng)
      : inner_(degree, std::move(bin_upper_bounds), placement, rng) {}

  engine::Registration join(const workload::MemberProfile& profile) override {
    return inner_.join(profile.id, profile.loss_rate);
  }
  void leave(workload::MemberId member) override { inner_.leave(member); }
  engine::EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override {
    return inner_.group_key();
  }
  [[nodiscard]] crypto::KeyId group_key_id() const override {
    return inner_.group_key_id();
  }
  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override {
    return inner_.member_path(member);
  }

  [[nodiscard]] std::uint64_t epoch() const override { return inner_.epoch(); }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override {
    return inner_.save_state();
  }
  void restore_state(std::span<const std::uint8_t> bytes) override {
    inner_.restore_state(bytes);
  }
  [[nodiscard]] std::vector<engine::PathKey> member_path_keys(
      workload::MemberId member) const override {
    return inner_.member_path_keys(member);
  }
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member) const override {
    return inner_.member_individual_key(member);
  }
  [[nodiscard]] crypto::KeyId member_leaf_id(
      workload::MemberId member) const override {
    return inner_.member_leaf_id(member);
  }

  [[nodiscard]] const MultiTreeServer& inner() const noexcept { return inner_; }

 private:
  MultiTreeServer inner_;
};

}  // namespace gk::losshomo
