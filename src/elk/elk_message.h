#pragma once

#include <cstdint>
#include <vector>

#include "crypto/key.h"

namespace gk::elk {

/// One node-key update of ELK's departure protocol [PST01]: the *other*
/// side's contribution, encrypted under the receiving side's child key.
///
/// ELK's bandwidth edge over LKH comes from these being a few *bits* each
/// (n1/n2-bit contributions) rather than whole wrapped keys; `bits` is the
/// ciphertext width. A 32-bit verification tag of the resulting key lets
/// receivers confirm the combination.
struct Contribution {
  crypto::KeyId node{};             ///< the key being updated
  std::uint32_t new_version = 0;
  crypto::KeyId under{};            ///< child key the ciphertext is bound to
  std::uint32_t under_version = 0;
  bool under_is_left = false;       ///< which side `under` is
  std::uint8_t left_bits = 0;       ///< n1: width of the left contribution
  std::uint8_t right_bits = 0;      ///< n2: width of the right contribution
  std::uint64_t ciphertext = 0;     ///< the other side's contribution, encrypted
  std::uint32_t check = 0;          ///< verification tag of the new key
};

/// The multicast payload of one ELK epoch: per-operation contribution
/// records. Joins and the periodic interval refresh cost nothing here —
/// that is ELK's design point.
struct ElkRekeyMessage {
  std::uint64_t epoch = 0;
  crypto::KeyId group_key_id{};
  std::uint32_t group_key_version = 0;
  std::vector<Contribution> contributions;

  /// Total payload bits (ELK's own bandwidth metric).
  [[nodiscard]] std::size_t payload_bits() const noexcept {
    std::size_t bits = 0;
    for (const auto& c : contributions)
      bits += c.under_is_left ? c.right_bits : c.left_bits;
    return bits;
  }
};

}  // namespace gk::elk
