#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "elk/elk_message.h"
#include "elk/elk_tree.h"
#include "workload/member.h"

namespace gk::elk {

/// An ELK member: holds its path keys (leaf to root, like LKH), applies the
/// interval refresh locally, and reconstructs replacement keys from its own
/// contribution plus the broadcast half.
class ElkMember {
 public:
  ElkMember(workload::MemberId owner, std::vector<ElkTree::PathKey> grant);

  /// Replace the whole path (registration or post-split re-grant).
  void re_grant(std::vector<ElkTree::PathKey> grant);

  /// Consume one operation's contributions; returns keys updated.
  std::size_t process(const ElkRekeyMessage& message);

  /// Mirror the server's interval refresh over every held key.
  void apply_refresh();

  [[nodiscard]] std::optional<crypto::VersionedKey> lookup(crypto::KeyId id) const;
  [[nodiscard]] bool holds(crypto::KeyId id, std::uint32_t version) const;
  [[nodiscard]] workload::MemberId owner() const noexcept { return owner_; }

 private:
  workload::MemberId owner_;
  std::unordered_map<std::uint64_t, crypto::VersionedKey> keys_;
};

}  // namespace gk::elk
