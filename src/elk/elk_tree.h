#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/key.h"
#include "elk/elk_message.h"
#include "lkh/ids.h"
#include "workload/member.h"

namespace gk::elk {

/// ELK key server [PST01] — the third hierarchical scheme the paper names
/// alongside LKH and OFT.
///
/// A binary key tree where:
///  * **joins are broadcast-free**: the newcomer is granted its path keys
///    over the registration unicast channel, and every key in the tree is
///    advanced through a one-way *refresh* at the next interval boundary,
///    so the newcomer cannot unwind to earlier keys;
///  * **departures are cheap**: each ancestor's replacement key is built
///    from two small *contributions* derived from its children's (current)
///    keys; each side of the tree only needs the other side's n-bit
///    contribution, encrypted under its own child key — a few bits per
///    node versus whole wrapped keys in LKH.
///
/// Like OFT, ELK is a per-operation protocol: leave() emits its own
/// message, and end_epoch() applies the interval refresh (cost: zero
/// multicast).
class ElkTree {
 public:
  /// n1/n2 contribution widths in bits (the paper's ELK uses e.g. 16+16).
  explicit ElkTree(Rng rng, unsigned left_bits = 16, unsigned right_bits = 16,
                   std::shared_ptr<lkh::IdAllocator> ids = nullptr);
  ~ElkTree();

  ElkTree(ElkTree&&) noexcept;
  ElkTree& operator=(ElkTree&&) noexcept;
  ElkTree(const ElkTree&) = delete;
  ElkTree& operator=(const ElkTree&) = delete;

  /// Stage a join. Broadcast-free; the grant is issued by grant_for()
  /// *after* the next end_epoch() (ELK admits members at interval
  /// boundaries, post-refresh). Splitting an existing leaf re-grants the
  /// split member too (see relocated()).
  void join(workload::MemberId member);

  /// Immediate departure: emits this operation's contributions.
  void leave(workload::MemberId member, ElkRekeyMessage& out);

  /// Interval boundary: one-way refresh of every key (no message); the
  /// epoch counter advances. Members apply the same refresh locally.
  void end_epoch();

  /// Unicast grant: the member's current path, leaf first, root last.
  struct PathKey {
    crypto::KeyId id{};
    crypto::VersionedKey key;
  };
  [[nodiscard]] std::vector<PathKey> grant_for(workload::MemberId member) const;

  /// Members whose leaf moved (their leaf was split by a join) since the
  /// last end_epoch(); they need re-granting.
  [[nodiscard]] const std::vector<workload::MemberId>& relocated() const noexcept {
    return relocated_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return leaves_.size(); }
  [[nodiscard]] bool contains(workload::MemberId member) const noexcept;
  [[nodiscard]] crypto::KeyId root_id() const noexcept;
  [[nodiscard]] crypto::VersionedKey group_key() const;
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // --- The ELK key schedule, shared with the member side. ---
  /// One-way interval refresh.
  [[nodiscard]] static crypto::Key128 refresh(const crypto::Key128& key);
  /// A child's contribution to its parent's replacement key.
  [[nodiscard]] static std::uint64_t contribution(const crypto::Key128& child_key,
                                                  const crypto::Key128& old_parent,
                                                  bool left, unsigned bits);
  /// Replacement parent key from the old key and both contributions.
  [[nodiscard]] static crypto::Key128 combine(const crypto::Key128& old_parent,
                                              std::uint64_t left_contribution,
                                              std::uint64_t right_contribution);
  /// Keystream pad binding a ciphertext to (child key, node, version).
  [[nodiscard]] static std::uint64_t pad(const crypto::Key128& child_key,
                                         crypto::KeyId node, std::uint32_t new_version,
                                         unsigned bits);
  /// 32-bit verification tag of a key.
  [[nodiscard]] static std::uint32_t check_value(const crypto::Key128& key);

 private:
  struct Node;

  Node* locate(workload::MemberId member) const;
  static Node* lightest_leaf(Node* node) noexcept;
  void rekey_upward(Node* from, ElkRekeyMessage& out);

  Rng rng_;
  unsigned left_bits_;
  unsigned right_bits_;
  std::shared_ptr<lkh::IdAllocator> ids_;
  std::unique_ptr<Node> root_;
  std::unordered_map<std::uint64_t, Node*> leaves_;
  std::vector<workload::MemberId> relocated_;
  std::uint64_t relocated_epoch_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace gk::elk
