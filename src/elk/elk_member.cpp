#include "elk/elk_member.h"

namespace gk::elk {

ElkMember::ElkMember(workload::MemberId owner, std::vector<ElkTree::PathKey> grant)
    : owner_(owner) {
  re_grant(std::move(grant));
}

void ElkMember::re_grant(std::vector<ElkTree::PathKey> grant) {
  keys_.clear();
  for (const auto& entry : grant) keys_[crypto::raw(entry.id)] = entry.key;
}

std::size_t ElkMember::process(const ElkRekeyMessage& message) {
  std::size_t updated = 0;
  bool progressed = true;
  // Contributions for higher nodes may depend on lower updates; iterate.
  while (progressed) {
    progressed = false;
    for (const auto& record : message.contributions) {
      const auto under = keys_.find(crypto::raw(record.under));
      if (under == keys_.end() || under->second.version != record.under_version)
        continue;
      const auto node = keys_.find(crypto::raw(record.node));
      if (node == keys_.end() || node->second.version + 1 != record.new_version)
        continue;

      const unsigned my_bits = record.under_is_left ? record.left_bits
                                                    : record.right_bits;
      const unsigned other_bits = record.under_is_left ? record.right_bits
                                                       : record.left_bits;
      const std::uint64_t mine = ElkTree::contribution(
          under->second.key, node->second.key, record.under_is_left, my_bits);
      const std::uint64_t other =
          record.ciphertext ^
          ElkTree::pad(under->second.key, record.node, record.new_version, other_bits);
      const std::uint64_t left = record.under_is_left ? mine : other;
      const std::uint64_t right = record.under_is_left ? other : mine;
      const auto candidate = ElkTree::combine(node->second.key, left, right);
      if (ElkTree::check_value(candidate) != record.check) continue;  // garbled

      node->second = {candidate, record.new_version};
      ++updated;
      progressed = true;
    }
  }
  return updated;
}

void ElkMember::apply_refresh() {
  for (auto& [id, key] : keys_) {
    key.key = ElkTree::refresh(key.key);
    ++key.version;
  }
}

std::optional<crypto::VersionedKey> ElkMember::lookup(crypto::KeyId id) const {
  const auto it = keys_.find(crypto::raw(id));
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

bool ElkMember::holds(crypto::KeyId id, std::uint32_t version) const {
  const auto it = keys_.find(crypto::raw(id));
  return it != keys_.end() && it->second.version == version;
}

}  // namespace gk::elk
