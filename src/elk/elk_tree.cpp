#include "elk/elk_tree.h"

#include <algorithm>
#include <optional>

#include "common/ensure.h"
#include "crypto/kdf.h"

namespace gk::elk {

namespace {

std::uint64_t low64(const crypto::Key128& key) noexcept {
  std::uint64_t v = 0;
  const auto bytes = key.bytes();
  for (std::size_t i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
  return v;
}

std::uint64_t mask_bits(std::uint64_t v, unsigned bits) noexcept {
  if (bits == 0) return 0;
  if (bits >= 64) return v;
  return v & ((std::uint64_t{1} << bits) - 1);
}

}  // namespace

struct ElkTree::Node {
  crypto::KeyId id{};
  crypto::VersionedKey key;
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;  // 0..2
  std::optional<workload::MemberId> member;
  std::size_t leaf_count = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return member.has_value(); }
};

ElkTree::ElkTree(Rng rng, unsigned left_bits, unsigned right_bits,
                 std::shared_ptr<lkh::IdAllocator> ids)
    : rng_(rng), left_bits_(left_bits), right_bits_(right_bits),
      ids_(ids ? std::move(ids) : lkh::IdAllocator::create()) {
  GK_ENSURE(left_bits_ >= 1 && left_bits_ <= 64);
  GK_ENSURE(right_bits_ <= 64);
  root_ = std::make_unique<Node>();
  root_->id = ids_->next();
  root_->key = {crypto::Key128::random(rng_), 0};
}

ElkTree::~ElkTree() = default;
ElkTree::ElkTree(ElkTree&&) noexcept = default;
ElkTree& ElkTree::operator=(ElkTree&&) noexcept = default;

crypto::Key128 ElkTree::refresh(const crypto::Key128& key) {
  return crypto::derive_key(key, "elk-refresh");
}

std::uint64_t ElkTree::contribution(const crypto::Key128& child_key,
                                    const crypto::Key128& old_parent, bool left,
                                    unsigned bits) {
  const auto derived =
      crypto::derive_key(child_key, left ? "elk-cl" : "elk-cr", low64(old_parent));
  return mask_bits(low64(derived), bits);
}

crypto::Key128 ElkTree::combine(const crypto::Key128& old_parent,
                                std::uint64_t left_contribution,
                                std::uint64_t right_contribution) {
  const auto mid = crypto::derive_key(old_parent, "elk-kl", left_contribution);
  return crypto::derive_key(mid, "elk-kr", right_contribution);
}

std::uint64_t ElkTree::pad(const crypto::Key128& child_key, crypto::KeyId node,
                           std::uint32_t new_version, unsigned bits) {
  const std::uint64_t context =
      crypto::raw(node) * 0x9e3779b97f4a7c15ULL + new_version;
  return mask_bits(low64(crypto::derive_key(child_key, "elk-pad", context)), bits);
}

std::uint32_t ElkTree::check_value(const crypto::Key128& key) {
  return static_cast<std::uint32_t>(low64(crypto::derive_key(key, "elk-check")));
}

bool ElkTree::contains(workload::MemberId member) const noexcept {
  return leaves_.count(workload::raw(member)) != 0;
}

ElkTree::Node* ElkTree::locate(workload::MemberId member) const {
  const auto it = leaves_.find(workload::raw(member));
  GK_ENSURE_MSG(it != leaves_.end(),
                "member " << workload::raw(member) << " not in ELK tree");
  return it->second;
}

ElkTree::Node* ElkTree::lightest_leaf(Node* node) noexcept {
  while (!node->is_leaf()) {
    Node* lightest = node->children.front().get();
    for (const auto& child : node->children)
      if (child->leaf_count < lightest->leaf_count) lightest = child.get();
    node = lightest;
  }
  return node;
}

void ElkTree::join(workload::MemberId member) {
  GK_ENSURE_MSG(!contains(member),
                "member " << workload::raw(member) << " already in ELK tree");
  // relocated() must stay readable after end_epoch() (callers issue the
  // re-grants then); reset it as the next epoch's joins begin.
  if (relocated_epoch_ != epoch_) {
    relocated_.clear();
    relocated_epoch_ = epoch_;
  }

  auto leaf = std::make_unique<Node>();
  leaf->id = ids_->next();
  leaf->key = {crypto::Key128::random(rng_), 0};
  leaf->member = member;
  leaf->leaf_count = 1;
  Node* leaf_raw = leaf.get();

  if (root_->children.size() < 2) {
    leaf->parent = root_.get();
    root_->children.push_back(std::move(leaf));
  } else {
    Node* split = lightest_leaf(root_.get());
    const auto split_member = *split->member;
    Node* parent = split->parent;
    auto slot = std::find_if(
        parent->children.begin(), parent->children.end(),
        [split](const std::unique_ptr<Node>& c) { return c.get() == split; });
    GK_ENSURE(slot != parent->children.end());

    auto interior = std::make_unique<Node>();
    interior->id = ids_->next();
    interior->key = {crypto::Key128::random(rng_), 0};
    interior->parent = parent;
    interior->leaf_count = 1;
    auto owned_split = std::move(*slot);
    owned_split->parent = interior.get();
    leaf->parent = interior.get();
    interior->children.push_back(std::move(owned_split));
    interior->children.push_back(std::move(leaf));
    *slot = std::move(interior);
    // The split member gains a path node it cannot derive: re-grant it.
    relocated_.push_back(split_member);
  }

  leaves_.emplace(workload::raw(member), leaf_raw);
  for (Node* cursor = leaf_raw->parent; cursor != nullptr; cursor = cursor->parent)
    ++cursor->leaf_count;
  // No broadcast: backward confidentiality comes from the interval refresh
  // at end_epoch(), after which the newcomer's grant is issued.
}

void ElkTree::rekey_upward(Node* from, ElkRekeyMessage& out) {
  for (Node* node = from; node != nullptr; node = node->parent) {
    GK_ENSURE(!node->children.empty());
    const crypto::Key128 old_key = node->key.key;
    Node* left = node->children.front().get();
    Node* right = node->children.size() > 1 ? node->children.back().get() : nullptr;

    const std::uint64_t cl =
        contribution(left->key.key, old_key, true, left_bits_);
    const std::uint64_t cr =
        right != nullptr ? contribution(right->key.key, old_key, false, right_bits_)
                         : 0;
    node->key.key = combine(old_key, cl, cr);
    ++node->key.version;
    const std::uint32_t check = check_value(node->key.key);

    // Left side receives the right contribution under the left child key.
    Contribution to_left;
    to_left.node = node->id;
    to_left.new_version = node->key.version;
    to_left.under = left->id;
    to_left.under_version = left->key.version;
    to_left.under_is_left = true;
    to_left.left_bits = static_cast<std::uint8_t>(left_bits_);
    to_left.right_bits = static_cast<std::uint8_t>(right != nullptr ? right_bits_ : 0);
    to_left.ciphertext =
        cr ^ pad(left->key.key, node->id, node->key.version,
                 right != nullptr ? right_bits_ : 0);
    to_left.check = check;
    out.contributions.push_back(to_left);

    if (right != nullptr) {
      Contribution to_right = to_left;
      to_right.under = right->id;
      to_right.under_version = right->key.version;
      to_right.under_is_left = false;
      to_right.ciphertext =
          cl ^ pad(right->key.key, node->id, node->key.version, left_bits_);
      out.contributions.push_back(to_right);
    }
  }
}

void ElkTree::leave(workload::MemberId member, ElkRekeyMessage& out) {
  Node* leaf = locate(member);
  Node* parent = leaf->parent;
  GK_ENSURE(parent != nullptr);
  leaves_.erase(workload::raw(member));
  for (Node* cursor = parent; cursor != nullptr; cursor = cursor->parent)
    --cursor->leaf_count;

  auto slot = std::find_if(
      parent->children.begin(), parent->children.end(),
      [leaf](const std::unique_ptr<Node>& c) { return c.get() == leaf; });
  GK_ENSURE(slot != parent->children.end());
  parent->children.erase(slot);

  Node* rekey_from = parent;
  if (parent != root_.get() && parent->children.size() == 1) {
    // Splice: promote the surviving child into the parent's slot.
    Node* grandparent = parent->parent;
    auto parent_slot = std::find_if(
        grandparent->children.begin(), grandparent->children.end(),
        [parent](const std::unique_ptr<Node>& c) { return c.get() == parent; });
    GK_ENSURE(parent_slot != grandparent->children.end());
    auto promoted = std::move(parent->children.front());
    promoted->parent = grandparent;
    *parent_slot = std::move(promoted);
    rekey_from = grandparent;
  }
  if (root_->children.empty()) {
    // Group emptied: retire the root key quietly.
    root_->key.key = crypto::Key128::random(rng_);
    ++root_->key.version;
    out.group_key_id = root_->id;
    out.group_key_version = root_->key.version;
    return;
  }

  rekey_upward(rekey_from, out);
  out.group_key_id = root_->id;
  out.group_key_version = root_->key.version;
  out.epoch = epoch_;
}

void ElkTree::end_epoch() {
  // One-way refresh of every key; members mirror this locally at zero
  // multicast cost (ELK's broadcast-free joins).
  struct Walker {
    static void run(Node* node) {
      node->key.key = ElkTree::refresh(node->key.key);
      ++node->key.version;
      for (auto& child : node->children) run(child.get());
    }
  };
  Walker::run(root_.get());
  ++epoch_;
}

std::vector<ElkTree::PathKey> ElkTree::grant_for(workload::MemberId member) const {
  std::vector<PathKey> path;
  for (const Node* cursor = locate(member); cursor != nullptr; cursor = cursor->parent)
    path.push_back({cursor->id, cursor->key});
  return path;
}

crypto::KeyId ElkTree::root_id() const noexcept { return root_->id; }

crypto::VersionedKey ElkTree::group_key() const { return root_->key; }

}  // namespace gk::elk
