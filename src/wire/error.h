#pragma once

#include <stdexcept>
#include <string>

namespace gk::wire {

/// Why a wire payload was rejected.
enum class WireFault : std::uint8_t {
  kTruncated,     ///< bytes ran out before the declared structure ended
  kBadMagic,      ///< payload does not start with the format's magic tag
  kBadVersion,    ///< version byte is newer than this build understands
  kMalformed,     ///< framing is self-inconsistent (lengths, tags, counts)
  kSchemeMismatch ///< snapshot was produced by a different placement policy
};

[[nodiscard]] const char* to_string(WireFault fault) noexcept;

/// Typed rejection of an untrusted wire payload (snapshot, rekey record,
/// journal). Unlike ContractViolation — which flags *programming* errors —
/// WireError is the expected outcome of feeding corrupted, truncated, or
/// future-versioned bytes to a decoder, so callers can catch it and degrade
/// gracefully (discard the snapshot, request a resync) instead of treating
/// the condition as a broken invariant.
class WireError : public std::runtime_error {
 public:
  WireError(WireFault fault, const std::string& what)
      : std::runtime_error(what), fault_(fault) {}

  [[nodiscard]] WireFault fault() const noexcept { return fault_; }

 private:
  WireFault fault_;
};

}  // namespace gk::wire
