#include "wire/record.h"

#include "common/bytes.h"
#include "wire/codec.h"
#include "wire/wrap_codec.h"

namespace gk::wire {

namespace {

constexpr char kMagic[4] = {'G', 'K', 'R', '1'};

}  // namespace

std::vector<std::uint8_t> RekeyRecord::encode(const lkh::RekeyMessage& message,
                                              std::uint64_t term) {
  common::ByteWriter out;
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(kVersion);
  out.u64(message.epoch);
  out.u64(term);
  out.u64(crypto::raw(message.group_key_id));
  out.u32(message.group_key_version);
  out.u32(static_cast<std::uint32_t>(message.wraps.size()));
  for (const auto& wrap : message.wraps) encode_wrap(out, wrap);
  return out.take();
}

lkh::RekeyMessage RekeyRecord::decode(std::span<const std::uint8_t> bytes) {
  return decode_framed(bytes).message;
}

RekeyRecord::Framed RekeyRecord::decode_framed(std::span<const std::uint8_t> bytes) {
  Reader in(bytes);
  if (in.remaining() < 4) throw WireError(WireFault::kTruncated, "rekey record: no magic");
  for (const char c : kMagic)
    if (in.u8() != static_cast<std::uint8_t>(c))
      throw WireError(WireFault::kBadMagic, "not a rekey record");
  const auto version = in.u8();
  if (version < 1 || version > kVersion)
    throw WireError(WireFault::kBadVersion,
                    "rekey record version " + std::to_string(version) + " unsupported");

  Framed framed;
  framed.message.epoch = in.u64();
  if (version >= 2) framed.term = in.u64();
  framed.message.group_key_id = crypto::make_key_id(in.u64());
  framed.message.group_key_version = in.u32();
  const auto count = in.u32();
  if (std::uint64_t{count} * crypto::WrappedKey::kWireSize > in.remaining())
    throw WireError(WireFault::kTruncated, "rekey record: wrap list truncated");
  framed.message.wraps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) framed.message.wraps.push_back(decode_wrap(in));
  in.expect_exhausted("rekey record");
  return framed;
}

}  // namespace gk::wire
