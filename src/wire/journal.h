#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/key.h"
#include "workload/member.h"

namespace gk::wire {

/// Write-ahead rekey journal: the durability layer between a key server's
/// in-memory state and its persistence medium.
///
/// The journal holds one *base record* (an opaque server-state checkpoint,
/// produced by the server's exact-resume serializer) followed by every
/// membership operation staged since, in order, plus commit markers:
///
///   "GKJ1" | records...
///   record := 'B' blob           base checkpoint (server save_state bytes)
///           | 'J' profile        join staged (full MemberProfile)
///           | 'A' u64            join acknowledged (granted leaf id)
///           | 'L' u64            leave staged (member id)
///           | 'C' u64            commit begun (epoch)
///           | 'E' u64            commit finished (epoch)
///           | 'T' u64            leader term in effect for later records
///           | 'D' 32B            SHA-256 of server state after a commit
///
/// WAL discipline: an operation is journaled *before* it is applied to the
/// in-memory server, and COMMIT_BEGIN is journaled before the epoch is
/// committed. Because every server-side source of randomness is part of the
/// checkpoint (RNG streams included), replaying the ops against the restored
/// base regenerates byte-identical key material — a crash at *any* point
/// (mid-batch, or after logging commit intent but before multicasting the
/// rekey message) recovers to exactly the state and output of an
/// uninterrupted run.
///
/// The 'A' (acknowledge) record carries the leaf id the original run
/// granted; replay re-derives it and verifies the match, turning silent
/// divergence (a corrupted checkpoint, a non-deterministic server) into a
/// loud ContractViolation. The 'D' (state digest) record extends the same
/// idea from join grants to the *whole* server state: a replica replaying
/// the stream hashes its own state at each digest and must match, so
/// divergence is caught within one epoch instead of at failover.
///
/// The 'T' (term) record is the epoch-fencing hook for replication: it
/// declares which leader term authored every record after it. A journal
/// stream shipped to standbys therefore carries its provenance inline, and
/// a standby fenced to a newer term rejects records from a stale leader.
///
/// Unlike the untrusted-payload decoders (wire::Snapshot, wire::RekeyRecord),
/// the journal is a *local* trusted medium: structural corruption in the
/// complete prefix means the host's own storage lied, so parse() keeps the
/// fail-loud ContractViolation semantics. Only a torn final write — the one
/// corruption a crash legitimately produces — is tolerated.
class RekeyJournal {
 public:
  RekeyJournal();

  /// Replace the journal's contents with a fresh base checkpoint
  /// (compaction). Called at session start and periodically after commits.
  void checkpoint(std::span<const std::uint8_t> server_state);

  void record_join(const workload::MemberProfile& profile);
  void record_join_ack(crypto::KeyId leaf_id);
  void record_leave(workload::MemberId member);
  void record_commit_begin(std::uint64_t epoch);
  void record_commit_end(std::uint64_t epoch);
  /// Stamp the leader term governing all subsequent records (epoch fencing).
  void record_term(std::uint64_t term);
  /// Log the SHA-256 of the server's post-commit state. Replay (local
  /// recovery or a shipped standby) re-hashes and must match.
  void record_state_digest(const std::array<std::uint8_t, 32>& digest);

  /// The durable bytes (what a deployment would fsync after each record).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_.data();
  }

  // ---- Growth bookkeeping (shipping streams and long soaks read these to
  // decide when to compact; see JournaledServer's auto-checkpoint). ----

  /// Durable size in bytes, magic included.
  [[nodiscard]] std::size_t size_bytes() const noexcept { return buffer_.size(); }
  /// Records appended since construction or the last checkpoint()
  /// (the base checkpoint record itself is not counted).
  [[nodiscard]] std::size_t record_count() const noexcept { return records_; }
  /// Finished commits ('E' records) since the last checkpoint().
  [[nodiscard]] std::size_t commits_since_checkpoint() const noexcept {
    return commits_since_checkpoint_;
  }
  /// True once `every` (> 0) commits have finished since the last
  /// checkpoint — the auto-compaction threshold.
  [[nodiscard]] bool wants_checkpoint(std::size_t every) const noexcept {
    return every > 0 && commits_since_checkpoint_ >= every;
  }
  /// Compaction generation: incremented by every checkpoint(). Journal
  /// shippers key their byte offsets to a generation, because checkpoint()
  /// restarts the byte stream.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  // ---- Recovery-side parsing. ----

  struct Op {
    enum class Kind : std::uint8_t { kJoin, kLeave, kCommit, kTerm, kDigest };
    Kind kind = Kind::kJoin;
    workload::MemberProfile profile;               // kJoin
    std::optional<crypto::KeyId> granted_leaf;     // kJoin, if acknowledged
    workload::MemberId member{};                   // kLeave
    std::uint64_t epoch = 0;                       // kCommit
    bool commit_finished = false;                  // kCommit: END seen
    std::uint64_t term = 0;                        // kTerm, kCommit (in effect)
    std::array<std::uint8_t, 32> digest{};         // kDigest
  };

  struct Replay {
    std::vector<std::uint8_t> base_state;
    std::vector<Op> ops;
    /// True when the journal's last commit record is a COMMIT_BEGIN without
    /// a matching COMMIT_END: the server died between logging intent and
    /// finishing the epoch. Recovery must re-run that commit and re-emit
    /// its (identical) rekey message.
    bool interrupted_commit = false;
    std::uint64_t interrupted_epoch = 0;
    /// The last 'T' record's term (0 when the stream carries none): what a
    /// recovered or promoted server resumes fencing from.
    std::uint64_t last_term = 0;
  };

  /// Parse journal bytes. Throws ContractViolation on malformed input.
  /// A journal truncated mid-record (torn final write) is *not* an error:
  /// the complete prefix is replayed and the torn tail discarded, matching
  /// the recovery semantics of a real WAL.
  [[nodiscard]] static Replay parse(std::span<const std::uint8_t> bytes);

 private:
  common::ByteWriter buffer_;
  std::size_t records_ = 0;
  std::size_t commits_since_checkpoint_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace gk::wire
