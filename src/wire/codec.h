#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <sstream>
#include <string>

#include "wire/error.h"

namespace gk::wire {

/// Bounds-checked little-endian reader for *untrusted* wire payloads.
///
/// The twin of common::ByteReader with one deliberate difference: overruns
/// throw wire::WireError (kTruncated) instead of ContractViolation, because
/// running out of bytes while decoding a snapshot or rekey record is an
/// expected property of hostile/corrupt input, not a broken invariant.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[offset_++];
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[offset_++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[offset_++]} << (8 * i);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t count) {
    require(count);
    auto view = bytes_.subspan(offset_, count);
    offset_ += count;
    return view;
  }

  /// Length-prefixed blob written by common::ByteWriter::blob.
  std::span<const std::uint8_t> blob() {
    const auto length = u64();
    if (length > remaining())
      throw WireError(WireFault::kTruncated, "wire blob length exceeds payload");
    return bytes(static_cast<std::size_t>(length));
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == bytes_.size(); }

  /// Decoders call this after the last field: trailing garbage is a framing
  /// violation, not free real estate.
  void expect_exhausted(const char* what) const {
    if (!exhausted()) {
      std::ostringstream os;
      os << what << ": " << remaining() << " trailing byte(s)";
      throw WireError(WireFault::kMalformed, os.str());
    }
  }

 private:
  void require(std::size_t count) const {
    if (offset_ + count > bytes_.size())
      throw WireError(WireFault::kTruncated, "wire payload truncated");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace gk::wire
