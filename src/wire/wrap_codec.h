#pragma once

#include "common/bytes.h"
#include "crypto/keywrap.h"
#include "wire/codec.h"

namespace gk::wire {

/// Canonical wire layout of one wrapped key — 68 bytes, little-endian:
///
///   u64 target_id
///   u64 (target_version << 32) | wrapping_version
///   u64 wrapping_id
///   12B nonce | 16B ciphertext | 16B tag
///
/// Every byte format that carries wraps (rekey records, FEC shards,
/// snapshots) goes through these two functions, so the layout is defined
/// exactly once.
void encode_wrap(common::ByteWriter& out, const crypto::WrappedKey& wrap);

/// Decode one wrap; throws WireError (kTruncated) when bytes run out.
[[nodiscard]] crypto::WrappedKey decode_wrap(Reader& in);

}  // namespace gk::wire
