#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lkh/rekey_message.h"

namespace gk::wire {

/// Versioned wire frame for one epoch's rekey payload:
///
///   'G' 'K' 'R' '1' | u8 version | u64 epoch
///   u64 group_key_id | u32 group_key_version
///   u32 wrap_count | wrap_count * 68B wraps (see wire/wrap_codec.h)
///
/// This is the one serialization of lkh::RekeyMessage; transports, sims,
/// and snapshots that need a rekey payload on the wire all use it.
/// `decode` rejects bad magic, unknown versions, and truncated or
/// overlong payloads with a typed WireError — never an ENSURE abort.
struct RekeyRecord {
  static constexpr std::uint8_t kVersion = 1;

  [[nodiscard]] static std::vector<std::uint8_t> encode(const lkh::RekeyMessage& message);
  [[nodiscard]] static lkh::RekeyMessage decode(std::span<const std::uint8_t> bytes);
};

}  // namespace gk::wire
