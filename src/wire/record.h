#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lkh/rekey_message.h"

namespace gk::wire {

/// Versioned wire frame for one epoch's rekey payload:
///
///   'G' 'K' 'R' '1' | u8 version | u64 epoch
///   [version >= 2] u64 term      leader fencing token (0 = unreplicated)
///   u64 group_key_id | u32 group_key_version
///   u32 wrap_count | wrap_count * 68B wraps (see wire/wrap_codec.h)
///
/// This is the one serialization of lkh::RekeyMessage; transports, sims,
/// and snapshots that need a rekey payload on the wire all use it.
/// `decode` rejects bad magic, unknown versions, and truncated or
/// overlong payloads with a typed WireError — never an ENSURE abort.
///
/// Version 2 adds the leader *term*: in a replicated deployment every
/// commit is stamped with the term of the leader that authored it, and
/// members fence out payloads from a term older than the newest they have
/// accepted (a partitioned ex-leader cannot roll the group key). Version-1
/// payloads still decode, with term 0.
struct RekeyRecord {
  static constexpr std::uint8_t kVersion = 2;

  [[nodiscard]] static std::vector<std::uint8_t> encode(const lkh::RekeyMessage& message,
                                                        std::uint64_t term = 0);
  [[nodiscard]] static lkh::RekeyMessage decode(std::span<const std::uint8_t> bytes);

  /// Term-aware decode for fencing members and replicas.
  struct Framed {
    lkh::RekeyMessage message;
    std::uint64_t term = 0;
  };
  [[nodiscard]] static Framed decode_framed(std::span<const std::uint8_t> bytes);
};

}  // namespace gk::wire
