#include "wire/snapshot.h"

#include "common/bytes.h"
#include "wire/codec.h"

namespace gk::wire {

namespace {

constexpr char kMagic[4] = {'G', 'K', 'S', '1'};

}  // namespace

std::vector<std::uint8_t> Snapshot::encode() const {
  common::ByteWriter out;
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(kVersion);
  out.u8(static_cast<std::uint8_t>(scheme.size()));
  for (const char c : scheme) out.u8(static_cast<std::uint8_t>(c));
  out.u64(epoch);
  out.u64(id_watermark);
  out.u8(dek_state.has_value() ? 1 : 0);
  if (dek_state.has_value()) out.blob(*dek_state);
  out.u64(ledger.size());
  for (const auto& entry : ledger) {
    out.u64(entry.member);
    out.u64(entry.joined_epoch);
    out.u32(entry.partition);
  }
  out.blob(policy_state);
  return out.take();
}

Snapshot Snapshot::decode(std::span<const std::uint8_t> bytes) {
  Reader in(bytes);
  if (in.remaining() < 4) throw WireError(WireFault::kTruncated, "snapshot: no magic");
  for (const char c : kMagic)
    if (in.u8() != static_cast<std::uint8_t>(c))
      throw WireError(WireFault::kBadMagic, "not a versioned snapshot");
  const auto version = in.u8();
  if (version != kVersion)
    throw WireError(WireFault::kBadVersion,
                    "snapshot version " + std::to_string(version) + " unsupported");

  Snapshot snapshot;
  const auto name_length = in.u8();
  for (std::uint8_t i = 0; i < name_length; ++i)
    snapshot.scheme.push_back(static_cast<char>(in.u8()));
  snapshot.epoch = in.u64();
  snapshot.id_watermark = in.u64();
  const auto dek_present = in.u8();
  if (dek_present > 1)
    throw WireError(WireFault::kMalformed, "snapshot: bad dek-present flag");
  if (dek_present == 1) {
    const auto view = in.blob();
    snapshot.dek_state.emplace(view.begin(), view.end());
  }
  const auto ledger_count = in.u64();
  // Each entry is 20 bytes; bound the reserve by what the payload can hold.
  if (ledger_count * 20 > in.remaining())
    throw WireError(WireFault::kTruncated, "snapshot: ledger truncated");
  snapshot.ledger.reserve(static_cast<std::size_t>(ledger_count));
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < ledger_count; ++i) {
    LedgerEntry entry;
    entry.member = in.u64();
    entry.joined_epoch = in.u64();
    entry.partition = in.u32();
    if (i > 0 && entry.member <= previous)
      throw WireError(WireFault::kMalformed, "snapshot: ledger not sorted");
    previous = entry.member;
    snapshot.ledger.push_back(entry);
  }
  const auto policy = in.blob();
  snapshot.policy_state.assign(policy.begin(), policy.end());
  in.expect_exhausted("snapshot");
  return snapshot;
}

bool Snapshot::is_versioned(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  for (std::size_t i = 0; i < 4; ++i)
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i])) return false;
  return true;
}

}  // namespace gk::wire
