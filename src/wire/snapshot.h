#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gk::wire {

/// Versioned server-state snapshot: the one frame every scheme's
/// `save_state`/`restore_state` goes through.
///
///   'G' 'K' 'S' '1' | u8 version (= 1)
///   u8 scheme_len | scheme name bytes
///   u64 epoch | u64 id_watermark
///   u8 dek_present | [blob dek_state]        (absent for schemes whose
///                                             tree root IS the group key)
///   u64 ledger_count | count * (u64 member, u64 joined_epoch, u32 partition)
///   blob policy_state                        (opaque to this layer: trees,
///                                             queues, RNG streams, config)
///
/// The engine owns the common fields; the placement policy owns only the
/// `policy_state` blob. `decode` rejects bad magic, unknown versions, and
/// truncated/corrupted payloads with a typed WireError — never an ENSURE
/// abort — so a caller can discard a bad snapshot and fall back to resync.
///
/// Pre-refactor (version-0) snapshots carry no magic; `is_versioned`
/// distinguishes them so restore paths can route legacy bytes to the
/// per-scheme compatibility decoder.
struct Snapshot {
  static constexpr std::uint8_t kVersion = 1;

  struct LedgerEntry {
    std::uint64_t member = 0;
    std::uint64_t joined_epoch = 0;
    std::uint32_t partition = 0;
  };

  std::string scheme;
  std::uint64_t epoch = 0;
  std::uint64_t id_watermark = 0;
  std::optional<std::vector<std::uint8_t>> dek_state;
  std::vector<LedgerEntry> ledger;  ///< sorted ascending by member id
  std::vector<std::uint8_t> policy_state;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Snapshot decode(std::span<const std::uint8_t> bytes);

  /// True when `bytes` starts with the versioned-snapshot magic; false
  /// means a pre-refactor (version-0) per-scheme layout.
  [[nodiscard]] static bool is_versioned(std::span<const std::uint8_t> bytes) noexcept;
};

}  // namespace gk::wire
