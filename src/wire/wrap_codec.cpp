#include "wire/wrap_codec.h"

#include <cstring>

namespace gk::wire {

void encode_wrap(common::ByteWriter& out, const crypto::WrappedKey& wrap) {
  out.u64(crypto::raw(wrap.target_id));
  out.u64((std::uint64_t{wrap.target_version} << 32) | wrap.wrapping_version);
  out.u64(crypto::raw(wrap.wrapping_id));
  out.bytes(wrap.nonce);
  out.bytes(wrap.ciphertext);
  out.bytes(wrap.tag);
}

crypto::WrappedKey decode_wrap(Reader& in) {
  crypto::WrappedKey wrap;
  wrap.target_id = crypto::make_key_id(in.u64());
  const std::uint64_t versions = in.u64();
  wrap.target_version = static_cast<std::uint32_t>(versions >> 32);
  wrap.wrapping_version = static_cast<std::uint32_t>(versions);
  wrap.wrapping_id = crypto::make_key_id(in.u64());
  const auto nonce = in.bytes(wrap.nonce.size());
  const auto ciphertext = in.bytes(wrap.ciphertext.size());
  const auto tag = in.bytes(wrap.tag.size());
  std::memcpy(wrap.nonce.data(), nonce.data(), nonce.size());
  std::memcpy(wrap.ciphertext.data(), ciphertext.data(), ciphertext.size());
  std::memcpy(wrap.tag.data(), tag.data(), tag.size());
  return wrap;
}

}  // namespace gk::wire
