#include "wire/error.h"

namespace gk::wire {

const char* to_string(WireFault fault) noexcept {
  switch (fault) {
    case WireFault::kTruncated: return "truncated";
    case WireFault::kBadMagic: return "bad-magic";
    case WireFault::kBadVersion: return "bad-version";
    case WireFault::kMalformed: return "malformed";
    case WireFault::kSchemeMismatch: return "scheme-mismatch";
  }
  return "unknown";
}

}  // namespace gk::wire
