#include "wire/journal.h"

#include <algorithm>

#include "common/ensure.h"

namespace gk::wire {

namespace {

constexpr char kMagic[4] = {'G', 'K', 'J', '1'};

void write_magic(common::ByteWriter& out) {
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
}

}  // namespace

RekeyJournal::RekeyJournal() { write_magic(buffer_); }

void RekeyJournal::checkpoint(std::span<const std::uint8_t> server_state) {
  buffer_ = common::ByteWriter();
  write_magic(buffer_);
  buffer_.u8('B');
  buffer_.blob(server_state);
  records_ = 0;
  commits_since_checkpoint_ = 0;
  ++generation_;
}

void RekeyJournal::record_join(const workload::MemberProfile& profile) {
  buffer_.u8('J');
  buffer_.u64(workload::raw(profile.id));
  buffer_.u8(static_cast<std::uint8_t>(profile.member_class));
  buffer_.f64(profile.join_time);
  buffer_.f64(profile.duration);
  buffer_.f64(profile.loss_rate);
  ++records_;
}

void RekeyJournal::record_join_ack(crypto::KeyId leaf_id) {
  buffer_.u8('A');
  buffer_.u64(crypto::raw(leaf_id));
  ++records_;
}

void RekeyJournal::record_leave(workload::MemberId member) {
  buffer_.u8('L');
  buffer_.u64(workload::raw(member));
  ++records_;
}

void RekeyJournal::record_commit_begin(std::uint64_t epoch) {
  buffer_.u8('C');
  buffer_.u64(epoch);
  ++records_;
}

void RekeyJournal::record_commit_end(std::uint64_t epoch) {
  buffer_.u8('E');
  buffer_.u64(epoch);
  ++records_;
  ++commits_since_checkpoint_;
}

void RekeyJournal::record_term(std::uint64_t term) {
  buffer_.u8('T');
  buffer_.u64(term);
  ++records_;
}

void RekeyJournal::record_state_digest(const std::array<std::uint8_t, 32>& digest) {
  buffer_.u8('D');
  buffer_.bytes(digest);
  ++records_;
}

RekeyJournal::Replay RekeyJournal::parse(std::span<const std::uint8_t> bytes) {
  common::ByteReader in(bytes);
  GK_ENSURE_MSG(in.remaining() >= 4, "journal truncated: no magic");
  for (const char c : kMagic)
    GK_ENSURE_MSG(in.u8() == static_cast<std::uint8_t>(c), "not a rekey journal");

  Replay replay;
  bool base_seen = false;
  // A record whose bytes run out mid-field is a torn final write: replay the
  // complete prefix, discard the tail. Anything structurally invalid in the
  // complete prefix (unknown tag, ACK without a join, END without a BEGIN)
  // is corruption and throws.
  while (in.remaining() >= 1) {
    const auto tag = in.u8();
    switch (tag) {
      case 'B': {
        GK_ENSURE_MSG(!base_seen && replay.ops.empty(),
                      "journal corrupt: base checkpoint not first");
        if (in.remaining() < 8) return replay;  // torn tail
        const auto length = in.u64();
        if (in.remaining() < length) return replay;  // torn tail
        const auto view = in.bytes(static_cast<std::size_t>(length));
        replay.base_state.assign(view.begin(), view.end());
        base_seen = true;
        break;
      }
      case 'J': {
        if (in.remaining() < 8 + 1 + 24) return replay;  // torn tail
        Op op;
        op.kind = Op::Kind::kJoin;
        op.profile.id = workload::make_member_id(in.u64());
        const auto member_class = in.u8();
        GK_ENSURE_MSG(member_class <= 1, "journal corrupt: bad member class");
        op.profile.member_class = static_cast<workload::MemberClass>(member_class);
        op.profile.join_time = in.f64();
        op.profile.duration = in.f64();
        op.profile.loss_rate = in.f64();
        replay.ops.push_back(op);
        break;
      }
      case 'A': {
        if (in.remaining() < 8) return replay;  // torn tail
        GK_ENSURE_MSG(!replay.ops.empty() &&
                          replay.ops.back().kind == Op::Kind::kJoin &&
                          !replay.ops.back().granted_leaf.has_value(),
                      "journal corrupt: acknowledge without a pending join");
        replay.ops.back().granted_leaf = crypto::make_key_id(in.u64());
        break;
      }
      case 'L': {
        if (in.remaining() < 8) return replay;  // torn tail
        Op op;
        op.kind = Op::Kind::kLeave;
        op.member = workload::make_member_id(in.u64());
        replay.ops.push_back(op);
        break;
      }
      case 'C': {
        if (in.remaining() < 8) return replay;  // torn tail
        GK_ENSURE_MSG(!replay.interrupted_commit,
                      "journal corrupt: commit begun inside an open commit");
        Op op;
        op.kind = Op::Kind::kCommit;
        op.epoch = in.u64();
        op.term = replay.last_term;
        replay.ops.push_back(op);
        replay.interrupted_commit = true;
        replay.interrupted_epoch = op.epoch;
        break;
      }
      case 'E': {
        if (in.remaining() < 8) return replay;  // torn tail
        const auto epoch = in.u64();
        GK_ENSURE_MSG(replay.interrupted_commit && !replay.ops.empty() &&
                          replay.ops.back().kind == Op::Kind::kCommit &&
                          replay.ops.back().epoch == epoch,
                      "journal corrupt: commit end without matching begin");
        replay.ops.back().commit_finished = true;
        replay.interrupted_commit = false;
        break;
      }
      case 'T': {
        if (in.remaining() < 8) return replay;  // torn tail
        const auto term = in.u64();
        // A term may only move forward: a regression inside one stream means
        // a stale leader's records were spliced in (or local corruption).
        GK_ENSURE_MSG(term >= replay.last_term,
                      "journal corrupt: term regressed from "
                          << replay.last_term << " to " << term);
        Op op;
        op.kind = Op::Kind::kTerm;
        op.term = term;
        replay.ops.push_back(op);
        replay.last_term = term;
        break;
      }
      case 'D': {
        if (in.remaining() < 32) return replay;  // torn tail
        GK_ENSURE_MSG(!replay.interrupted_commit,
                      "journal corrupt: state digest inside an open commit");
        Op op;
        op.kind = Op::Kind::kDigest;
        const auto view = in.bytes(32);
        std::copy(view.begin(), view.end(), op.digest.begin());
        replay.ops.push_back(op);
        break;
      }
      default:
        GK_ENSURE_MSG(false, "journal corrupt: unknown record tag " << int{tag});
    }
  }
  return replay;
}

}  // namespace gk::wire
