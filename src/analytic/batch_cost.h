#pragma once

#include <cstdint>

namespace gk::analytic {

/// Appendix A: expected number of encrypted keys for one batched rekeying
/// of a balanced d-ary key tree.
///
/// Given `members` (N) leaves, `departures` (L) uniformly placed batch
/// departures (with an equal number of joins, J = L, per the appendix's
/// assumption), a level-i key is updated with probability
///   P_i = 1 - C(N - S_i, L) / C(N, L),     S_i = d^(h-i)
/// and each updated key is encrypted once per child:
///   Ne(N, L) = sum_{i=0}^{h-1} d * d^i * P_i.
///
/// `batch_rekey_cost` evaluates the formula exactly for full trees and, per
/// the appendix's closing remark ("a simple extension"), handles partially
/// full trees directly: height is ceil(logd N), level occupancy is capped
/// by the member count, and each key is re-encrypted once per actual child.
///
/// Edge cases: returns 0 when members <= 1 or departures == 0 (the paper's
/// model covers leave-driven cost; join-only epochs are cheaper and are
/// exercised by the simulator, not this formula).
[[nodiscard]] double batch_rekey_cost(double members, double departures, unsigned degree);

/// Integer-argument convenience (same evaluation). Kept for tests that
/// exercise exact full-tree sizes.
[[nodiscard]] double batch_rekey_cost_full_tree(std::uint64_t members, double departures,
                                                unsigned degree);

/// Probability that the level-i key of a full d-ary tree with N leaves is
/// updated when L departures are batched (Appendix A, eq. 11).
[[nodiscard]] double level_update_probability(std::uint64_t members, double departures,
                                              unsigned degree, unsigned level,
                                              unsigned height);

}  // namespace gk::analytic
