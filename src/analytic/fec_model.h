#pragma once

#include <vector>

#include "analytic/wka_bkr_model.h"

namespace gk::analytic {

/// Bandwidth model for proactive-FEC rekey transport in the style of
/// Yang et al [YLZL01], used for the Section 4.4 comparison.
///
/// The rekey payload of a tree is packed into FEC blocks of `block_size`
/// (k) source packets. The server initially multicasts each block with a
/// proactivity factor rho: round one carries ceil(rho * k) packets. A
/// receiver decodes a block once it holds any k of the packets sent for
/// it; after each round the server collects NACKs and multicasts enough
/// additional parity to cover the worst remaining deficit.
///
/// Approximations (documented in DESIGN.md): per-receiver packet losses are
/// independent Bernoulli(p); the expected worst-case deficit is computed
/// from the exact binomial survival function across the loss classes; and
/// rounds are modelled until the residual failure probability drops below
/// 1e-6.
struct FecParams {
  double source_packets = 0.0;  ///< total rekey payload packets for the tree
  unsigned block_size = 16;     ///< k
  double proactivity = 1.25;    ///< rho >= 1
  /// Interested receivers per block and their composition. For rekey
  /// payloads, every member of the tree needs some block, so the paper's
  /// convention is receivers = tree size (conservative) split per class.
  double receivers = 0.0;
  std::vector<LossClass> losses;
};

/// Expected packets transmitted for one block (initial + retransmission
/// rounds) until all interested receivers can decode it.
[[nodiscard]] double fec_block_cost(const FecParams& params);

/// Expected total packets for the whole payload:
/// ceil(source_packets / k) blocks, each at fec_block_cost.
[[nodiscard]] double fec_payload_cost(const FecParams& params);

}  // namespace gk::analytic
