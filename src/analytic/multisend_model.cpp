#include "analytic/multisend_model.h"

#include <cmath>

#include "common/ensure.h"

namespace gk::analytic {

unsigned multisend_replication(const MultiSendParams& params) {
  GK_ENSURE(!params.losses.empty());
  GK_ENSURE(params.target_delivery > 0.0 && params.target_delivery < 1.0);
  if (params.receivers <= 0.0 || params.payload_keys <= 0.0) return 1;

  constexpr unsigned kMaxReplication = 64;
  for (unsigned m = 1; m <= kMaxReplication; ++m) {
    // P[all receivers get all their keys] with independent losses:
    //   prod_c (1 - p_c^m)^{keys_per_receiver * R_c}
    double log_success = 0.0;
    for (const auto& cls : params.losses) {
      if (cls.fraction <= 0.0) continue;
      const double miss = std::pow(cls.rate, m);
      if (miss >= 1.0) return kMaxReplication;
      log_success += params.keys_per_receiver * params.receivers * cls.fraction *
                     std::log1p(-miss);
    }
    if (std::exp(log_success) >= params.target_delivery) return m;
  }
  return kMaxReplication;
}

double multisend_cost(const MultiSendParams& params) {
  return params.payload_keys * static_cast<double>(multisend_replication(params));
}

}  // namespace gk::analytic
