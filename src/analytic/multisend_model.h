#pragma once

#include <vector>

#include "analytic/wka_bkr_model.h"

namespace gk::analytic {

/// The multi-send baseline [MSEC]: every encrypted key is multicast with
/// the same fixed replication m, chosen as the smallest value for which the
/// whole group receives everything it needs with probability at least
/// `target_delivery`.
struct MultiSendParams {
  double payload_keys = 0.0;       ///< encrypted keys in the rekey message
  double keys_per_receiver = 8.0;  ///< keys of interest per member (~ tree height)
  double receivers = 0.0;          ///< group size
  std::vector<LossClass> losses;
  double target_delivery = 0.99;
};

/// The chosen uniform replication degree m.
[[nodiscard]] unsigned multisend_replication(const MultiSendParams& params);

/// Total transmissions: payload_keys * m.
[[nodiscard]] double multisend_cost(const MultiSendParams& params);

}  // namespace gk::analytic
