#include "analytic/wka_bkr_model.h"

#include <cmath>
#include <limits>

#include "analytic/batch_cost.h"
#include "common/ensure.h"
#include "common/math.h"

namespace gk::analytic {

double expected_transmissions(double receivers, const std::vector<LossClass>& losses) {
  GK_ENSURE(!losses.empty());
  if (receivers <= 0.0) return 0.0;

  // E[M] = sum_{m>=1} (1 - prod_c (1 - p_c^{m-1})^{R_c}).  The m = 1 term
  // is always 1; later terms decay geometrically, so truncate when the
  // survival probability drops below epsilon.
  constexpr double kEpsilon = 1e-10;
  constexpr int kMaxRounds = 10000;
  double expectation = 0.0;
  for (int m = 1; m <= kMaxRounds; ++m) {
    double log_all_done = 0.0;
    for (const auto& cls : losses) {
      if (cls.fraction <= 0.0) continue;
      GK_ENSURE(cls.rate >= 0.0 && cls.rate < 1.0);
      const double p_pow = std::pow(cls.rate, m - 1);
      if (p_pow >= 1.0) {
        log_all_done = -std::numeric_limits<double>::infinity();
        break;
      }
      log_all_done += receivers * cls.fraction * std::log1p(-p_pow);
    }
    const double survival = 1.0 - std::exp(log_all_done);
    expectation += survival;
    if (survival < kEpsilon) break;
  }
  return expectation;
}

namespace {

/// Probability that a subtree of `subtree` of the `members` leaves escapes
/// all `departures` (real-valued lgamma evaluation, as in batch_cost).
double untouched_probability(double members, double subtree, double departures) {
  if (departures <= 0.0 || subtree <= 0.0) return 1.0;
  if (members - subtree - departures < 0.0) return 0.0;
  const double log_ratio =
      std::lgamma(members - subtree + 1.0) -
      std::lgamma(members - subtree - departures + 1.0) -
      (std::lgamma(members + 1.0) - std::lgamma(members - departures + 1.0));
  return std::exp(log_ratio);
}

}  // namespace

double wka_bkr_cost(const WkaBkrParams& params) {
  GK_ENSURE(params.degree >= 2);
  if (params.members <= 1.0 || params.departures <= 0.0) return 0.0;
  GK_ENSURE(!params.losses.empty());

  // Equation (15) on the same (possibly partially full) tree structure as
  // batch_cost: each level-l key that updates is encrypted once per child,
  // and each encryption must reach the child's whole subtree, replicated
  // E[M] times per equation (14).
  const double members = params.members;
  const double departures = std::min(params.departures, members);
  const double d = static_cast<double>(params.degree);
  const unsigned height =
      tree_height(static_cast<std::uint64_t>(std::ceil(members)), params.degree);

  double total = 0.0;
  for (unsigned level = 0; level < height; ++level) {
    const double keys_in_level = std::min(
        std::pow(d, static_cast<double>(level)),
        std::max(1.0, members / std::pow(d, static_cast<double>(height - level))));
    const double subtree = members / keys_in_level;
    const double next_keys =
        (level + 1 < height)
            ? std::min(std::pow(d, static_cast<double>(level + 1)),
                       std::max(1.0, members / std::pow(
                                         d, static_cast<double>(height - level - 1))))
            : members;
    const double children = next_keys / keys_in_level;
    const double receivers_per_encryption = members / next_keys;  // S_{l+1}
    const double p_update = 1.0 - untouched_probability(members, subtree, departures);
    total += keys_in_level * p_update * children *
             expected_transmissions(receivers_per_encryption, params.losses);
  }
  return total;
}

double wka_bkr_forest_cost(const std::vector<WkaBkrParams>& trees) {
  double total = 0.0;
  for (const auto& tree : trees) total += wka_bkr_cost(tree);
  return total;
}

}  // namespace gk::analytic
