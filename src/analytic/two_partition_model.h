#pragma once

namespace gk::analytic {

/// Parameters of the Section 3.3 analytic model, defaulted to Table 1.
struct TwoPartitionParams {
  double group_size = 65536.0;     ///< N
  double rekey_period = 60.0;      ///< Tp, seconds
  unsigned degree = 4;             ///< key tree fan-out d
  unsigned s_period_epochs = 10;   ///< K = Ts / Tp
  double short_mean = 180.0;       ///< Ms, seconds (3 minutes)
  double long_mean = 10800.0;      ///< Ml, seconds (3 hours)
  double short_fraction = 0.8;     ///< alpha, fraction of class Cs joins
};

/// Steady-state flows of the two-class open queueing system (Fig. 2 and
/// equations (1)-(7) of the paper). All quantities are per rekey period.
struct TwoPartitionSteadyState {
  double joins = 0.0;              ///< J
  double class_short_pop = 0.0;    ///< Ncs
  double class_long_pop = 0.0;     ///< Ncl
  double class_short_leaves = 0.0; ///< Lcs = alpha * J
  double class_long_leaves = 0.0;  ///< Lcl = (1 - alpha) * J
  double s_partition_pop = 0.0;    ///< Ns
  double l_partition_pop = 0.0;    ///< Nl
  double s_departures = 0.0;       ///< Ls (true departures from S)
  double l_departures = 0.0;       ///< Ll (== Lm in steady state)
  double migrations = 0.0;         ///< Lm (S -> L moves per period)
};

/// Solve equations (1)-(7) for the given parameters.
[[nodiscard]] TwoPartitionSteadyState solve_steady_state(const TwoPartitionParams& params);

/// Probability a member with exponential mean `mean` departs within `t`
/// (equation (2)).
[[nodiscard]] double departure_probability(double t, double mean);

/// Rekeying cost per period, in encrypted keys, for each scheme
/// (equations (8), (9), (10) plus the K = 0 baseline).
[[nodiscard]] double one_keytree_cost(const TwoPartitionParams& params);
[[nodiscard]] double qt_cost(const TwoPartitionParams& params);
[[nodiscard]] double tt_cost(const TwoPartitionParams& params);
[[nodiscard]] double pt_cost(const TwoPartitionParams& params);

}  // namespace gk::analytic
