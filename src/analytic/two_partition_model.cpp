#include "analytic/two_partition_model.h"

#include <cmath>

#include "analytic/batch_cost.h"
#include "common/ensure.h"

namespace gk::analytic {

double departure_probability(double t, double mean) {
  GK_ENSURE(mean > 0.0);
  GK_ENSURE(t >= 0.0);
  return 1.0 - std::exp(-t / mean);
}

TwoPartitionSteadyState solve_steady_state(const TwoPartitionParams& p) {
  GK_ENSURE(p.group_size > 0.0);
  GK_ENSURE(p.rekey_period > 0.0);
  GK_ENSURE(p.short_mean > 0.0 && p.long_mean > 0.0);
  GK_ENSURE(p.short_fraction >= 0.0 && p.short_fraction <= 1.0);

  const double alpha = p.short_fraction;
  const double pr_short = departure_probability(p.rekey_period, p.short_mean);
  const double pr_long = departure_probability(p.rekey_period, p.long_mean);

  TwoPartitionSteadyState s;
  // From (3)-(5): Lcs = Ncs * Pr(Tp, Ms) = alpha * J and similarly for Cl,
  // with N = Ncs + Ncl closing the system.
  s.joins = p.group_size / (alpha / pr_short + (1.0 - alpha) / pr_long);
  s.class_short_pop = alpha * s.joins / pr_short;
  s.class_long_pop = (1.0 - alpha) * s.joins / pr_long;
  s.class_short_leaves = alpha * s.joins;
  s.class_long_leaves = (1.0 - alpha) * s.joins;

  // (6): members aged 0..K-1 periods reside in the S-partition.
  double s_pop = 0.0;
  for (unsigned i = 0; i < p.s_period_epochs; ++i) {
    const double age = static_cast<double>(i) * p.rekey_period;
    s_pop += alpha * s.joins * std::exp(-age / p.short_mean) +
             (1.0 - alpha) * s.joins * std::exp(-age / p.long_mean);
  }
  s.s_partition_pop = s_pop;
  s.l_partition_pop = p.group_size - s_pop;

  // (7): only members that survive the full S-period migrate.
  const double s_period = static_cast<double>(p.s_period_epochs) * p.rekey_period;
  s.migrations = alpha * s.joins * std::exp(-s_period / p.short_mean) +
                 (1.0 - alpha) * s.joins * std::exp(-s_period / p.long_mean);
  s.l_departures = s.migrations;  // steady state: Ll = Lm
  s.s_departures = s.joins - s.migrations;
  return s;
}

double one_keytree_cost(const TwoPartitionParams& p) {
  const auto s = solve_steady_state(p);
  return batch_rekey_cost(p.group_size, s.joins, p.degree);
}

double qt_cost(const TwoPartitionParams& p) {
  const auto s = solve_steady_state(p);
  // (8): the queue pays one encryption per resident; the L-partition is a
  // regular key tree absorbing Ll departures (and Lm joins, J = L).
  const double queue_cost = s.s_partition_pop;
  return queue_cost + batch_rekey_cost(s.l_partition_pop, s.l_departures, p.degree);
}

double tt_cost(const TwoPartitionParams& p) {
  const auto s = solve_steady_state(p);
  if (p.s_period_epochs == 0) return one_keytree_cost(p);
  // (9): the S-tree sees J member removals per period (true departures plus
  // migrations) and J joins.
  return batch_rekey_cost(s.s_partition_pop, s.joins, p.degree) +
         batch_rekey_cost(s.l_partition_pop, s.l_departures, p.degree);
}

double pt_cost(const TwoPartitionParams& p) {
  const auto s = solve_steady_state(p);
  // (10): the oracle routes each class to its own tree; no migrations.
  return batch_rekey_cost(s.class_short_pop, s.class_short_leaves, p.degree) +
         batch_rekey_cost(s.class_long_pop, s.class_long_leaves, p.degree);
}

}  // namespace gk::analytic
