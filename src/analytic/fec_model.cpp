#include "analytic/fec_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.h"

namespace gk::analytic {
namespace {

/// log C(n, k) for integer arguments.
double log_choose(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

/// Binomial pmf P[Bin(n, q) = x].
double binom_pmf(int n, double q, int x) {
  if (x < 0 || x > n) return 0.0;
  if (q <= 0.0) return x == 0 ? 1.0 : 0.0;
  if (q >= 1.0) return x == n ? 1.0 : 0.0;
  return std::exp(log_choose(n, x) + x * std::log(q) + (n - x) * std::log1p(-q));
}

/// Deficit distribution after receiving from `sent` packets with per-packet
/// delivery probability q, starting from deficit `start` (> 0):
/// deficit' = max(0, start - Bin(sent, q)).
void apply_round(std::vector<double>& deficit_pmf, int sent, double q) {
  const int k = static_cast<int>(deficit_pmf.size()) - 1;
  std::vector<double> next(deficit_pmf.size(), 0.0);
  next[0] = deficit_pmf[0];
  for (int d = 1; d <= k; ++d) {
    const double mass = deficit_pmf[static_cast<std::size_t>(d)];
    if (mass <= 0.0) continue;
    for (int received = 0; received <= sent; ++received) {
      const double p = binom_pmf(sent, q, received);
      if (p <= 0.0) continue;
      const int remaining = std::max(0, d - received);
      next[static_cast<std::size_t>(remaining)] += mass * p;
      if (received >= d) {
        // All larger receive-counts also clear the deficit; fold the tail
        // in one step to keep the loop O(sent).
      }
    }
  }
  deficit_pmf = std::move(next);
}

}  // namespace

double fec_block_cost(const FecParams& params) {
  GK_ENSURE(params.block_size >= 1);
  GK_ENSURE(params.proactivity >= 1.0);
  GK_ENSURE(!params.losses.empty());
  if (params.receivers <= 0.0) return 0.0;

  const int k = static_cast<int>(params.block_size);
  const int initial = static_cast<int>(std::ceil(params.proactivity * k));

  // Per-class deficit distributions after round one.
  struct ClassState {
    double receivers = 0.0;
    double loss = 0.0;
    std::vector<double> deficit;  // index = missing packets, 0 = decoded
  };
  std::vector<ClassState> classes;
  for (const auto& cls : params.losses) {
    if (cls.fraction <= 0.0) continue;
    ClassState state;
    state.receivers = params.receivers * cls.fraction;
    state.loss = cls.rate;
    state.deficit.assign(static_cast<std::size_t>(k) + 1, 0.0);
    const double q = 1.0 - cls.rate;
    for (int received = 0; received <= initial; ++received) {
      const double p = binom_pmf(initial, q, received);
      const int deficit = std::max(0, k - received);
      state.deficit[static_cast<std::size_t>(deficit)] += p;
    }
    classes.push_back(std::move(state));
  }

  double total_sent = initial;
  constexpr int kMaxRounds = 64;
  constexpr double kResidual = 1e-6;

  for (int round = 0; round < kMaxRounds; ++round) {
    // P[some receiver still undecoded] = 1 - prod_c P[decoded]^{R_c}.
    double log_all_done = 0.0;
    for (const auto& cls : classes)
      log_all_done += cls.receivers * std::log(std::max(cls.deficit[0], 1e-300));
    if (1.0 - std::exp(log_all_done) < kResidual) break;

    // BKR-style feedback: the server learns the worst deficit and sends
    // that many fresh parity packets. E[max deficit] over independent
    // receivers: sum_j P[max > j].
    double expected_max = 0.0;
    const int kmax = k;
    for (int j = 0; j < kmax; ++j) {
      double log_le = 0.0;
      for (const auto& cls : classes) {
        double cdf = 0.0;
        for (int d = 0; d <= j; ++d) cdf += cls.deficit[static_cast<std::size_t>(d)];
        cdf = std::min(cdf, 1.0);
        log_le += cls.receivers * std::log(std::max(cdf, 1e-300));
      }
      expected_max += 1.0 - std::exp(log_le);
    }
    const int sent = std::max(1, static_cast<int>(std::ceil(expected_max)));
    total_sent += sent;

    for (auto& cls : classes) apply_round(cls.deficit, sent, 1.0 - cls.loss);
  }
  return total_sent;
}

double fec_payload_cost(const FecParams& params) {
  if (params.source_packets <= 0.0) return 0.0;
  const double blocks =
      std::ceil(params.source_packets / static_cast<double>(params.block_size));
  return blocks * fec_block_cost(params);
}

}  // namespace gk::analytic
