#include "analytic/batch_cost.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"
#include "common/math.h"

namespace gk::analytic {
namespace {

/// C(n - s, l) / C(n, l) with real-valued arguments via lgamma, so the
/// steady-state model's fractional populations evaluate directly.
double untouched_probability(double n, double s, double l) {
  if (l <= 0.0 || s <= 0.0) return 1.0;
  if (n - s - l < 0.0) return 0.0;
  const double log_ratio = std::lgamma(n - s + 1.0) - std::lgamma(n - s - l + 1.0) -
                           (std::lgamma(n + 1.0) - std::lgamma(n - l + 1.0));
  return std::exp(log_ratio);
}

}  // namespace

double level_update_probability(std::uint64_t members, double departures, unsigned degree,
                                unsigned level, unsigned height) {
  GK_ENSURE(degree >= 2);
  GK_ENSURE(level < height);
  const double subtree = static_cast<double>(ipow(degree, height - level));
  return 1.0 - untouched_probability(static_cast<double>(members), subtree, departures);
}

double batch_rekey_cost_full_tree(std::uint64_t members, double departures,
                                  unsigned degree) {
  return batch_rekey_cost(static_cast<double>(members), departures, degree);
}

double batch_rekey_cost(double members, double departures, unsigned degree) {
  GK_ENSURE(degree >= 2);
  if (members <= 1.0 || departures <= 0.0) return 0.0;
  departures = std::min(departures, members);

  // Appendix A, extended to partially full trees: a balanced tree over N
  // leaves has height h = ceil(logd N); level i holds
  //   n_i = min(d^i, N / d^(h-i))   (at least one node — the root)
  // occupied keys, each covering S_i = N / n_i leaves on average and
  // fanning out to S_i / S_{i+1} children. A level-i key updates with
  // probability P_i = 1 - C(N - S_i, L) / C(N, L) and is re-encrypted once
  // per child. For full trees this reduces exactly to
  // Ne(N, L) = sum d * d^i * P_i (equation 12).
  const unsigned height =
      tree_height(static_cast<std::uint64_t>(std::ceil(members)), degree);
  const double d = static_cast<double>(degree);

  double cost = 0.0;
  for (unsigned level = 0; level < height; ++level) {
    const double keys_in_level = std::min(
        std::pow(d, static_cast<double>(level)),
        std::max(1.0, members / std::pow(d, static_cast<double>(height - level))));
    const double subtree = members / keys_in_level;  // S_i
    const double next_keys =
        (level + 1 < height)
            ? std::min(std::pow(d, static_cast<double>(level + 1)),
                       std::max(1.0, members / std::pow(
                                         d, static_cast<double>(height - level - 1))))
            : members;  // "level h" nodes are the leaves themselves
    const double children = next_keys / keys_in_level;
    const double p_update = 1.0 - untouched_probability(members, subtree, departures);
    cost += keys_in_level * p_update * children;
  }
  return cost;
}

}  // namespace gk::analytic
