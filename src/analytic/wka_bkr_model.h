#pragma once

#include <vector>

namespace gk::analytic {

/// One stratum of a tree's receiver population: a fraction of the members
/// sharing (approximately) one loss rate.
struct LossClass {
  double rate = 0.0;      ///< independent per-packet loss probability
  double fraction = 0.0;  ///< share of the tree's members (sums to 1)
};

/// Inputs for the Appendix B WKA-BKR bandwidth model, extended to
/// heterogeneous receiver loss (Section 4.3): the expected number of
/// receivers of a level-l key is split across the loss classes in
/// proportion to their population shares.
struct WkaBkrParams {
  double members = 65536.0;   ///< N in this key tree
  double departures = 256.0;  ///< L batched departures from this tree
  unsigned degree = 4;        ///< d
  std::vector<LossClass> losses;
};

/// E[M]: expected number of times one encryption must be transmitted until
/// all `receivers` interested members have it, where the receivers are
/// composed per `losses` (equation (14), generalized to a product over
/// classes). `receivers` may be fractional.
[[nodiscard]] double expected_transmissions(double receivers,
                                            const std::vector<LossClass>& losses);

/// E[V] of equation (15): the expected total encrypted-key transmissions
/// (proactive replicas plus retransmissions) for one batched rekey of this
/// tree under WKA-BKR. Non-power-of-d sizes interpolate between the two
/// enclosing full trees, as in batch_cost.
[[nodiscard]] double wka_bkr_cost(const WkaBkrParams& params);

/// Multi-tree composition: total cost of a forest where tree t holds
/// `trees[t].members` receivers with composition `trees[t].losses`, and the
/// batch departures split proportionally to tree size (Section 4.3's
/// evaluation convention).
[[nodiscard]] double wka_bkr_forest_cost(const std::vector<WkaBkrParams>& trees);

}  // namespace gk::analytic
