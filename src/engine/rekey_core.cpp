#include "engine/rekey_core.h"

#include <algorithm>

#include "common/ensure.h"
#include "wire/error.h"

namespace gk::engine {

RekeyCore::RekeyCore(std::unique_ptr<PlacementPolicy> policy)
    : policy_(std::move(policy)) {
  GK_ENSURE_MSG(policy_ != nullptr, "RekeyCore needs a placement policy");
}

Registration RekeyCore::join(const workload::MemberProfile& profile) {
  GK_ENSURE_MSG(ledger_.count(workload::raw(profile.id)) == 0,
                "member " << workload::raw(profile.id) << " already joined");
  auto admission = policy_->admit(profile);
  ledger_.emplace(workload::raw(profile.id),
                  LedgerEntry{epoch_, admission.partition});
  ++staged_joins_;
  return admission.registration;
}

void RekeyCore::leave(workload::MemberId member) {
  const auto it = ledger_.find(workload::raw(member));
  GK_ENSURE_MSG(it != ledger_.end(), "member " << workload::raw(member) << " unknown");
  policy_->evict(member, it->second.partition);
  if (policy_->info().split_partitions && it->second.partition == 0)
    ++staged_s_leaves_;
  else
    ++staged_l_leaves_;
  ledger_.erase(it);
}

void RekeyCore::run_migrations(EpochOutput& out) {
  const auto period = policy_->info().migrate_after;
  if (period == 0) return;
  std::vector<workload::MemberId> migrants;
  for (const auto& [raw_id, entry] : ledger_) {
    if (entry.partition == 0 && epoch_ >= entry.joined_epoch + period)
      migrants.push_back(workload::make_member_id(raw_id));
  }
  // Deterministic migration order: the ledger is unordered, and a
  // journal-replayed server must move migrants in the exact sequence the
  // crash-free run did.
  std::sort(migrants.begin(), migrants.end(),
            [](auto a, auto b) { return workload::raw(a) < workload::raw(b); });
  for (const auto member : migrants) {
    // Flip the ledger first: policies that notify per-operation observers
    // (OFT) do so from inside migrate(), and those callbacks resolve the
    // migrant's partition through this ledger.
    ledger_[workload::raw(member)].partition = 1;
    const auto new_leaf = policy_->migrate(member);
    if (new_leaf) relocations_.push_back({member, *new_leaf});
  }
  out.migrations = migrants.size();
}

EpochOutput RekeyCore::end_epoch() {
  EpochOutput out;
  out.epoch = epoch_;
  out.joins = staged_joins_;
  out.s_departures = staged_s_leaves_;
  out.l_departures = staged_l_leaves_;

  policy_->epoch_begin();
  relocations_.clear();
  run_migrations(out);

  out.message = policy_->emit(epoch_);

  EpochCounts counts;
  counts.joins = out.joins;
  counts.s_departures = out.s_departures;
  counts.l_departures = out.l_departures;
  counts.migrations = out.migrations;
  policy_->apply_dek(counts, out.message);

  ++epoch_;
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  policy_->epoch_reset();
  return out;
}

crypto::VersionedKey RekeyCore::group_key() const { return policy_->group_key(); }

crypto::KeyId RekeyCore::group_key_id() const { return policy_->group_key_id(); }

const RekeyCore::LedgerEntry& RekeyCore::entry_of(workload::MemberId member) const {
  const auto it = ledger_.find(workload::raw(member));
  GK_ENSURE_MSG(it != ledger_.end(), "member " << workload::raw(member) << " unknown");
  return it->second;
}

std::vector<crypto::KeyId> RekeyCore::member_path(workload::MemberId member) const {
  return policy_->member_path(member, entry_of(member).partition);
}

std::uint32_t RekeyCore::partition_of(workload::MemberId member) const {
  return entry_of(member).partition;
}

std::vector<std::size_t> RekeyCore::partition_census() const {
  std::vector<std::size_t> census;
  for (const auto& [raw_id, entry] : ledger_) {
    if (entry.partition >= census.size()) census.resize(entry.partition + 1, 0);
    ++census[entry.partition];
  }
  return census;
}

std::vector<std::uint8_t> RekeyCore::save_state() const {
  GK_ENSURE_MSG(staged_joins_ == 0 && staged_s_leaves_ == 0 && staged_l_leaves_ == 0,
                "commit staged changes before saving server state");
  wire::Snapshot snapshot;
  snapshot.scheme = policy_->info().name;
  snapshot.epoch = epoch_;
  snapshot.id_watermark = policy_->ids()->watermark();
  if (const auto* manager = policy_->dek()) {
    common::ByteWriter dek_bytes;
    manager->save_state(dek_bytes);
    snapshot.dek_state = dek_bytes.take();
  }
  std::vector<std::uint64_t> raw_ids;
  raw_ids.reserve(ledger_.size());
  for (const auto& [raw_id, entry] : ledger_) raw_ids.push_back(raw_id);
  std::sort(raw_ids.begin(), raw_ids.end());
  snapshot.ledger.reserve(raw_ids.size());
  for (const auto raw_id : raw_ids) {
    const auto& entry = ledger_.at(raw_id);
    snapshot.ledger.push_back({raw_id, entry.joined_epoch, entry.partition});
  }
  snapshot.policy_state = policy_->save_policy_state();
  return snapshot.encode();
}

void RekeyCore::restore_state(std::span<const std::uint8_t> bytes) {
  std::uint64_t watermark = 0;
  if (wire::Snapshot::is_versioned(bytes)) {
    auto snapshot = wire::Snapshot::decode(bytes);
    if (snapshot.scheme != policy_->info().name)
      throw wire::WireError(wire::WireFault::kSchemeMismatch,
                            "snapshot is for scheme '" + snapshot.scheme +
                                "', this server runs '" + policy_->info().name + "'");
    epoch_ = snapshot.epoch;
    watermark = snapshot.id_watermark;
    policy_->restore_policy_state(snapshot.policy_state);
    if (auto* manager = policy_->dek()) {
      if (!snapshot.dek_state.has_value())
        throw wire::WireError(wire::WireFault::kMalformed,
                              "snapshot is missing the DEK section");
      common::ByteReader dek_bytes(*snapshot.dek_state);
      manager->restore_state(dek_bytes);
      if (!dek_bytes.exhausted())
        throw wire::WireError(wire::WireFault::kMalformed,
                              "snapshot DEK section has trailing bytes");
    }
    ledger_.clear();
    ledger_.reserve(snapshot.ledger.size());
    for (const auto& entry : snapshot.ledger)
      ledger_.emplace(entry.member, LedgerEntry{entry.joined_epoch, entry.partition});
  } else {
    // Pre-refactor (version-0) snapshot: the policy decodes the old
    // scheme-specific layout and hands back the fields the core owns.
    auto legacy = policy_->restore_legacy(bytes);
    epoch_ = legacy.epoch;
    watermark = legacy.id_watermark;
    ledger_.clear();
    ledger_.reserve(legacy.ledger.size());
    for (const auto& entry : legacy.ledger) {
      GK_ENSURE_MSG(
          ledger_.emplace(entry.member, LedgerEntry{entry.joined_epoch, entry.partition})
              .second,
          "server state corrupt: duplicate member record");
    }
  }
  policy_->ids()->reset_to(watermark);
  relocations_.clear();
  staged_joins_ = 0;
  staged_s_leaves_ = 0;
  staged_l_leaves_ = 0;
  policy_->epoch_reset();
}

std::vector<PathKey> RekeyCore::member_path_keys(workload::MemberId member) const {
  return policy_->member_path_keys(member, entry_of(member).partition);
}

crypto::Key128 RekeyCore::member_individual_key(workload::MemberId member) const {
  return policy_->member_individual_key(member, entry_of(member).partition);
}

crypto::KeyId RekeyCore::member_leaf_id(workload::MemberId member) const {
  return policy_->member_leaf_id(member, entry_of(member).partition);
}

void RekeyCore::reserve(std::size_t expected_members) {
  policy_->reserve(expected_members);
  ledger_.reserve(expected_members);
}

}  // namespace gk::engine
