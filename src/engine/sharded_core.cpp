#include "engine/sharded_core.h"

#include <utility>

#include "common/bytes.h"
#include "common/ensure.h"
#include "common/thread_pool.h"
#include "wire/error.h"
#include "wire/snapshot.h"

namespace gk::engine {

namespace {

/// splitmix64 finalizer: sequential member ids (the common workload) spread
/// uniformly over shards instead of striping.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedRekeyCore::ShardedRekeyCore(
    std::vector<std::unique_ptr<PlacementPolicy>> shard_policies, Rng top_rng)
    : top_ids_(lkh::IdAllocator::create()), dek_(top_rng, top_ids_) {
  GK_ENSURE_MSG(shard_policies.size() >= 2,
                "ShardedRekeyCore needs at least 2 shards (use CoreServer for 1)");
  shards_.reserve(shard_policies.size());
  for (auto& policy : shard_policies) {
    GK_ENSURE_MSG(policy != nullptr, "sharded engine: null shard policy");
    GK_ENSURE_MSG(policy->info().durable,
                  "sharded engine requires a durable scheme, '"
                      << policy->info().name << "' is not");
    if (shards_.empty())
      scheme_ = policy->info().name;
    else
      GK_ENSURE_MSG(policy->info().name == scheme_,
                    "sharded engine: mixed schemes '" << scheme_ << "' and '"
                                                      << policy->info().name << "'");
    shards_.push_back(std::make_unique<RekeyCore>(std::move(policy)));
  }
  shard_slots_.resize(shards_.size());
  shard_arrivals_.assign(shards_.size(), 0);
}

std::uint32_t ShardedRekeyCore::shard_of(workload::MemberId member) const noexcept {
  return static_cast<std::uint32_t>(mix64(workload::raw(member)) % shards_.size());
}

Registration ShardedRekeyCore::apply_join(const workload::MemberProfile& profile) {
  const auto shard = shard_of(profile.id);
  shard_arrivals_[shard] = 1;
  return shards_[shard]->join(profile);
}

void ShardedRekeyCore::apply_leave(workload::MemberId member) {
  shards_[shard_of(member)]->leave(member);
}

Registration ShardedRekeyCore::join(const workload::MemberProfile& profile) {
  return apply_join(profile);
}

void ShardedRekeyCore::leave(workload::MemberId member) { apply_leave(member); }

void ShardedRekeyCore::stage_join(const workload::MemberProfile& profile) {
  staged_.push({true, profile});
}

void ShardedRekeyCore::stage_leave(workload::MemberId member) {
  workload::MemberProfile profile;
  profile.id = member;
  staged_.push({false, profile});
}

void ShardedRekeyCore::drain_staged() {
  admissions_.clear();
  evictions_.clear();
  while (auto mutation = staged_.try_pop()) {
    if (mutation->is_join)
      admissions_.push_back({mutation->profile.id, apply_join(mutation->profile)});
    else {
      apply_leave(mutation->profile.id);
      evictions_.push_back(mutation->profile.id);
    }
  }
}

void ShardedRekeyCore::apply_top_dek(EpochOutput& out) {
  const bool compromised = out.s_departures + out.l_departures > 0;
  if (compromised) {
    // Someone who knew the DEK left: rotate, then re-wrap under every
    // nonempty shard's (freshly committed) group key, in shard order.
    dek_.rotate();
    for (const auto& shard : shards_) {
      if (shard->size() == 0) continue;
      const auto kek = shard->group_key();
      dek_.wrap_under(kek.key, shard->group_key_id(), kek.version, out.message);
    }
  } else if (out.joins > 0) {
    // Join-only epoch: one wrap under the previous DEK serves every
    // incumbent; shards with arrivals get their own audience wraps.
    dek_.rotate();
    dek_.wrap_under_previous(out.message);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shard_arrivals_[s] == 0 || shards_[s]->size() == 0) continue;
      const auto kek = shards_[s]->group_key();
      dek_.wrap_under(kek.key, shards_[s]->group_key_id(), kek.version, out.message);
    }
  }
  // Migration-only or idle epochs leave the DEK alone.
  dek_.stamp(out.message);
}

EpochOutput ShardedRekeyCore::end_epoch() {
  // Step 1: pull staged mutations through the epoch barrier (committing
  // thread only; racing pushes land in the next epoch).
  drain_staged();

  // Step 2: shard-parallel emission into pre-sized slots. Shard cores hold
  // no executor, so there is no nested parallel_for; each slot is written
  // by exactly one task and the bytes per shard are scheduling-independent.
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(shards_.size(), 1, [this](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s)
        shard_slots_[s] = shards_[s]->end_epoch();
    });
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s)
      shard_slots_[s] = shards_[s]->end_epoch();
  }

  // Step 3: lock-free merge — concatenate slots in shard order, then run
  // the top DEK step on the committing thread.
  EpochOutput out;
  out.epoch = epoch_;
  out.message.epoch = epoch_;
  std::size_t total_wraps = 0;
  for (const auto& slot : shard_slots_) total_wraps += slot.message.wraps.size();
  out.message.wraps.reserve(total_wraps + shards_.size() + 2);
  for (auto& slot : shard_slots_) {
    out.migrations += slot.migrations;
    out.s_departures += slot.s_departures;
    out.l_departures += slot.l_departures;
    out.joins += slot.joins;
    out.message.append(std::move(slot.message));
  }
  out.message.epoch = epoch_;
  apply_top_dek(out);

  shard_arrivals_.assign(shards_.size(), 0);
  ++epoch_;
  return out;
}

crypto::VersionedKey ShardedRekeyCore::group_key() const { return dek_.current(); }

crypto::KeyId ShardedRekeyCore::group_key_id() const { return dek_.id(); }

std::size_t ShardedRekeyCore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::vector<crypto::KeyId> ShardedRekeyCore::member_path(
    workload::MemberId member) const {
  auto path = shards_[shard_of(member)]->member_path(member);
  path.push_back(dek_.id());
  return path;
}

std::vector<PathKey> ShardedRekeyCore::member_path_keys(
    workload::MemberId member) const {
  auto keys = shards_[shard_of(member)]->member_path_keys(member);
  keys.push_back({dek_.id(), dek_.current()});
  return keys;
}

crypto::Key128 ShardedRekeyCore::member_individual_key(
    workload::MemberId member) const {
  return shards_[shard_of(member)]->member_individual_key(member);
}

crypto::KeyId ShardedRekeyCore::member_leaf_id(workload::MemberId member) const {
  return shards_[shard_of(member)]->member_leaf_id(member);
}

void ShardedRekeyCore::reserve(std::size_t expected_members) {
  // Hash routing balances members across shards; a little headroom absorbs
  // the binomial spread around the mean.
  const std::size_t per_shard =
      expected_members / shards_.size() + expected_members / (4 * shards_.size()) + 16;
  for (auto& shard : shards_) shard->reserve(per_shard);
}

void ShardedRekeyCore::set_wrap_cache(bool enabled) {
  for (auto& shard : shards_) shard->set_wrap_cache(enabled);
}

lkh::TreeStats ShardedRekeyCore::tree_stats() const {
  lkh::TreeStats merged;
  for (const auto& shard : shards_) merged.merge(shard->policy().tree_stats());
  return merged;
}

std::vector<std::uint8_t> ShardedRekeyCore::save_state() const {
  GK_ENSURE_MSG(staged_.approx_empty(),
                "commit queue-staged changes before saving server state");
  wire::Snapshot snapshot;
  snapshot.scheme = "sharded+" + scheme_;
  snapshot.epoch = epoch_;
  snapshot.id_watermark = top_ids_->watermark();
  common::ByteWriter dek_bytes;
  dek_.save_state(dek_bytes);
  snapshot.dek_state = dek_bytes.take();
  // Ledgers live inside the shard cores; the top-level ledger stays empty
  // and the policy section carries one nested snapshot per shard.
  common::ByteWriter shard_bytes;
  shard_bytes.u32(static_cast<std::uint32_t>(shards_.size()));
  for (const auto& shard : shards_) shard_bytes.blob(shard->save_state());
  snapshot.policy_state = shard_bytes.take();
  return snapshot.encode();
}

void ShardedRekeyCore::restore_state(std::span<const std::uint8_t> bytes) {
  GK_ENSURE_MSG(staged_.approx_empty(),
                "commit queue-staged changes before restoring server state");
  auto snapshot = wire::Snapshot::decode(bytes);
  const std::string expected = "sharded+" + scheme_;
  if (snapshot.scheme != expected)
    throw wire::WireError(wire::WireFault::kSchemeMismatch,
                          "snapshot is for scheme '" + snapshot.scheme +
                              "', this server runs '" + expected + "'");
  if (!snapshot.dek_state.has_value())
    throw wire::WireError(wire::WireFault::kMalformed,
                          "sharded snapshot is missing the DEK section");
  common::ByteReader shard_bytes(snapshot.policy_state);
  const auto count = shard_bytes.u32();
  GK_ENSURE_MSG(count == shards_.size(), "snapshot has " << count
                                                         << " shards, this server has "
                                                         << shards_.size());
  for (auto& shard : shards_) shard->restore_state(shard_bytes.blob());
  if (!shard_bytes.exhausted())
    throw wire::WireError(wire::WireFault::kMalformed,
                          "sharded snapshot has trailing shard bytes");
  common::ByteReader dek_bytes(*snapshot.dek_state);
  dek_.restore_state(dek_bytes);
  if (!dek_bytes.exhausted())
    throw wire::WireError(wire::WireFault::kMalformed,
                          "snapshot DEK section has trailing bytes");
  epoch_ = snapshot.epoch;
  top_ids_->reset_to(snapshot.id_watermark);
  shard_arrivals_.assign(shards_.size(), 0);
  admissions_.clear();
  evictions_.clear();
}

}  // namespace gk::engine
