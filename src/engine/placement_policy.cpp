#include "engine/placement_policy.h"

#include "common/ensure.h"

namespace gk::engine {

std::optional<crypto::KeyId> PlacementPolicy::migrate(workload::MemberId /*member*/) {
  GK_ENSURE_MSG(false, "policy '" << info().name << "' does not migrate members");
  return std::nullopt;
}

void PlacementPolicy::apply_dek(const EpochCounts& counts, lkh::RekeyMessage& out) {
  auto* manager = dek();
  if (manager == nullptr) return;
  const bool compromised = counts.s_departures + counts.l_departures > 0;
  if (compromised) {
    // Someone who knew the DEK left: rotate and re-wrap for every audience.
    manager->rotate();
    wrap_compromised(out);
  } else if (counts.joins > 0) {
    // Join-only epoch: one wrap under the previous DEK serves every
    // incumbent; arrivals get their own audience wraps.
    manager->rotate();
    manager->wrap_under_previous(out);
    wrap_arrivals(out);
  }
  // Migration-only or idle epochs leave the DEK alone (Section 3.2 phase 3:
  // migrants are still authorized members).
  manager->stamp(out);
}

crypto::VersionedKey PlacementPolicy::group_key() const {
  const auto* manager = dek();
  GK_ENSURE_MSG(manager != nullptr,
                "policy '" << info().name << "' must override group_key()");
  return manager->current();
}

crypto::KeyId PlacementPolicy::group_key_id() const {
  const auto* manager = dek();
  GK_ENSURE_MSG(manager != nullptr,
                "policy '" << info().name << "' must override group_key_id()");
  return manager->id();
}

std::vector<std::uint8_t> PlacementPolicy::save_policy_state() const {
  GK_ENSURE_MSG(false, "policy '" << info().name << "' is not durable");
  return {};
}

void PlacementPolicy::restore_policy_state(std::span<const std::uint8_t> /*bytes*/) {
  GK_ENSURE_MSG(false, "policy '" << info().name << "' is not durable");
}

PlacementPolicy::LegacyState PlacementPolicy::restore_legacy(
    std::span<const std::uint8_t> /*bytes*/) {
  GK_ENSURE_MSG(false,
                "policy '" << info().name << "' has no version-0 snapshot format");
  return {};
}

std::vector<PathKey> PlacementPolicy::member_path_keys(workload::MemberId /*member*/,
                                                       std::uint32_t /*partition*/) const {
  GK_ENSURE_MSG(false, "policy '" << info().name << "' is not durable");
  return {};
}

crypto::Key128 PlacementPolicy::member_individual_key(workload::MemberId /*member*/,
                                                      std::uint32_t /*partition*/) const {
  GK_ENSURE_MSG(false, "policy '" << info().name << "' is not durable");
  return {};
}

crypto::KeyId PlacementPolicy::member_leaf_id(workload::MemberId /*member*/,
                                              std::uint32_t /*partition*/) const {
  GK_ENSURE_MSG(false, "policy '" << info().name << "' is not durable");
  return {};
}

void PlacementPolicy::wrap_compromised(lkh::RekeyMessage& /*out*/) {
  GK_ENSURE_MSG(false,
                "policy '" << info().name << "' has a DEK but no compromise wrap");
}

void PlacementPolicy::wrap_arrivals(lkh::RekeyMessage& /*out*/) {
  GK_ENSURE_MSG(false,
                "policy '" << info().name << "' has a DEK but no arrivals wrap");
}

}  // namespace gk::engine
