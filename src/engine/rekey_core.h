#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/placement_policy.h"
#include "engine/server.h"

namespace gk::engine {

/// The *mechanism* half of every rekey scheme: batches membership changes
/// into epochs, runs the Ts = K*Tp migration clock, sequences emission and
/// the DEK step, tracks each member's partition in one ledger, and owns the
/// canonical wire::Snapshot save/restore frame. The scheme-specific half —
/// where members land, what substrates exist, how the DEK reaches each
/// audience — lives in the PlacementPolicy handed to the constructor.
///
/// Scheme servers (OneKeyTreeServer, QtServer, ...) are thin facades over
/// one of these; nothing scheme-shaped lives outside the policy.
class RekeyCore {
 public:
  explicit RekeyCore(std::unique_ptr<PlacementPolicy> policy);

  /// Stage a join: the policy places and inserts, the ledger records the
  /// partition and join epoch. Throws on duplicate join.
  Registration join(const workload::MemberProfile& profile);

  /// Stage a departure of a current member.
  void leave(workload::MemberId member);

  /// Commit the epoch: migration clock, policy emission, DEK step,
  /// counters. Output is byte-identical to the pre-split scheme servers.
  EpochOutput end_epoch();

  [[nodiscard]] crypto::VersionedKey group_key() const;
  [[nodiscard]] crypto::KeyId group_key_id() const;
  [[nodiscard]] std::size_t size() const noexcept { return ledger_.size(); }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(workload::MemberId member) const;

  /// The partition the ledger currently records for `member`.
  [[nodiscard]] std::uint32_t partition_of(workload::MemberId member) const;

  /// Member count per partition, indexed by partition id (S is 0 for
  /// split-partition schemes; loss-bin schemes use one slot per tree).
  [[nodiscard]] std::vector<std::size_t> partition_census() const;

  /// New leaf ids assigned by migrations in the last end_epoch() (schemes
  /// that re-grant out of band contribute no entries).
  [[nodiscard]] const std::vector<Relocation>& last_relocations() const noexcept {
    return relocations_;
  }

  // ---- Durability (policies with info().durable). ----

  /// Serialize complete server state as a versioned wire::Snapshot.
  /// Precondition: no staged changes.
  [[nodiscard]] std::vector<std::uint8_t> save_state() const;

  /// Restore from save_state() bytes, or from a pre-refactor (version-0)
  /// per-scheme layout (routed to the policy's legacy decoder). Corrupt
  /// versioned framing throws wire::WireError; structural mismatches
  /// (wrong scheme for this policy) throw wire::WireError too
  /// (kSchemeMismatch); config mismatches inside the policy section throw
  /// ContractViolation as before.
  void restore_state(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::vector<PathKey> member_path_keys(workload::MemberId member) const;
  [[nodiscard]] crypto::Key128 member_individual_key(workload::MemberId member) const;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const;

  // ---- Plumbing. ----

  void set_executor(common::ThreadPool* pool) { policy_->set_executor(pool); }
  void reserve(std::size_t expected_members);
  void set_wrap_cache(bool enabled) { policy_->set_wrap_cache(enabled); }

  [[nodiscard]] PlacementPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const PlacementPolicy& policy() const noexcept { return *policy_; }

 private:
  struct LedgerEntry {
    std::uint64_t joined_epoch = 0;
    std::uint32_t partition = 0;
  };

  [[nodiscard]] const LedgerEntry& entry_of(workload::MemberId member) const;
  void run_migrations(EpochOutput& out);

  std::unique_ptr<PlacementPolicy> policy_;
  std::unordered_map<std::uint64_t, LedgerEntry> ledger_;
  std::vector<Relocation> relocations_;
  std::uint64_t epoch_ = 0;
  std::size_t staged_joins_ = 0;
  std::size_t staged_s_leaves_ = 0;
  std::size_t staged_l_leaves_ = 0;
};

}  // namespace gk::engine
