#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/group_key.h"
#include "engine/server.h"
#include "lkh/ids.h"
#include "lkh/key_tree.h"
#include "lkh/rekey_message.h"
#include "wire/snapshot.h"

namespace gk::engine {

/// Static facts about a placement policy, fixed at construction.
struct PolicyInfo {
  /// Factory key and snapshot scheme tag ("qt", "tt", "loss-bin", ...).
  std::string name;
  /// True when partition 0 is the short-term (S) partition: departures
  /// from it count as s_departures and the migration clock applies to it.
  /// False for single-partition and loss-binned schemes, whose departures
  /// all count as l_departures.
  bool split_partitions = false;
  /// The paper's K = Ts/Tp: epochs a member stays in partition 0 before
  /// the core migrates it to partition 1. Zero disables the clock.
  unsigned migrate_after = 0;
  /// True when the policy implements save/restore of its substrate state.
  bool durable = false;
};

/// Per-epoch staging totals, handed to the DEK step.
struct EpochCounts {
  std::size_t joins = 0;
  std::size_t s_departures = 0;
  std::size_t l_departures = 0;
  std::size_t migrations = 0;
};

/// The *policy* half of a rekey scheme: which partition a member lands in,
/// what the partitions are made of (trees, queues, OFT/ELK substrates), and
/// how the session DEK is re-wrapped for each audience.
///
/// Everything else — join/leave staging, the Ts = K*Tp migration clock,
/// epoch sequencing, the member ledger, relocation bookkeeping, and the
/// canonical wire::Snapshot save/restore frame — is mechanism, owned by
/// RekeyCore. A new scheme is one PlacementPolicy subclass plus a
/// partition::factory registration; see DESIGN.md §9.
///
/// Determinism contract: the policy constructs its substrates and (when it
/// has one) the GroupKeyManager in a documented RNG fork order, and its
/// hooks consume randomness in the same order the pre-split servers did —
/// this is what keeps refactors byte-identical under the cross-scheme
/// equivalence and crash-recovery property tests.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  [[nodiscard]] virtual const PolicyInfo& info() const noexcept = 0;

  // ---- Membership. ----

  struct Admission {
    Registration registration;
    std::uint32_t partition = 0;
  };
  /// Place and insert a joining member; returns its registration grant and
  /// the partition the core should record it under.
  virtual Admission admit(const workload::MemberProfile& profile) = 0;

  /// Remove a departing member from `partition`.
  virtual void evict(workload::MemberId member, std::uint32_t partition) = 0;

  /// Move one member from partition 0 to partition 1 (the core's migration
  /// clock fired). Returns the member's new leaf id when the move keeps its
  /// individual key (LKH-style relocation); nullopt when the scheme
  /// re-grants out of band (OFT fresh leaves, ELK re-grants).
  [[nodiscard]] virtual std::optional<crypto::KeyId> migrate(workload::MemberId member);

  // ---- Epoch emission. ----

  /// Emit the epoch's structural rekey payload (tree commits, accumulated
  /// per-operation messages). Runs after migrations, before the DEK step.
  [[nodiscard]] virtual lkh::RekeyMessage emit(std::uint64_t epoch) = 0;

  /// The DEK step. The default implements the canonical skeleton shared by
  /// the paper's schemes — compromise: rotate + wrap_compromised();
  /// join-only: rotate + wrap-under-previous + wrap_arrivals(); then stamp —
  /// and is a no-op for policies without a DEK. Override only when the
  /// scheme's DEK discipline genuinely differs (OFT's migration-only
  /// re-wrap, ELK's both-roots join path).
  virtual void apply_dek(const EpochCounts& counts, lkh::RekeyMessage& out);

  /// Runs at the very start of each end_epoch(), before migrations. For
  /// clearing last-epoch result buffers that stay readable between commits
  /// (OFT migration grants, ELK re-grant lists).
  virtual void epoch_begin() {}

  /// Reset per-epoch scratch (arrival lists/flags). Runs at the very end of
  /// each end_epoch().
  virtual void epoch_reset() {}

  // ---- DEK access. ----

  /// The policy-owned session DEK manager; nullptr when the scheme's tree
  /// root itself is the group key (one-keytree, batch).
  [[nodiscard]] virtual GroupKeyManager* dek() noexcept { return nullptr; }
  [[nodiscard]] const GroupKeyManager* dek() const noexcept {
    return const_cast<PlacementPolicy*>(this)->dek();
  }

  // ---- Queries. ----

  /// Default: the DEK. Override for schemes whose root key is the group key.
  [[nodiscard]] virtual crypto::VersionedKey group_key() const;
  [[nodiscard]] virtual crypto::KeyId group_key_id() const;

  /// Node ids on the member's path (leaf excluded, group key included).
  [[nodiscard]] virtual std::vector<crypto::KeyId> member_path(
      workload::MemberId member, std::uint32_t partition) const = 0;

  /// Shape of the policy's key-tree substrates, merged across every
  /// partition / loss bin (TreeStats::merge). Flat-queue residents (QT's
  /// S-partition) are not tree leaves and are excluded. Default: empty
  /// stats, for policies with no tree substrate.
  [[nodiscard]] virtual lkh::TreeStats tree_stats() const { return {}; }

  // ---- Durability (policies with info().durable). ----

  /// The session-wide id allocator (shared by substrates and DEK); the core
  /// persists and restores its watermark.
  [[nodiscard]] virtual std::shared_ptr<lkh::IdAllocator> ids() const = 0;

  /// Serialize substrate state (trees, queues, RNG streams, config echo)
  /// into the snapshot's opaque policy section. Default: throws (policy is
  /// not durable).
  [[nodiscard]] virtual std::vector<std::uint8_t> save_policy_state() const;
  virtual void restore_policy_state(std::span<const std::uint8_t> bytes);

  /// Decode a pre-refactor (version-0) whole-server snapshot: the old
  /// per-scheme layout that interleaved epoch, watermark, substrates, DEK,
  /// and member records. Restores substrates + DEK in place; returns the
  /// fields the core owns. Default: throws (no legacy format).
  struct LegacyState {
    std::uint64_t epoch = 0;
    std::uint64_t id_watermark = 0;
    std::vector<wire::Snapshot::LedgerEntry> ledger;
  };
  [[nodiscard]] virtual LegacyState restore_legacy(std::span<const std::uint8_t> bytes);

  // ---- Resync accessors (durable schemes). ----

  [[nodiscard]] virtual std::vector<PathKey> member_path_keys(
      workload::MemberId member, std::uint32_t partition) const;
  [[nodiscard]] virtual crypto::Key128 member_individual_key(
      workload::MemberId member, std::uint32_t partition) const;
  [[nodiscard]] virtual crypto::KeyId member_leaf_id(workload::MemberId member,
                                                     std::uint32_t partition) const;

  // ---- Plumbing. ----

  virtual void set_executor(common::ThreadPool* /*pool*/) {}
  virtual void reserve(std::size_t /*expected_members*/) {}
  virtual void set_wrap_cache(bool /*enabled*/) {}

 protected:
  /// Wrap the freshly rotated DEK for every audience after a compromise
  /// (typically: under each nonempty partition root).
  virtual void wrap_compromised(lkh::RekeyMessage& out);

  /// Wrap the freshly rotated DEK for this epoch's arrivals (incumbents are
  /// already covered by the wrap under the previous DEK).
  virtual void wrap_arrivals(lkh::RekeyMessage& out);
};

}  // namespace gk::engine
