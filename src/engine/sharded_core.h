#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "engine/group_key.h"
#include "engine/rekey_core.h"
#include "engine/server.h"

namespace gk::engine {

/// A rekey engine sharded for multi-core commit: S full `RekeyCore`
/// instances (each with its own flat arena, wrap buffer, PreparedKek/HMAC
/// midstate caches, RNG stream, and disjoint key-id range) under one shared
/// top-level session DEK — the same subtree-under-a-root split the
/// loss-bin and partition policies perform for bandwidth, generalized here
/// for parallelism.
///
/// Epoch commit runs in three steps:
///  1. *Drain*: staged mutations are pulled from the MPSC queue (FIFO) and
///     applied to their home shards on the committing thread. Producers
///     keep staging concurrently; anything racing the drain lands in the
///     next epoch (the queue is the epoch barrier).
///  2. *Emit, shard-parallel*: every shard's end_epoch() runs as one
///     parallel_for task writing into its own pre-sized output slot — zero
///     cross-shard writes, no locks on the emission path.
///  3. *Merge, deterministic*: slot messages are concatenated in shard
///     order, then the top DEK step runs exactly the canonical
///     PlacementPolicy::apply_dek skeleton with the shard roots as its
///     audiences (compromise: rotate + wrap under every nonempty shard's
///     group key; join-only: rotate + one wrap under the previous DEK +
///     wraps for shards with arrivals; then stamp).
///
/// Determinism: each shard's emission is byte-identical regardless of
/// scheduling (KeyTree's contract), the merge order is the fixed shard
/// order, and the top DEK consumes randomness on the committing thread
/// only — so commit bytes are independent of thread count, which is what
/// the journal-replay and replica-shipping paths require. Member routing
/// is a pure hash of the member id (no routing table to persist).
///
/// Shard cores never receive an executor: parallelism is across shards
/// (ThreadPool::parallel_for must not nest). Construct via
/// partition::make_sharded_server, which wires the disjoint id bases and
/// the documented RNG fork order (top DEK first, then shard policies in
/// shard order).
class ShardedRekeyCore final : public DurableRekeyServer {
 public:
  /// `shard_policies` must contain at least 2 policies of the same durable
  /// scheme, each built over a disjoint id-allocator base; `top_rng` feeds
  /// the top DEK. (A 1-shard "sharded" server is just a CoreServer — the
  /// factory returns one instead.)
  explicit ShardedRekeyCore(std::vector<std::unique_ptr<PlacementPolicy>> shard_policies,
                            Rng top_rng);

  // ---- RekeyServer. ----

  Registration join(const workload::MemberProfile& profile) override;
  void leave(workload::MemberId member) override;
  EpochOutput end_epoch() override;

  [[nodiscard]] crypto::VersionedKey group_key() const override;
  [[nodiscard]] crypto::KeyId group_key_id() const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override;

  void set_executor(common::ThreadPool* pool) override { pool_ = pool; }
  void reserve(std::size_t expected_members) override;
  void set_wrap_cache(bool enabled) override;
  [[nodiscard]] lkh::TreeStats tree_stats() const override;

  // ---- DurableRekeyServer. ----

  [[nodiscard]] std::uint64_t epoch() const override { return epoch_; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  void restore_state(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<PathKey> member_path_keys(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member) const override;
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const override;

  // ---- Lock-free staged ingestion (any thread). ----

  /// Stage a join ahead of the epoch barrier. Wait-free; the admission is
  /// granted when the committing thread drains the queue, and surfaces in
  /// last_admissions() after that end_epoch() returns.
  void stage_join(const workload::MemberProfile& profile);

  /// Stage a departure ahead of the epoch barrier. Wait-free.
  void stage_leave(workload::MemberId member);

  /// Registrations granted while draining the queue in the last
  /// end_epoch(), in drain order. Valid until the next end_epoch().
  struct StagedAdmission {
    workload::MemberId member{};
    Registration registration;
  };
  [[nodiscard]] const std::vector<StagedAdmission>& last_admissions() const noexcept {
    return admissions_;
  }
  /// Members evicted by queue-staged leaves in the last end_epoch().
  [[nodiscard]] const std::vector<workload::MemberId>& last_evictions() const noexcept {
    return evictions_;
  }

  // ---- Shard topology. ----

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Deterministic home shard of a member: a hash of the raw member id, so
  /// routing needs no persistent table and survives save/restore for free.
  [[nodiscard]] std::uint32_t shard_of(workload::MemberId member) const noexcept;
  [[nodiscard]] const RekeyCore& shard(std::size_t index) const {
    return *shards_[index];
  }

 private:
  struct Mutation {
    bool is_join = false;
    workload::MemberProfile profile;  // leave: only `id` is meaningful
  };

  Registration apply_join(const workload::MemberProfile& profile);
  void apply_leave(workload::MemberId member);
  /// Pull every completed push out of the MPSC queue and apply it.
  void drain_staged();
  /// Step 3's DEK half: the canonical apply_dek skeleton over shard roots.
  void apply_top_dek(EpochOutput& out);

  // Thread contract: stage_join/stage_leave are the only entry points other
  // threads may call (they touch nothing but the queue). Everything else —
  // commit, accessors, save/restore — belongs to the single committing
  // thread, hence GK_CONSUMER_ONLY on all remaining state. shard_slots_ is
  // additionally written by pool workers *inside* end_epoch's parallel_for,
  // one disjoint slot per task, bracketed by the pool's fork/join barrier.
  std::vector<std::unique_ptr<RekeyCore>> shards_ GK_CONSUMER_ONLY;
  std::string scheme_ GK_CONST_AFTER_INIT;  ///< inner scheme name ("one-tree", ...)
  std::shared_ptr<lkh::IdAllocator> top_ids_ GK_CONSUMER_ONLY;
  GroupKeyManager dek_ GK_CONSUMER_ONLY;
  common::MpscQueue<Mutation> staged_;
  common::ThreadPool* pool_ GK_CONST_AFTER_INIT = nullptr;
  std::uint64_t epoch_ GK_CONSUMER_ONLY = 0;
  std::vector<EpochOutput> shard_slots_ GK_CONSUMER_ONLY;  ///< emission slots
  std::vector<std::uint8_t> shard_arrivals_ GK_CONSUMER_ONLY;  ///< join this epoch
  std::vector<StagedAdmission> admissions_ GK_CONSUMER_ONLY;
  std::vector<workload::MemberId> evictions_ GK_CONSUMER_ONLY;
};

}  // namespace gk::engine
