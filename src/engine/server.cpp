#include "engine/server.h"

namespace gk::engine {

std::vector<crypto::WrappedKey> make_catchup_bundle(const DurableRekeyServer& server,
                                                    workload::MemberId member,
                                                    Rng& rng) {
  const auto individual = server.member_individual_key(member);
  const auto leaf = server.member_leaf_id(member);
  const auto path = server.member_path_keys(member);
  std::vector<crypto::WrappedKey> bundle;
  bundle.reserve(path.size());
  // Every path key is wrapped directly under the individual key (not
  // chained): the member's ring may be arbitrarily stale — even its old
  // path node ids may no longer exist — but the registration key always
  // unlocks the whole bundle. One KEK serves the whole bundle, so its
  // subkey expansion is prepared once.
  const crypto::PreparedKek prepared(individual);
  for (const auto& entry : path)
    bundle.push_back(prepared.wrap(leaf, 0, entry.key.key, entry.id,
                                   entry.key.version, crypto::random_wrap_nonce(rng)));
  return bundle;
}

}  // namespace gk::engine
