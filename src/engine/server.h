#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "lkh/key_tree.h"
#include "lkh/rekey_message.h"
#include "workload/member.h"

namespace gk::common {
class ThreadPool;
}

namespace gk::engine {

/// What a joining member receives over the registration unicast channel.
/// Unicast traffic is NOT part of the paper's multicast-bandwidth metric,
/// but servers report it so experiments can confirm the migration paths add
/// none of it.
struct Registration {
  crypto::Key128 individual_key;
  crypto::KeyId leaf_id{};
};

/// A member whose leaf moved to a new node id during a partition migration.
/// Leaf placement is public structure information; the simulator forwards
/// it to the member's key ring (the key itself never moves).
struct Relocation {
  workload::MemberId member{};
  crypto::KeyId new_leaf_id{};
};

/// The outcome of committing one rekey period.
struct EpochOutput {
  std::uint64_t epoch = 0;
  /// Leader term that authored this commit (epoch fencing). 0 for an
  /// unreplicated server; a replicated deployment stamps the elected term
  /// here (JournaledServer::set_term) and members reject stale terms.
  std::uint64_t term = 0;
  /// The multicast rekey payload (partition messages merged, group-key
  /// wraps appended). message.cost() is the paper's metric.
  lkh::RekeyMessage message;
  /// Members moved from the S-partition to the L-partition this epoch.
  std::size_t migrations = 0;
  /// True departures processed in each partition this epoch (one-keytree
  /// servers report everything as l_departures).
  std::size_t s_departures = 0;
  std::size_t l_departures = 0;
  std::size_t joins = 0;

  [[nodiscard]] std::size_t multicast_cost() const noexcept { return message.cost(); }
};

/// A group key server processing membership changes in periodic batches
/// (Kronos-style). Usage per epoch: any number of join()/leave() calls,
/// then end_epoch() which commits the batch and emits the rekey message.
class RekeyServer {
 public:
  virtual ~RekeyServer() = default;

  /// Stage a join. The profile's class/duration fields are *oracle*
  /// information — only the PT scheme may read them (and only the class).
  virtual Registration join(const workload::MemberProfile& profile) = 0;

  /// Stage a departure of a current member.
  virtual void leave(workload::MemberId member) = 0;

  /// Commit the epoch: process migrations, refresh compromised keys,
  /// rotate the group key, and emit the multicast payload.
  virtual EpochOutput end_epoch() = 0;

  /// Current session data-encryption key (what members must end up with).
  [[nodiscard]] virtual crypto::VersionedKey group_key() const = 0;
  [[nodiscard]] virtual crypto::KeyId group_key_id() const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Node ids whose keys this member should currently hold (leaf excluded,
  /// group key included). The transport layer derives keys-of-interest
  /// from this.
  [[nodiscard]] virtual std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const = 0;

  /// Attach a thread pool that end_epoch()'s wrap emission may fan across
  /// (nullptr restores sequential emission). Parallel output is
  /// byte-identical to the sequential run — see KeyTree::set_executor.
  /// Default: ignored, for schemes with no parallel path.
  virtual void set_executor(common::ThreadPool* /*pool*/) {}

  /// Pre-size internal structures for an expected steady-state group size
  /// (bulk provisioning, trace replay, benches). Default: no-op.
  virtual void reserve(std::size_t /*expected_members*/) {}

  /// Disable / re-enable per-node cached KEK expansions in the scheme's key
  /// trees (benchmarks use `false` to reproduce the seed's
  /// one-expansion-per-wrap crypto cost). Default: no-op.
  virtual void set_wrap_cache(bool /*enabled*/) {}

  /// Shape of the server's key-tree substrates, merged across partitions,
  /// loss bins, and shards (TreeStats::merge). Benchmarks report height and
  /// mean leaf depth from this — every server kind answers it, so bench
  /// rows never fall back to zeros for schemes behind a facade. Default:
  /// empty stats, for servers with no tree substrate.
  [[nodiscard]] virtual lkh::TreeStats tree_stats() const { return {}; }
};

/// One key on a member's current path, with material (server-side view).
struct PathKey {
  crypto::KeyId id{};
  crypto::VersionedKey key;
};

/// A rekey server that additionally supports crash recovery and member
/// resynchronization — the contract the write-ahead journal
/// (JournaledServer) and the resync protocol (transport/resync.h) build on.
///
/// save_state() must capture *everything* the server's future behaviour
/// depends on, RNG streams included, so that restore_state() + replaying the
/// same membership operations regenerates byte-identical key material. It
/// may only be called between epochs (no staged, uncommitted changes).
class DurableRekeyServer : public RekeyServer {
 public:
  /// The epoch the next end_epoch() will commit (journal bookkeeping).
  [[nodiscard]] virtual std::uint64_t epoch() const = 0;

  /// Serialize complete server state (trees, DEK, RNG streams, membership
  /// records, epoch counter) as a versioned wire::Snapshot.
  /// Precondition: no staged changes.
  [[nodiscard]] virtual std::vector<std::uint8_t> save_state() const = 0;

  /// Replace this server's state with a previously saved blob — either a
  /// versioned wire::Snapshot or a pre-refactor (version-0) per-scheme
  /// layout. The server must have been constructed with the same
  /// structural configuration (degree, S-period, bins); violations throw
  /// ContractViolation, corrupt snapshot framing throws wire::WireError.
  virtual void restore_state(std::span<const std::uint8_t> bytes) = 0;

  /// The member's current leaf-to-group-key path *with key material*, leaf
  /// end first, group key last (leaf's own key excluded). Source of the
  /// resync catch-up bundle: a member that missed epochs re-learns exactly
  /// these keys instead of forcing a group-wide rekey.
  [[nodiscard]] virtual std::vector<PathKey> member_path_keys(
      workload::MemberId member) const = 0;

  /// The member's registration (individual) key and current leaf node id.
  /// Leaf ids move on partition migration; the individual key never does.
  [[nodiscard]] virtual crypto::Key128 member_individual_key(
      workload::MemberId member) const = 0;
  [[nodiscard]] virtual crypto::KeyId member_leaf_id(
      workload::MemberId member) const = 0;
};

/// Catch-up bundle for one desynchronized member: its current path keys,
/// each wrapped under the member's individual key, leaf end first so the
/// receiver can process in order (any order also resolves via KeyRing's
/// fixed-point iteration). Delivered over the resync unicast channel
/// (transport/resync.h), so the bundle never inflates the multicast metric.
[[nodiscard]] std::vector<crypto::WrappedKey> make_catchup_bundle(
    const DurableRekeyServer& server, workload::MemberId member, Rng& rng);

}  // namespace gk::engine
