#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "lkh/ids.h"
#include "lkh/rekey_message.h"

namespace gk::engine {

/// The session data-encryption key (DEK) sitting above the partitions.
///
/// Composite schemes view their partitions as sub-trees under this root
/// (Section 3.2): the DEK is rotated once per epoch with membership change
/// and re-wrapped under each partition's current root key (or, for queue
/// partitions, under each resident's individual key).
class GroupKeyManager {
 public:
  GroupKeyManager(Rng rng, std::shared_ptr<lkh::IdAllocator> ids);

  /// Replace the DEK with a fresh key and bump the version.
  void rotate();

  /// Append "new DEK wrapped under `kek`" to the message.
  void wrap_under(const crypto::Key128& kek, crypto::KeyId kek_id,
                  std::uint32_t kek_version, lkh::RekeyMessage& out);

  /// Append "new DEK wrapped under the previous DEK" — the join-only
  /// optimization: one wrap serves every incumbent.
  void wrap_under_previous(lkh::RekeyMessage& out);

  /// Stamp the message with the current DEK id/version.
  void stamp(lkh::RekeyMessage& out) const;

  [[nodiscard]] const crypto::VersionedKey& current() const noexcept { return key_; }
  [[nodiscard]] crypto::KeyId id() const noexcept { return id_; }

  /// Exact persistence (rekey journal checkpoints): id, current + previous
  /// key material, and the RNG stream, so replayed rotations regenerate the
  /// same DEK bytes.
  void save_state(common::ByteWriter& out) const;
  void restore_state(common::ByteReader& in);

 private:
  Rng rng_;
  crypto::KeyId id_{};
  crypto::VersionedKey key_;
  crypto::Key128 previous_;
};

}  // namespace gk::engine
