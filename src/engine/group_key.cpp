#include "engine/group_key.h"

#include <algorithm>

#include "crypto/secure.h"

namespace gk::engine {

GroupKeyManager::GroupKeyManager(Rng rng, std::shared_ptr<lkh::IdAllocator> ids)
    : rng_(rng) {
  id_ = ids->next();
  key_ = {crypto::Key128::random(rng_), 0};
  previous_ = key_.key;
}

void GroupKeyManager::rotate() {
  previous_ = key_.key;
  key_.key = crypto::Key128::random(rng_);
  ++key_.version;
}

void GroupKeyManager::wrap_under(const crypto::Key128& kek, crypto::KeyId kek_id,
                                 std::uint32_t kek_version, lkh::RekeyMessage& out) {
  out.wraps.push_back(
      crypto::wrap_key(kek, kek_id, kek_version, key_.key, id_, key_.version, rng_));
}

void GroupKeyManager::wrap_under_previous(lkh::RekeyMessage& out) {
  out.wraps.push_back(crypto::wrap_key(previous_, id_, key_.version - 1, key_.key, id_,
                                       key_.version, rng_));
}

void GroupKeyManager::stamp(lkh::RekeyMessage& out) const {
  out.group_key_id = id_;
  out.group_key_version = key_.version;
}

void GroupKeyManager::save_state(common::ByteWriter& out) const {
  for (const auto word : rng_.save_state()) out.u64(word);
  out.u64(crypto::raw(id_));
  out.u32(key_.version);
  out.bytes(key_.key.bytes());
  out.bytes(previous_.bytes());
}

namespace {

crypto::Key128 read_key(common::ByteReader& in) {
  crypto::WipedBytes<crypto::Key128::kSize> raw;
  const auto view = in.bytes(raw.size());
  std::copy(view.begin(), view.end(), raw.array().begin());
  return crypto::Key128(raw.array());
}

}  // namespace

void GroupKeyManager::restore_state(common::ByteReader& in) {
  Rng::State state;
  for (auto& word : state) word = in.u64();
  rng_.restore_state(state);
  id_ = crypto::make_key_id(in.u64());
  key_.version = in.u32();
  key_.key = read_key(in);
  previous_ = read_key(in);
}

}  // namespace gk::engine
