#pragma once

#include <memory>

#include "engine/rekey_core.h"
#include "engine/server.h"

namespace gk::engine {

/// Generic DurableRekeyServer over one RekeyCore: every scheme whose public
/// surface is the RekeyServer contract is this class (or a thin subclass
/// adding scheme-specific accessors) around a PlacementPolicy.
class CoreServer : public DurableRekeyServer {
 public:
  explicit CoreServer(std::unique_ptr<PlacementPolicy> policy)
      : core_(std::move(policy)) {}

  Registration join(const workload::MemberProfile& profile) override {
    return core_.join(profile);
  }
  void leave(workload::MemberId member) override { core_.leave(member); }
  EpochOutput end_epoch() override { return core_.end_epoch(); }

  [[nodiscard]] crypto::VersionedKey group_key() const override {
    return core_.group_key();
  }
  [[nodiscard]] crypto::KeyId group_key_id() const override {
    return core_.group_key_id();
  }
  [[nodiscard]] std::size_t size() const override { return core_.size(); }
  [[nodiscard]] std::vector<crypto::KeyId> member_path(
      workload::MemberId member) const override {
    return core_.member_path(member);
  }

  [[nodiscard]] std::uint64_t epoch() const override { return core_.epoch(); }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override {
    return core_.save_state();
  }
  void restore_state(std::span<const std::uint8_t> bytes) override {
    core_.restore_state(bytes);
  }
  [[nodiscard]] std::vector<PathKey> member_path_keys(
      workload::MemberId member) const override {
    return core_.member_path_keys(member);
  }
  [[nodiscard]] crypto::Key128 member_individual_key(
      workload::MemberId member) const override {
    return core_.member_individual_key(member);
  }
  [[nodiscard]] crypto::KeyId member_leaf_id(workload::MemberId member) const override {
    return core_.member_leaf_id(member);
  }

  void set_executor(common::ThreadPool* pool) override { core_.set_executor(pool); }
  void reserve(std::size_t expected_members) override {
    core_.reserve(expected_members);
  }
  void set_wrap_cache(bool enabled) override { core_.set_wrap_cache(enabled); }
  [[nodiscard]] lkh::TreeStats tree_stats() const override {
    return core_.policy().tree_stats();
  }

  [[nodiscard]] RekeyCore& core() noexcept { return core_; }
  [[nodiscard]] const RekeyCore& core() const noexcept { return core_; }

 protected:
  RekeyCore core_;
};

}  // namespace gk::engine
