#include "netsim/receiver.h"

#include "common/ensure.h"

namespace gk::netsim {

Receiver::Receiver(workload::MemberId id, double loss_rate, Rng rng)
    : id_(id), mean_loss_(loss_rate), rng_(rng) {
  GK_ENSURE(loss_rate >= 0.0 && loss_rate < 1.0);
}

Receiver::Receiver(workload::MemberId id, const BurstParams& params, Rng rng)
    : id_(id), mean_loss_(params.stationary_loss()), bursty_(true), burst_(params),
      rng_(rng) {
  GK_ENSURE(params.good_loss >= 0.0 && params.good_loss < 1.0);
  GK_ENSURE(params.bad_loss >= params.good_loss && params.bad_loss <= 1.0);
  GK_ENSURE(params.good_to_bad >= 0.0 && params.good_to_bad <= 1.0);
  GK_ENSURE(params.bad_to_good > 0.0 && params.bad_to_good <= 1.0);
  // Start in the stationary distribution so short sessions are unbiased.
  in_bad_ = rng_.bernoulli(params.good_to_bad /
                           (params.good_to_bad + params.bad_to_good));
}

Receiver Receiver::bursty(workload::MemberId id, double target_mean_loss,
                          double mean_burst_packets, Rng rng) {
  BurstParams params;
  GK_ENSURE(mean_burst_packets >= 1.0);
  params.bad_to_good = 1.0 / mean_burst_packets;
  GK_ENSURE_MSG(target_mean_loss > params.good_loss &&
                    target_mean_loss < params.bad_loss,
                "target loss " << target_mean_loss << " outside [good, bad] range");
  const double pi_bad = (target_mean_loss - params.good_loss) /
                        (params.bad_loss - params.good_loss);
  params.good_to_bad = params.bad_to_good * pi_bad / (1.0 - pi_bad);
  GK_ENSURE(params.good_to_bad <= 1.0);
  return {id, params, rng};
}

bool Receiver::receives() noexcept {
  ++offered_;
  const double loss =
      bursty_ ? (in_bad_ ? burst_.bad_loss : burst_.good_loss) : mean_loss_;
  const bool ok = !rng_.bernoulli(loss);
  if (ok) ++received_;
  if (bursty_) {
    if (in_bad_) {
      if (rng_.bernoulli(burst_.bad_to_good)) in_bad_ = false;
    } else {
      if (rng_.bernoulli(burst_.good_to_bad)) in_bad_ = true;
    }
  }
  return ok;
}

double Receiver::observed_loss() const noexcept {
  if (offered_ == 0) return 0.0;
  return 1.0 - static_cast<double>(received_) / static_cast<double>(offered_);
}

}  // namespace gk::netsim
