#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workload/member.h"

namespace gk::netsim {

/// Gilbert-Elliott channel parameters: a Good state with light loss and a
/// Bad state with heavy loss, geometric sojourns. Mean burst length is
/// 1 / bad_to_good packets; stationary loss is
///   pi_bad * bad_loss + (1 - pi_bad) * good_loss,
/// with pi_bad = good_to_bad / (good_to_bad + bad_to_good).
struct BurstParams {
  double good_loss = 0.005;
  double bad_loss = 0.5;
  double good_to_bad = 0.02;
  double bad_to_good = 0.25;

  [[nodiscard]] double stationary_loss() const noexcept {
    const double pi_bad = good_to_bad / (good_to_bad + bad_to_good);
    return pi_bad * bad_loss + (1.0 - pi_bad) * good_loss;
  }
};

/// A multicast receiver endpoint. Two loss models:
///
///  * Bernoulli — each packet dropped independently with `loss_rate`; the
///    model the paper's Appendix B analysis assumes.
///  * Gilbert-Elliott — two-state bursty loss, for probing how correlated
///    losses move the WKA-BKR/FEC results away from the Bernoulli theory
///    (real MBone loss was bursty [Handley97]).
///
/// Deterministic given its seed. loss_rate() reports the *mean* (stationary)
/// loss either way, which is what WKA weighting consumes.
class Receiver {
 public:
  /// Independent Bernoulli loss.
  Receiver(workload::MemberId id, double loss_rate, Rng rng);

  /// Bursty Gilbert-Elliott loss.
  Receiver(workload::MemberId id, const BurstParams& params, Rng rng);

  /// Bursty channel matched to a target mean loss with the given mean
  /// burst length (packets). Requires good_loss < target < bad_loss of the
  /// default BurstParams rates.
  static Receiver bursty(workload::MemberId id, double target_mean_loss,
                         double mean_burst_packets, Rng rng);

  /// Draw one reception event: true if the packet arrives.
  [[nodiscard]] bool receives() noexcept;

  [[nodiscard]] workload::MemberId id() const noexcept { return id_; }
  /// Mean per-packet loss probability (stationary for bursty channels).
  [[nodiscard]] double loss_rate() const noexcept { return mean_loss_; }
  [[nodiscard]] bool is_bursty() const noexcept { return bursty_; }
  [[nodiscard]] std::uint64_t packets_offered() const noexcept { return offered_; }
  [[nodiscard]] std::uint64_t packets_received() const noexcept { return received_; }

  /// Empirical loss rate observed so far (what a real member would
  /// piggyback on its NACKs for the loss-homogenized scheme, Section 4.2).
  [[nodiscard]] double observed_loss() const noexcept;

 private:
  workload::MemberId id_;
  double mean_loss_;
  bool bursty_ = false;
  BurstParams burst_{};
  bool in_bad_ = false;
  Rng rng_;
  std::uint64_t offered_ = 0;
  std::uint64_t received_ = 0;
};

/// Aggregate channel accounting for one transport session.
struct ChannelStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t receptions = 0;
  std::uint64_t losses = 0;

  void merge(const ChannelStats& other) noexcept {
    packets_sent += other.packets_sent;
    receptions += other.receptions;
    losses += other.losses;
  }
};

}  // namespace gk::netsim
