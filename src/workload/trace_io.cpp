#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/ensure.h"

namespace gk::workload {

namespace {

const char* class_name(MemberClass cls) {
  return cls == MemberClass::kShort ? "short" : "long";
}

MemberClass parse_class(const std::string& name) {
  if (name == "short") return MemberClass::kShort;
  if (name == "long") return MemberClass::kLong;
  GK_ENSURE_MSG(false, "unknown member class '" << name << "'");
  return MemberClass::kShort;
}

void write_profile(std::ostream& os, const char* kind, std::uint64_t epoch,
                   const MemberProfile& p) {
  os << kind << ',' << epoch << ',' << raw(p.id) << ',' << class_name(p.member_class)
     << ',' << p.join_time << ',' << p.duration << ',' << p.loss_rate << '\n';
}

}  // namespace

void write_trace_csv(const MembershipTrace& trace, std::ostream& os) {
  os << "# rekey_period=" << trace.rekey_period()
     << " epochs=" << trace.epochs().size() << '\n';
  os << "kind,epoch,member,class,join_time,duration,loss_rate\n";
  os << std::setprecision(17);
  for (const auto& member : trace.initial_members())
    write_profile(os, "initial", 0, member);
  for (const auto& epoch : trace.epochs()) {
    for (const auto& member : epoch.joins)
      write_profile(os, "join", epoch.index, member);
    for (const auto id : epoch.leaves)
      os << "leave," << epoch.index << ',' << raw(id) << ",short,0,0,0\n";
  }
}

MembershipTrace read_trace_csv(std::istream& is) {
  std::string line;
  GK_ENSURE_MSG(std::getline(is, line), "empty trace file");
  GK_ENSURE_MSG(line.rfind("# rekey_period=", 0) == 0, "missing trace header");

  Seconds rekey_period = 0.0;
  std::uint64_t epoch_count = 0;
  {
    std::istringstream header(line.substr(2));
    std::string token;
    while (header >> token) {
      const auto eq = token.find('=');
      GK_ENSURE(eq != std::string::npos);
      const auto key = token.substr(0, eq);
      const auto value = token.substr(eq + 1);
      if (key == "rekey_period") rekey_period = std::stod(value);
      if (key == "epochs") epoch_count = std::stoull(value);
    }
  }
  GK_ENSURE_MSG(rekey_period > 0.0, "trace header lacks rekey_period");
  GK_ENSURE_MSG(std::getline(is, line), "missing column header");

  std::vector<MemberProfile> initial;
  std::vector<EpochBatch> epochs(epoch_count);
  for (std::uint64_t e = 0; e < epoch_count; ++e) {
    epochs[e].index = e;
    epochs[e].period_end = static_cast<Seconds>(e + 1) * rekey_period;
  }

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind, epoch_s, member_s, class_s, join_s, duration_s, loss_s;
    GK_ENSURE_MSG(std::getline(row, kind, ',') && std::getline(row, epoch_s, ',') &&
                      std::getline(row, member_s, ',') &&
                      std::getline(row, class_s, ',') &&
                      std::getline(row, join_s, ',') &&
                      std::getline(row, duration_s, ',') && std::getline(row, loss_s),
                  "malformed trace row: " << line);
    const auto epoch = std::stoull(epoch_s);
    GK_ENSURE_MSG(kind == "initial" || epoch < epoch_count,
                  "epoch " << epoch << " out of range");

    if (kind == "leave") {
      epochs[epoch].leaves.push_back(make_member_id(std::stoull(member_s)));
      continue;
    }
    MemberProfile profile;
    profile.id = make_member_id(std::stoull(member_s));
    profile.member_class = parse_class(class_s);
    profile.join_time = std::stod(join_s);
    profile.duration = std::stod(duration_s);
    profile.loss_rate = std::stod(loss_s);
    if (kind == "initial") {
      initial.push_back(profile);
    } else if (kind == "join") {
      epochs[epoch].joins.push_back(profile);
    } else {
      GK_ENSURE_MSG(false, "unknown trace row kind '" << kind << "'");
    }
  }
  return MembershipTrace::from_parts(std::move(initial), std::move(epochs),
                                     rekey_period);
}

void save_trace(const MembershipTrace& trace, const std::string& path) {
  std::ofstream os(path);
  GK_ENSURE_MSG(os.good(), "cannot open " << path << " for writing");
  write_trace_csv(trace, os);
}

MembershipTrace load_trace(const std::string& path) {
  std::ifstream is(path);
  GK_ENSURE_MSG(is.good(), "cannot open " << path);
  return read_trace_csv(is);
}

}  // namespace gk::workload
