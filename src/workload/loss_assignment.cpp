#include "workload/loss_assignment.h"

#include "common/ensure.h"

namespace gk::workload {

namespace {
void check_rate(double rate) { GK_ENSURE(rate >= 0.0 && rate < 1.0); }
}  // namespace

UniformLoss::UniformLoss(double rate) : rate_(rate) { check_rate(rate); }

TwoPointLoss::TwoPointLoss(double low_rate, double high_rate, double high_fraction)
    : low_rate_(low_rate), high_rate_(high_rate), high_fraction_(high_fraction) {
  check_rate(low_rate);
  check_rate(high_rate);
  GK_ENSURE(low_rate <= high_rate);
  GK_ENSURE(high_fraction >= 0.0 && high_fraction <= 1.0);
}

double TwoPointLoss::assign(Rng& rng) const {
  return rng.bernoulli(high_fraction_) ? high_rate_ : low_rate_;
}

double TwoPointLoss::mean() const noexcept {
  return high_fraction_ * high_rate_ + (1.0 - high_fraction_) * low_rate_;
}

DiscreteLoss::DiscreteLoss(std::vector<Point> points)
    : points_(std::move(points)), mean_(0.0) {
  GK_ENSURE(!points_.empty());
  double total = 0.0;
  for (const auto& p : points_) {
    check_rate(p.rate);
    GK_ENSURE(p.weight >= 0.0);
    total += p.weight;
  }
  GK_ENSURE(total > 0.0);
  double cumulative = 0.0;
  for (auto& p : points_) {
    mean_ += p.rate * (p.weight / total);
    cumulative += p.weight / total;
    p.weight = cumulative;  // store CDF in place
  }
  points_.back().weight = 1.0;
}

double DiscreteLoss::assign(Rng& rng) const {
  const double u = rng.uniform();
  for (const auto& p : points_)
    if (u < p.weight) return p.rate;
  return points_.back().rate;
}

}  // namespace gk::workload
