#include "workload/trace.h"

#include <algorithm>
#include <queue>

#include "common/ensure.h"

namespace gk::workload {

MembershipTrace MembershipTrace::generate(MembershipGenerator& generator,
                                          Seconds rekey_period,
                                          std::uint64_t epoch_count) {
  GK_ENSURE(rekey_period > 0.0);

  MembershipTrace trace;
  trace.rekey_period_ = rekey_period;
  trace.initial_ = generator.bootstrap();

  // Min-heap of pending departures (time, id).
  using Departure = std::pair<Seconds, MemberId>;
  auto later = [](const Departure& a, const Departure& b) { return a.first > b.first; };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)> departures(later);

  auto remember = [&trace](const MemberProfile& p) {
    const auto idx = raw(p.id);
    if (trace.profiles_.size() <= idx) trace.profiles_.resize(idx + 1);
    trace.profiles_[idx] = p;
  };

  for (const auto& member : trace.initial_) {
    remember(member);
    departures.emplace(member.departure_time(), member.id);
  }

  trace.epochs_.reserve(epoch_count);
  for (std::uint64_t e = 0; e < epoch_count; ++e) {
    EpochBatch batch;
    batch.index = e;
    batch.period_end = static_cast<Seconds>(e + 1) * rekey_period;

    while (generator.peek_next_join_time() <= batch.period_end) {
      MemberProfile member = generator.next_join();
      remember(member);
      departures.emplace(member.departure_time(), member.id);
      batch.joins.push_back(std::move(member));
    }
    while (!departures.empty() && departures.top().first <= batch.period_end) {
      batch.leaves.push_back(departures.top().second);
      departures.pop();
    }
    trace.epochs_.push_back(std::move(batch));
  }
  return trace;
}

MembershipTrace MembershipTrace::from_parts(std::vector<MemberProfile> initial,
                                            std::vector<EpochBatch> epochs,
                                            Seconds rekey_period) {
  GK_ENSURE(rekey_period > 0.0);
  MembershipTrace trace;
  trace.rekey_period_ = rekey_period;
  trace.initial_ = std::move(initial);
  trace.epochs_ = std::move(epochs);

  auto remember = [&trace](const MemberProfile& p) {
    const auto idx = raw(p.id);
    if (trace.profiles_.size() <= idx) trace.profiles_.resize(idx + 1);
    trace.profiles_[idx] = p;
  };
  for (const auto& member : trace.initial_) remember(member);
  for (const auto& epoch : trace.epochs_)
    for (const auto& member : epoch.joins) remember(member);
  for (const auto& epoch : trace.epochs_)
    for (const auto id : epoch.leaves)
      GK_ENSURE_MSG(raw(id) < trace.profiles_.size(),
                    "leave of unknown member " << raw(id));
  return trace;
}

const MemberProfile& MembershipTrace::profile(MemberId id) const {
  const auto idx = raw(id);
  GK_ENSURE_MSG(idx < profiles_.size(), "unknown member id " << idx);
  return profiles_[idx];
}

double MembershipTrace::mean_joins_per_epoch() const noexcept {
  if (epochs_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& epoch : epochs_) total += epoch.joins.size();
  return static_cast<double>(total) / static_cast<double>(epochs_.size());
}

double MembershipTrace::mean_leaves_per_epoch() const noexcept {
  if (epochs_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& epoch : epochs_) total += epoch.leaves.size();
  return static_cast<double>(total) / static_cast<double>(epochs_.size());
}

}  // namespace gk::workload
