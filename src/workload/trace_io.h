#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace gk::workload {

/// CSV serialization of membership traces, so experiments can be replayed
/// against any scheme (or shared between machines) without regenerating
/// workloads. Format, one event per line after the header:
///
///   kind,epoch,member,class,join_time,duration,loss_rate
///
/// kind is `initial`, `join`, or `leave`; `leave` rows carry only the
/// member id (remaining columns 0). Epoch length is recorded in a leading
/// comment line `# rekey_period=<seconds> epochs=<count>`.
void write_trace_csv(const MembershipTrace& trace, std::ostream& os);

/// Parse a trace written by write_trace_csv. Throws ContractViolation on
/// malformed input.
[[nodiscard]] MembershipTrace read_trace_csv(std::istream& is);

/// Convenience file-path wrappers.
void save_trace(const MembershipTrace& trace, const std::string& path);
[[nodiscard]] MembershipTrace load_trace(const std::string& path);

}  // namespace gk::workload
