#pragma once

#include <compare>
#include <cstdint>

namespace gk::workload {

/// Opaque member (receiver) identifier, unique within a session.
enum class MemberId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t raw(MemberId id) noexcept {
  return static_cast<std::uint64_t>(id);
}
[[nodiscard]] constexpr MemberId make_member_id(std::uint64_t v) noexcept {
  return static_cast<MemberId>(v);
}

/// The paper's two temporal classes (Section 3.3.1): short-duration members
/// (class Cs, mean Ms) and long-duration members (class Cl, mean Ml).
enum class MemberClass : std::uint8_t { kShort, kLong };

/// Simulation time in seconds. Double-precision seconds cover multi-day
/// sessions at microsecond resolution, which is far finer than the 60 s
/// rekey periods the paper studies.
using Seconds = double;

/// Everything the workload generator decides about one member up front.
/// The key server never reads `departure_time` or `member_class` (except in
/// the PT oracle scheme) — schemes must infer behaviour online, exactly as
/// the paper requires.
struct MemberProfile {
  MemberId id{};
  MemberClass member_class = MemberClass::kShort;
  Seconds join_time = 0.0;
  Seconds duration = 0.0;
  /// Independent per-packet loss probability on this member's path.
  double loss_rate = 0.0;

  [[nodiscard]] Seconds departure_time() const noexcept { return join_time + duration; }
};

}  // namespace gk::workload
