#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "workload/duration_model.h"
#include "workload/loss_assignment.h"
#include "workload/member.h"

namespace gk::workload {

/// Generates the member population of one secure-multicast session:
/// a steady-state bootstrap at t = 0 plus a Poisson join process whose rate
/// keeps the group size stationary (Little's law: lambda = N / E[duration]).
class MembershipGenerator {
 public:
  /// `target_size` is the steady-state group size N. The arrival rate is
  /// derived from the duration model so departures balance joins.
  MembershipGenerator(std::shared_ptr<const DurationModel> durations,
                      std::shared_ptr<const LossAssignment> losses,
                      std::uint64_t target_size, Rng rng);

  /// Members present at t = 0, with residual durations drawn from the
  /// equilibrium distribution.
  [[nodiscard]] std::vector<MemberProfile> bootstrap();

  /// Next joining member; successive calls advance an internal Poisson
  /// arrival clock.
  [[nodiscard]] MemberProfile next_join();

  /// Arrival time of the join that next_join() would return, without
  /// consuming it.
  [[nodiscard]] Seconds peek_next_join_time() const noexcept { return next_arrival_; }

  [[nodiscard]] double arrival_rate() const noexcept { return arrival_rate_; }
  [[nodiscard]] std::uint64_t target_size() const noexcept { return target_size_; }

 private:
  [[nodiscard]] MemberId fresh_id() noexcept { return make_member_id(next_id_++); }

  std::shared_ptr<const DurationModel> durations_;
  std::shared_ptr<const LossAssignment> losses_;
  std::uint64_t target_size_;
  double arrival_rate_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  Seconds next_arrival_ = 0.0;
};

}  // namespace gk::workload
