#include "workload/duration_model.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace gk::workload {

ExponentialDuration::ExponentialDuration(Seconds mean) : mean_(mean) {
  GK_ENSURE(mean > 0.0);
}

DurationModel::Sample ExponentialDuration::sample(Rng& rng) const {
  constexpr Seconds kHour = 3600.0;
  return {rng.exponential(mean_),
          mean_ >= kHour ? MemberClass::kLong : MemberClass::kShort};
}

TwoClassExponential::TwoClassExponential(Seconds short_mean, Seconds long_mean,
                                         double short_fraction)
    : short_mean_(short_mean), long_mean_(long_mean), short_fraction_(short_fraction) {
  GK_ENSURE(short_mean > 0.0);
  GK_ENSURE(long_mean >= short_mean);
  GK_ENSURE(short_fraction >= 0.0 && short_fraction <= 1.0);
}

DurationModel::Sample TwoClassExponential::sample(Rng& rng) const {
  if (rng.bernoulli(short_fraction_))
    return {rng.exponential(short_mean_), MemberClass::kShort};
  return {rng.exponential(long_mean_), MemberClass::kLong};
}

DurationModel::Sample TwoClassExponential::sample_residual(Rng& rng) const {
  // In steady state the share of *present* members from class Cs is
  // proportional to alpha * Ms (Little's law: Ncs = alpha * lambda * Ms).
  // Within a class, memorylessness makes the residual life exponential with
  // the class mean.
  const double short_weight = short_fraction_ * short_mean_;
  const double long_weight = (1.0 - short_fraction_) * long_mean_;
  const double p_short = short_weight / (short_weight + long_weight);
  if (rng.bernoulli(p_short))
    return {rng.exponential(short_mean_), MemberClass::kShort};
  return {rng.exponential(long_mean_), MemberClass::kLong};
}

Seconds TwoClassExponential::population_mean() const noexcept {
  return short_fraction_ * short_mean_ + (1.0 - short_fraction_) * long_mean_;
}

ZipfDuration::ZipfDuration(Seconds unit, std::uint64_t max_rank, double exponent,
                           Seconds class_threshold)
    : unit_(unit), max_rank_(max_rank), exponent_(exponent),
      class_threshold_(class_threshold), cached_mean_(0.0) {
  GK_ENSURE(unit > 0.0);
  GK_ENSURE(max_rank >= 1);
  GK_ENSURE(exponent > 0.0);
  // E[Z] = H(n, s-1) / H(n, s) with generalized harmonic numbers; the same
  // pass accumulates the length-biased CDF used by sample_residual.
  double num = 0.0;
  double den = 0.0;
  length_biased_cdf_.reserve(max_rank_);
  for (std::uint64_t k = 1; k <= max_rank_; ++k) {
    const double kd = static_cast<double>(k);
    const double pk = std::pow(kd, -exponent_);
    num += kd * pk;
    den += pk;
    length_biased_cdf_.push_back(num);  // cumulative of k * p(k), unnormalized
  }
  cached_mean_ = unit_ * num / den;
  for (auto& c : length_biased_cdf_) c /= num;
}

DurationModel::Sample ZipfDuration::sample(Rng& rng) const {
  const Seconds duration = unit_ * static_cast<double>(rng.zipf(max_rank_, exponent_));
  return {duration,
          duration >= class_threshold_ ? MemberClass::kLong : MemberClass::kShort};
}

DurationModel::Sample ZipfDuration::sample_residual(Rng& rng) const {
  // Length-biased total duration, then a uniform position within it: the
  // classic renewal-theory equilibrium distribution. Without this, heavy
  // tails make bootstrap populations drain far faster than Little's-law
  // arrivals replace them.
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(length_biased_cdf_.begin(), length_biased_cdf_.end(), u);
  const auto rank = static_cast<double>(
      std::distance(length_biased_cdf_.begin(), it) + 1);
  const Seconds total = unit_ * rank;
  Seconds residual = total * rng.uniform();
  if (residual <= 0.0) residual = unit_ * 0.01;
  return {residual,
          total >= class_threshold_ ? MemberClass::kLong : MemberClass::kShort};
}

Seconds ZipfDuration::population_mean() const noexcept { return cached_mean_; }

}  // namespace gk::workload
