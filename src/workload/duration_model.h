#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "workload/member.h"

namespace gk::workload {

/// Samples membership durations and the class label of each joining member.
///
/// The paper's evaluation model (Section 3.3.1) mixes two exponential
/// distributions; we also provide single-exponential and Zipf models to
/// match the Almeroth–Ammar MBone observations the paper cites.
class DurationModel {
 public:
  virtual ~DurationModel() = default;

  struct Sample {
    Seconds duration = 0.0;
    MemberClass member_class = MemberClass::kShort;
  };

  [[nodiscard]] virtual Sample sample(Rng& rng) const = 0;

  /// Sample the *remaining* duration of a member already present in a
  /// steady-state group (the residual-life / equilibrium distribution).
  /// For exponential mixtures this weights each class by its steady-state
  /// population share (Little's law) and exploits memorylessness; the
  /// default falls back to sample(), which is exact only for a single
  /// exponential.
  [[nodiscard]] virtual Sample sample_residual(Rng& rng) const { return sample(rng); }

  /// Mean duration over the whole population (used for steady-state sizing).
  [[nodiscard]] virtual Seconds population_mean() const noexcept = 0;
};

/// Single exponential: all members are one class (labelled by the mean
/// relative to a one-hour cutoff purely for reporting).
class ExponentialDuration final : public DurationModel {
 public:
  explicit ExponentialDuration(Seconds mean);

  [[nodiscard]] Sample sample(Rng& rng) const override;
  [[nodiscard]] Seconds population_mean() const noexcept override { return mean_; }

 private:
  Seconds mean_;
};

/// The paper's model: with probability `alpha` the member is class Cs with
/// exponential mean `short_mean` (Ms); otherwise class Cl with mean
/// `long_mean` (Ml).
class TwoClassExponential final : public DurationModel {
 public:
  TwoClassExponential(Seconds short_mean, Seconds long_mean, double short_fraction);

  [[nodiscard]] Sample sample(Rng& rng) const override;
  [[nodiscard]] Sample sample_residual(Rng& rng) const override;
  [[nodiscard]] Seconds population_mean() const noexcept override;

  [[nodiscard]] Seconds short_mean() const noexcept { return short_mean_; }
  [[nodiscard]] Seconds long_mean() const noexcept { return long_mean_; }
  [[nodiscard]] double short_fraction() const noexcept { return short_fraction_; }

 private:
  Seconds short_mean_;
  Seconds long_mean_;
  double short_fraction_;
};

/// Zipf-shaped durations (heavy tail): duration = unit * Z where
/// Z ~ Zipf(max_rank, exponent). Reproduces the MBone skew the paper cites
/// (mean hours, median minutes). Members above `class_threshold` are
/// labelled long for reporting.
class ZipfDuration final : public DurationModel {
 public:
  ZipfDuration(Seconds unit, std::uint64_t max_rank, double exponent,
               Seconds class_threshold);

  [[nodiscard]] Sample sample(Rng& rng) const override;
  /// Equilibrium (inspection-paradox corrected) residual life: the total
  /// duration is drawn length-biased (P[k] proportional to k * p(k)) and
  /// the member is uniformly far through it.
  [[nodiscard]] Sample sample_residual(Rng& rng) const override;
  [[nodiscard]] Seconds population_mean() const noexcept override;

 private:
  Seconds unit_;
  std::uint64_t max_rank_;
  double exponent_;
  Seconds class_threshold_;
  Seconds cached_mean_;
  std::vector<double> length_biased_cdf_;  // over ranks 1..max_rank
};

}  // namespace gk::workload
