#include "workload/membership.h"

#include "common/ensure.h"

namespace gk::workload {

MembershipGenerator::MembershipGenerator(std::shared_ptr<const DurationModel> durations,
                                         std::shared_ptr<const LossAssignment> losses,
                                         std::uint64_t target_size, Rng rng)
    : durations_(std::move(durations)),
      losses_(std::move(losses)),
      target_size_(target_size),
      arrival_rate_(0.0),
      rng_(rng) {
  GK_ENSURE(durations_ != nullptr);
  GK_ENSURE(losses_ != nullptr);
  GK_ENSURE(target_size_ > 0);
  arrival_rate_ = static_cast<double>(target_size_) / durations_->population_mean();
  next_arrival_ = rng_.exponential(1.0 / arrival_rate_);
}

std::vector<MemberProfile> MembershipGenerator::bootstrap() {
  std::vector<MemberProfile> members;
  members.reserve(target_size_);
  for (std::uint64_t i = 0; i < target_size_; ++i) {
    const auto sample = durations_->sample_residual(rng_);
    MemberProfile profile;
    profile.id = fresh_id();
    profile.member_class = sample.member_class;
    profile.join_time = 0.0;
    profile.duration = sample.duration;
    profile.loss_rate = losses_->assign(rng_);
    members.push_back(profile);
  }
  return members;
}

MemberProfile MembershipGenerator::next_join() {
  const auto sample = durations_->sample(rng_);
  MemberProfile profile;
  profile.id = fresh_id();
  profile.member_class = sample.member_class;
  profile.join_time = next_arrival_;
  profile.duration = sample.duration;
  profile.loss_rate = losses_->assign(rng_);
  next_arrival_ += rng_.exponential(1.0 / arrival_rate_);
  return profile;
}

}  // namespace gk::workload
