#pragma once

#include <cstdint>
#include <vector>

#include "workload/membership.h"

namespace gk::workload {

/// One batch of membership churn inside a single rekey period Tp:
/// everything a periodically rekeying key server processes at the end of the
/// epoch (Kronos-style batching, Section 2.1.1).
struct EpochBatch {
  /// Epoch index; the batch covers (index * period, (index + 1) * period].
  std::uint64_t index = 0;
  Seconds period_end = 0.0;
  /// Members that joined during the epoch (full profiles; schemes other
  /// than the PT oracle must ignore member_class and duration).
  std::vector<MemberProfile> joins;
  /// Members that departed during the epoch.
  std::vector<MemberId> leaves;
};

/// A fully materialized membership trace: the t = 0 population plus a
/// sequence of per-epoch join/leave batches. Traces are deterministic given
/// the generator's seed, so every experiment is replayable against any
/// scheme — the same churn hits the one-keytree baseline and every
/// two-partition variant.
class MembershipTrace {
 public:
  /// Generate `epoch_count` epochs of length `rekey_period` from a
  /// steady-state start.
  static MembershipTrace generate(MembershipGenerator& generator, Seconds rekey_period,
                                  std::uint64_t epoch_count);

  /// Rebuild a trace from previously recorded parts (trace_io.h). Validates
  /// that every leave refers to a known member.
  static MembershipTrace from_parts(std::vector<MemberProfile> initial,
                                    std::vector<EpochBatch> epochs,
                                    Seconds rekey_period);

  [[nodiscard]] const std::vector<MemberProfile>& initial_members() const noexcept {
    return initial_;
  }
  [[nodiscard]] const std::vector<EpochBatch>& epochs() const noexcept { return epochs_; }
  [[nodiscard]] Seconds rekey_period() const noexcept { return rekey_period_; }

  /// Profile lookup by id (covers initial members and every join).
  [[nodiscard]] const MemberProfile& profile(MemberId id) const;

  /// Average joins (== leaves in steady state) per epoch, for reporting.
  [[nodiscard]] double mean_joins_per_epoch() const noexcept;
  [[nodiscard]] double mean_leaves_per_epoch() const noexcept;

 private:
  std::vector<MemberProfile> initial_;
  std::vector<EpochBatch> epochs_;
  std::vector<MemberProfile> profiles_;  // indexed by raw(id)
  Seconds rekey_period_ = 0.0;
};

}  // namespace gk::workload
