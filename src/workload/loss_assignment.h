#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "workload/member.h"

namespace gk::workload {

/// Assigns a per-packet loss probability to each joining member, modelling
/// the receiver-path heterogeneity reported by the MBone loss measurements
/// the paper cites [Handley97].
class LossAssignment {
 public:
  virtual ~LossAssignment() = default;

  [[nodiscard]] virtual double assign(Rng& rng) const = 0;

  /// Population mean loss rate.
  [[nodiscard]] virtual double mean() const noexcept = 0;
};

/// Every member sees the same loss rate.
class UniformLoss final : public LossAssignment {
 public:
  explicit UniformLoss(double rate);

  [[nodiscard]] double assign(Rng&) const override { return rate_; }
  [[nodiscard]] double mean() const noexcept override { return rate_; }

 private:
  double rate_;
};

/// The paper's Section 4 model: a fraction `high_fraction` of members are
/// high-loss (rate `high_rate`, e.g. 20%), the rest low-loss (`low_rate`,
/// e.g. 2%).
class TwoPointLoss final : public LossAssignment {
 public:
  TwoPointLoss(double low_rate, double high_rate, double high_fraction);

  [[nodiscard]] double assign(Rng& rng) const override;
  [[nodiscard]] double mean() const noexcept override;

  [[nodiscard]] double low_rate() const noexcept { return low_rate_; }
  [[nodiscard]] double high_rate() const noexcept { return high_rate_; }
  [[nodiscard]] double high_fraction() const noexcept { return high_fraction_; }

 private:
  double low_rate_;
  double high_rate_;
  double high_fraction_;
};

/// Piecewise-empirical distribution: a list of (rate, weight) points.
/// Lets benches model richer loss populations than the two-point default.
class DiscreteLoss final : public LossAssignment {
 public:
  struct Point {
    double rate;
    double weight;
  };
  explicit DiscreteLoss(std::vector<Point> points);

  [[nodiscard]] double assign(Rng& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return mean_; }

 private:
  std::vector<Point> points_;  // weights normalized to cumulative form
  double mean_;
};

}  // namespace gk::workload
