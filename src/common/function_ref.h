#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace gk::common {

template <typename Signature>
class FunctionRef;

/// A non-owning, trivially copyable view of a callable — two words: an
/// object pointer and a call thunk. ThreadPool::parallel_for takes one so
/// dispatching a per-epoch loop body never allocates (std::function may
/// heap-allocate captures), which matters once the sharded engine fans a
/// parallel_for out per commit.
///
/// Lifetime contract: the referenced callable must outlive every call
/// through the view. Binding a temporary lambda to a FunctionRef parameter
/// is fine — the temporary lives until the full expression (the call)
/// completes — but storing a FunctionRef beyond the callable's scope is not.
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::string_view — call sites pass lambdas directly.
  FunctionRef(F&& callable) noexcept
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        call_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*call_)(void*, Args...);
};

}  // namespace gk::common
