#include "common/rng.h"

#include <cmath>

namespace gk {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded generation.
  if (bound == 0) return 0;
  while (true) {
    const std::uint64_t x = (*this)();
    const auto m = static_cast<unsigned __int128>(x) * bound;
    const auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      if (low < threshold) continue;
    }
    return static_cast<std::uint64_t>(m >> 64);
  }
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  // -mean * ln(U), guarding against U == 0.
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // For large means, a normal approximation with continuity correction is
  // sufficient for workload generation (errors are far below the stochastic
  // noise of the simulations that consume it).
  const double sigma = std::sqrt(mean);
  while (true) {
    // Box–Muller.
    const double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 0.0) continue;
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double value = mean + sigma * z + 0.5;
    if (value >= 0.0) return static_cast<std::uint64_t>(value);
  }
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  // Rejection-inversion sampling (W. Hormann, G. Derflinger 1996).
  if (n <= 1) return 1;
  const double e = 1.0 - s;
  auto h = [&](double x) {
    // Integral of x^-s; handles s == 1 via log.
    return (std::abs(e) < 1e-12) ? std::log(x) : std::pow(x, e) / e;
  };
  auto h_inv = [&](double x) {
    return (std::abs(e) < 1e-12) ? std::exp(x) : std::pow(e * x, 1.0 / e);
  };
  // Rejection-inversion bounds (Apache Commons' RejectionInversionZipfSampler
  // layout): u is drawn between h(n + 1/2) and h(3/2) - 1, the latter
  // extending the envelope by exactly p(1) = 1 so rank 1 keeps its mass.
  const double h_x1 = h(1.5) - 1.0;
  const double hn = h(static_cast<double>(n) + 0.5);
  while (true) {
    const double u = hn + uniform() * (h_x1 - hn);
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::exp(-s * std::log(kd))) return k;
  }
}

Rng Rng::fork() noexcept { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace gk
