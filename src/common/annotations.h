#pragma once

/// Clang thread-safety capability annotations (DESIGN.md §13).
///
/// Every shared-state component in the tree declares its lock discipline
/// with these macros: which mutex guards which field, which functions
/// require or acquire which capability. Under Clang the declarations are
/// *checked* — the `clang-threadsafety` CI job builds the tree with
/// `-Wthread-safety -Wthread-safety-beta -Werror`, so a field access
/// outside its lock is a compile error, not a TSan roll of the dice.
/// Under GCC (and any non-Clang compiler) every macro expands to nothing.
///
/// gklint's `lock-discipline` rule enforces *presence*: in any class that
/// owns a mutex or an MPSC queue, every data member must either be atomic,
/// const, or carry one of these annotations, so new fields cannot land
/// without a declared owner.

#if defined(__clang__)
#define GK_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GK_THREAD_ANNOTATION__(x)
#endif

/// Type-level: this class is a lockable capability ("mutex").
#define GK_CAPABILITY(x) GK_THREAD_ANNOTATION__(capability(x))

/// Type-level: RAII object that holds a capability for its lifetime.
#define GK_SCOPED_CAPABILITY GK_THREAD_ANNOTATION__(scoped_lockable)

/// Field: may only be read or written while holding `x`.
#define GK_GUARDED_BY(x) GK_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define GK_PT_GUARDED_BY(x) GK_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering edges, for deadlock detection across capabilities.
#define GK_ACQUIRED_BEFORE(...) GK_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define GK_ACQUIRED_AFTER(...) GK_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function: caller must already hold the capability (exclusive / shared).
#define GK_REQUIRES(...) GK_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define GK_REQUIRES_SHARED(...) \
  GK_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function: acquires / releases the capability.
#define GK_ACQUIRE(...) GK_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define GK_ACQUIRE_SHARED(...) \
  GK_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define GK_RELEASE(...) GK_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define GK_RELEASE_SHARED(...) \
  GK_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define GK_TRY_ACQUIRE(...) GK_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function: must NOT be called while holding the capability.
#define GK_EXCLUDES(...) GK_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (fatal if not).
#define GK_ASSERT_CAPABILITY(x) GK_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define GK_RETURN_CAPABILITY(x) GK_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: turn the analysis off for one function. Every use needs a
/// comment saying why the analysis cannot express the truth.
#define GK_NO_THREAD_SAFETY_ANALYSIS GK_THREAD_ANNOTATION__(no_thread_safety_analysis)

// ---- Documentation-grade ownership annotations ------------------------------
//
// Clang's analysis only models lock-shaped synchronization. Two ownership
// disciplines in this tree are real but lock-free, so they get declarative
// markers instead: they expand to nothing on every compiler, but gklint's
// `lock-discipline` rule accepts them as a field's declared owner, and a
// reviewer grepping for them finds the contract in one hop.

/// Written only during construction or single-threaded setup, before any
/// other thread can observe the object; immutable once threads exist.
#define GK_CONST_AFTER_INIT

/// Owned by the single consumer / committing thread of an MPSC design.
/// Producers must never touch this field; there is no lock to take.
#define GK_CONSUMER_ONLY
