#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/ensure.h"

namespace gk::common {

/// Append-only little-endian byte sink shared by every persistence format in
/// the library (key-tree snapshots, the rekey journal, server state blobs).
/// Formats built on it stay trivially diffable across subsystems.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// IEEE-754 bit pattern; exact round-trip, no locale/format concerns.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  /// Length-prefixed blob (u64 length + raw bytes).
  void blob(std::span<const std::uint8_t> data) {
    u64(data.size());
    bytes(data);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(out_); }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader over a serialized byte span. Every
/// overrun throws ContractViolation ("truncated"), so corrupt or cut-short
/// journals and snapshots fail loudly instead of yielding garbage state.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[offset_++];
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[offset_++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[offset_++]} << (8 * i);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t count) {
    require(count);
    auto view = bytes_.subspan(offset_, count);
    offset_ += count;
    return view;
  }

  /// Length-prefixed blob written by ByteWriter::blob.
  std::span<const std::uint8_t> blob() {
    const auto length = u64();
    GK_ENSURE_MSG(length <= remaining(), "serialized blob truncated");
    return bytes(static_cast<std::size_t>(length));
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - offset_; }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  void require(std::size_t count) const {
    GK_ENSURE_MSG(offset_ + count <= bytes_.size(), "serialized data truncated");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace gk::common
