#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/ensure.h"

namespace gk {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GK_ENSURE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GK_ENSURE_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width " << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  GK_ENSURE(row < rows_.size());
  GK_ENSURE(col < headers_.size());
  return rows_[row][col];
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;

  os << '\n' << title << '\n' << std::string(std::max(total, title.size()), '-') << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::setw(static_cast<int>(widths[c])) << headers_[c]
       << (c + 1 < headers_.size() ? " | " : "\n");
  os << std::string(std::max(total, title.size()), '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << std::setw(static_cast<int>(widths[c])) << row[c]
         << (c + 1 < row.size() ? " | " : "\n");
  }
  os << '\n';
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
  return os.str();
}

}  // namespace gk
