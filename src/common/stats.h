#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gk {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Half-width of the ~95% confidence interval (normal approximation).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the
/// first/last bin. Used for membership-duration and rekey-cost summaries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Empirical quantile (q in [0,1]) via linear interpolation within the bin.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace gk
