#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gk {

/// Thrown when a library-level precondition or invariant is violated.
///
/// Library code signals contract violations with exceptions rather than
/// aborting so that simulations driving millions of events can surface a
/// precise diagnostic (which member, which epoch) to the harness.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void ensure_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": contract violated: (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace gk

/// Precondition / invariant check that is always on (cheap checks only).
#define GK_ENSURE(expr)                                               \
  do {                                                                \
    if (!(expr)) ::gk::detail::ensure_fail(#expr, __FILE__, __LINE__, {}); \
  } while (false)

/// Variant carrying a human-readable context message.
#define GK_ENSURE_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream gk_ensure_os;                                \
      gk_ensure_os << msg;                                            \
      ::gk::detail::ensure_fail(#expr, __FILE__, __LINE__, gk_ensure_os.str()); \
    }                                                                 \
  } while (false)
