#include "common/thread_pool.h"

#include <algorithm>

namespace gk::common {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::drain_current_job() {
  // Claim chunks until the cursor runs out. Called with mutex_ held; the
  // lock is dropped around the user function.
  while (cursor_ < job_end_) {
    const std::size_t begin = cursor_;
    const std::size_t end = std::min(job_end_, begin + job_grain_);
    cursor_ = end;
    ++in_flight_;
    const Task fn = *job_;  // two-word copy; the view outlives parallel_for
    mutex_.unlock();
    fn(begin, end);
    mutex_.lock();
    --in_flight_;
  }
}

void ThreadPool::worker_loop() {
  mutex_.lock();
  std::uint64_t seen_generation = 0;
  while (true) {
    while (!(stop_ || (job_.has_value() && generation_ != seen_generation &&
                       cursor_ < job_end_)))
      work_ready_.wait(mutex_);
    if (stop_) break;
    seen_generation = generation_;
    drain_current_job();
    if (in_flight_ == 0 && cursor_ >= job_end_) work_done_.notify_all();
  }
  mutex_.unlock();
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, Task fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  mutex_.lock();
  job_ = fn;
  job_end_ = n;
  job_grain_ = grain;
  cursor_ = 0;
  ++generation_;
  work_ready_.notify_all();
  drain_current_job();  // the caller is a lane too
  while (!(cursor_ >= job_end_ && in_flight_ == 0)) work_done_.wait(mutex_);
  job_.reset();
  mutex_.unlock();
}

}  // namespace gk::common
