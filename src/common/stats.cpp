#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace gk {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  GK_ENSURE(hi > lo);
  GK_ENSURE(bins > 0);
}

void Histogram::add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  GK_ENSURE(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  GK_ENSURE(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cumulative + c >= target && c > 0.0) {
      const double frac = (target - cumulative) / c;
      return bin_lo(i) + frac * width_;
    }
    cumulative += c;
  }
  return hi_;
}

}  // namespace gk
