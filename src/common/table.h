#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gk {

/// Column-aligned plain-text table used by the bench binaries to print the
/// paper's figures as series. Also serializes to CSV so plots can be
/// regenerated externally.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; width must equal the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a row of doubles with the given precision.
  void add_row(const std::vector<double>& values, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Pretty-print with a title banner.
  void print(std::ostream& os, const std::string& title) const;

  /// Comma-separated form (headers + rows).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for ad-hoc rows).
[[nodiscard]] std::string fmt(double value, int precision = 2);

}  // namespace gk
