#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "common/annotations.h"

namespace gk::common {

/// Unbounded multi-producer single-consumer queue (Vyukov's non-intrusive
/// design): producers stage with one atomic exchange + one release store —
/// wait-free, no locks, no CAS loops — and the single consumer drains with
/// plain acquire loads. The sharded rekey engine fronts its epoch barrier
/// with one of these: any number of ingestion threads stage join/leave
/// mutations while the committing thread drains the queue at the top of
/// end_epoch().
///
/// Ordering: per-producer FIFO is preserved; mutations from different
/// producers interleave in linearization order of their push() exchanges.
/// A push that races the consumer's drain may be surfaced by the *next*
/// drain instead of the current one (try_pop returns nullopt while a
/// producer is mid-link) — exactly the barrier semantics staging wants:
/// an op is guaranteed into epoch E's batch only if its push completed
/// before E's drain began.
///
/// Only push() may be called from many threads; try_pop() and
/// approx_empty() belong to the single consumer.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* node = tail_;
    while (node != nullptr) {
      // relaxed: destruction requires all producers to have quiesced, so
      // there is no concurrent access left to order against.
      Node* next = node->next.load(std::memory_order_relaxed);
      if (node != &stub_) delete node;
      node = next;
    }
  }

  /// Stage one value. Wait-free; callable from any thread.
  void push(T value) {
    push_node(new Node(std::move(value)));
  }

  /// Dequeue the oldest staged value. Single-consumer. Returns nullopt when
  /// the queue is empty *or* the head producer is mid-link (its value will
  /// surface on a later call).
  [[nodiscard]] std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      // The stub carries no value; step past it if anything is linked.
      if (next == nullptr) return std::nullopt;
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return take(tail);
    }
    if (tail != head_.load(std::memory_order_acquire))
      return std::nullopt;  // a producer is between exchange and link
    // `tail` is the last real node: re-insert the stub behind it so the
    // list never empties, then consume `tail`.
    push_node(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return take(tail);
    }
    return std::nullopt;
  }

  /// Consumer-side emptiness probe (save_state precondition checks). Never
  /// reports empty while a fully pushed value is unconsumed.
  [[nodiscard]] bool approx_empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr &&
           tail_ == head_.load(std::memory_order_acquire);
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& moved) : value(std::move(moved)) {}
    std::atomic<Node*> next{nullptr};
    std::optional<T> value;  // engaged for real nodes, empty for the stub
  };

  void push_node(Node* node) {
    // relaxed: the node is still private to this producer; the exchange
    // below is what publishes it, and the release store on prev->next is
    // what makes the payload visible to the consumer.
    node->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  [[nodiscard]] std::optional<T> take(Node* node) {
    std::optional<T> value = std::move(node->value);
    delete node;
    return value;
  }

  std::atomic<Node*> head_;  // producers' end (most recent push)
  /// Consumer's end (oldest unconsumed). Never touched by producers, so it
  /// needs no atomicity — single-consumer is the class contract.
  Node* tail_ GK_CONSUMER_ONLY;
  /// Sentinel keeping the list non-empty; relinked only by the consumer,
  /// its `next` field is atomic like every node's.
  Node stub_ GK_CONSUMER_ONLY;
};

}  // namespace gk::common
