#pragma once

#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/function_ref.h"
#include "common/mutex.h"

namespace gk::common {

/// A reusable fixed-size worker pool for data-parallel loops.
///
/// The rekey engine fans independent per-node work (wrap emission for
/// disjoint dirty subtrees) across this pool. Workers persist for the pool's
/// lifetime, so a per-epoch commit pays no thread spawn cost. The pool is
/// deliberately minimal: one blocking `parallel_for` at a time, caller
/// participates in the work, dynamic chunk self-scheduling via an atomic
/// cursor. Output determinism is the *caller's* contract — tasks must write
/// only to disjoint, index-addressed slots so results are byte-identical to
/// a sequential run regardless of execution order.
class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 means std::thread::hardware_concurrency().
  /// A pool of size 1 runs everything on the calling thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread's lane).
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// The loop body: a non-owning view, so dispatching a parallel_for does
  /// no per-call allocation no matter what the lambda captures.
  using Task = FunctionRef<void(std::size_t, std::size_t)>;

  /// Apply `fn(begin, end)` over contiguous chunks covering [0, n), at most
  /// `grain` indices per call, in parallel. Blocks until every index is
  /// processed. Must not be called reentrantly from inside `fn`.
  void parallel_for(std::size_t n, std::size_t grain, Task fn);

 private:
  void worker_loop() GK_EXCLUDES(mutex_);
  /// Claims and runs chunks until the cursor runs out. The lock is dropped
  /// around each user-function call and reacquired to update the counters.
  void drain_current_job() GK_REQUIRES(mutex_);

  std::vector<std::thread> workers_ GK_CONST_AFTER_INIT;

  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  std::optional<Task> job_ GK_GUARDED_BY(mutex_);
  std::size_t job_end_ GK_GUARDED_BY(mutex_) = 0;
  std::size_t job_grain_ GK_GUARDED_BY(mutex_) = 1;
  std::size_t cursor_ GK_GUARDED_BY(mutex_) = 0;     // next unclaimed index
  std::size_t in_flight_ GK_GUARDED_BY(mutex_) = 0;  // chunks claimed, unfinished
  std::uint64_t generation_ GK_GUARDED_BY(mutex_) = 0;  // bumps per parallel_for
  bool stop_ GK_GUARDED_BY(mutex_) = false;
};

}  // namespace gk::common
