#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

namespace gk {

/// Deterministic pseudo-random generator (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in the library draws through an explicitly
/// seeded Rng so that each figure in EXPERIMENTS.md reproduces bit-for-bit.
/// The engine satisfies the C++ UniformRandomBitGenerator requirements, but
/// we provide our own distributions because libstdc++'s are not stable
/// across versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value (xoshiro256**).
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed variate with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Poisson variate with the given mean (>= 0). Uses inversion for small
  /// means and the PTRS transformed-rejection method for large ones.
  std::uint64_t poisson(double mean) noexcept;

  /// Zipf-distributed integer in [1, n] with exponent s > 0
  /// (probability of k proportional to k^-s). Uses rejection-inversion.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_u64(i)]);
    }
  }

  /// Derive an independent child stream (for per-member / per-tree streams).
  Rng fork() noexcept;

  /// The engine's complete internal state. Persisting it (and restoring with
  /// restore_state) makes every future draw of the stream reproducible —
  /// the property the rekey journal relies on for byte-identical crash
  /// recovery.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State save_state() const noexcept { return state_; }
  void restore_state(const State& state) noexcept { state_ = state; }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gk
