#include "common/math.h"

#include <cmath>
#include <limits>

namespace gk {

double log_binomial(std::int64_t n, std::int64_t k) noexcept {
  if (k < 0 || k > n || n < 0) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0);
}

double prob_subtree_untouched(std::int64_t n, std::int64_t s, std::int64_t l) noexcept {
  if (l <= 0) return 1.0;
  if (s <= 0) return 1.0;
  if (l > n - s) return 0.0;
  const double log_p = log_binomial(n - s, l) - log_binomial(n, l);
  return std::exp(log_p);
}

std::uint64_t ipow(std::uint64_t d, unsigned e) noexcept {
  std::uint64_t result = 1;
  while (e-- > 0) result *= d;
  return result;
}

unsigned tree_height(std::uint64_t n, unsigned d) noexcept {
  unsigned h = 0;
  std::uint64_t capacity = 1;
  while (capacity < n) {
    capacity *= d;
    ++h;
  }
  return h;
}

}  // namespace gk
