#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace gk::common {

/// std::mutex with thread-safety capability annotations. The standard
/// library's mutex carries no Clang capability attributes, so fields
/// declared GK_GUARDED_BY(a std::mutex) are unverifiable; this wrapper is
/// what makes `-Wthread-safety` bite. Same cost as std::mutex — the
/// annotations are compile-time only.
class GK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GK_ACQUIRE() { mutex_.lock(); }
  void unlock() GK_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() GK_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for Mutex (the std::scoped_lock shape, capability-annotated).
class GK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GK_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() GK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() is deliberately
/// predicate-free: Clang analyzes a predicate lambda as a separate function
/// that appears to read guarded fields without the lock, so callers write
/// the standard `while (!cond) cv.wait(mutex);` loop instead — which the
/// analysis follows exactly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, sleep, and reacquire before returning.
  /// Spurious wakeups happen; always wait in a condition loop.
  void wait(Mutex& mutex) GK_REQUIRES(mutex) {
    std::unique_lock<std::mutex> relock(mutex.mutex_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();  // the caller still logically holds the capability
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gk::common
