#pragma once

#include <cstdint>

namespace gk {

/// Natural log of the binomial coefficient C(n, k), evaluated via lgamma so
/// it is stable for the group sizes the paper sweeps (N up to 2^18).
/// Returns -infinity when k > n or k < 0 (an impossible choice).
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k) noexcept;

/// C(n-s, l) / C(n, l): the probability that a specific subtree of s leaves
/// receives none of l uniformly placed departures (Appendix A, eq. 11's
/// complement). Computed in log space. Returns 0 when l > n - s.
[[nodiscard]] double prob_subtree_untouched(std::int64_t n, std::int64_t s,
                                            std::int64_t l) noexcept;

/// Integer power d^e for small exponents (no overflow checking beyond
/// 64-bit; callers sweep d <= 16, e <= 20).
[[nodiscard]] std::uint64_t ipow(std::uint64_t d, unsigned e) noexcept;

/// Smallest h such that d^h >= n (height of a balanced d-ary tree over n
/// leaves). Precondition: d >= 2, n >= 1.
[[nodiscard]] unsigned tree_height(std::uint64_t n, unsigned d) noexcept;

/// Linear interpolation helper: a + t * (b - a).
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a + t * (b - a);
}

}  // namespace gk
