#pragma once

#include <cstdint>
#include <string>

#include "net/outbound.h"
#include "partition/factory.h"

namespace gk::net {

/// Everything a gkd daemon needs to serve one group: which rekeying scheme
/// and shard count back it (any name partition::factory knows), where to
/// listen, and the backpressure contract slow subscribers are held to.
struct ServerConfig {
  /// Scheme name for partition::make_sharded_server ("one-tree", "qt",
  /// "tt", "pt", "oft-tt", "elk-tt", "loss-bin", "batch").
  std::string scheme = "tt";
  partition::SchemeConfig scheme_config{};
  /// Subtree shards under the shared top DEK (1 = plain unsharded engine).
  unsigned shards = 1;
  /// Seed of the engine's RNG stream. A twin engine built with the same
  /// seed and fed the same membership operations emits byte-identical
  /// wraps — the property the loopback tests pin.
  std::uint64_t seed = 20030519;

  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (listen() returns
  /// the actual one).
  std::uint16_t port = 0;
  int listen_backlog = 1024;

  /// Commit a rekey epoch every this many milliseconds; 0 serves epochs on
  /// demand only (kCommit frames, or commit_epoch() posted by an owner).
  std::uint32_t epoch_interval_ms = 0;

  /// Straggler contract for the rekey fan-out: a subscriber whose send
  /// queue is still above the high-water mark when an epoch fans out burns
  /// one delivery attempt, waits out the policy's backoff, and is evicted
  /// (connection closed, departure staged) when the budget runs out —
  /// the same schedule transport::run_resync applies in-sim.
  StragglerPolicy straggler{};
  /// Per-session queued-byte high-water mark above which an epoch delivery
  /// counts as blocked.
  std::size_t max_outbound_bytes = 4u << 20;
  /// SO_SNDBUF for accepted sessions; 0 keeps the kernel's autotuned
  /// default. Tests pin it low so a stalled subscriber's backpressure
  /// surfaces in the daemon's own queue deterministically instead of
  /// vanishing into elastic kernel buffering.
  int session_sndbuf = 0;

  /// Accept kCommit / kShutdown control frames from connected peers.
  /// Load generators and CI drive the daemon through these; a deployment
  /// embedding the server behind its own control plane turns them off.
  bool allow_remote_commit = true;
  bool allow_remote_shutdown = true;
};

}  // namespace gk::net
