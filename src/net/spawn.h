#pragma once

#include <cstdint>
#include <sys/types.h>

#include "net/server_config.h"

namespace gk::net {

/// Raise RLIMIT_NOFILE's soft limit to the hard limit and return the
/// resulting soft limit. Mass-session processes (the load generator, the
/// 10k-session e2e) call this before opening tens of thousands of
/// sockets, then clamp their session target under what they got — a
/// default 1024-fd environment should degrade to a smaller run, not die
/// on EMFILE mid-ramp.
std::size_t raise_fd_limit() noexcept;

/// A gkd daemon forked into its own process. The 10k-session loopback
/// tests and the load generator need roughly one fd per session on each
/// end; splitting client and server across two processes keeps both under
/// the per-process fd ceiling, and also proves the daemon serves real
/// sockets with no shared address space. The child builds the engine,
/// listens, reports the bound port back over a pipe, and runs until
/// SIGTERM (handled via Server::stop(), which is async-signal-safe) or a
/// kShutdown frame.
class SpawnedServer {
 public:
  /// Fork and start a daemon with this config. Blocks until the child
  /// reports its port.
  explicit SpawnedServer(const ServerConfig& config);

  /// SIGTERMs and reaps the child if still running.
  ~SpawnedServer();
  SpawnedServer(const SpawnedServer&) = delete;
  SpawnedServer& operator=(const SpawnedServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

  /// Ask the child to stop (SIGTERM) and wait for it; returns its exit
  /// status. Safe to call once; the destructor covers the rest.
  int terminate();

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  bool reaped_ = false;
};

}  // namespace gk::net
