#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keywrap.h"
#include "net/frame.h"
#include "workload/member.h"

namespace gk::net {

/// Blocking-socket client for one gkd connection: the REPL's `serve`
/// peer, the loopback tests, and CI tooling speak through this. The
/// request helpers run one round trip each; rekey fan-out frames that
/// arrive interleaved with a response are stashed and replayed in order
/// through next_rekey()/wait_rekey(), so a subscriber never loses an
/// epoch by also issuing requests. (The mass load generator does not use
/// this class — tens of thousands of concurrent sessions need a
/// nonblocking loop — but it shares the same FrameCursor framing.)
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect (blocking) to a daemon. Throws common::ContractViolation on
  /// connection failure.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  /// The underlying socket (load generators steal it to go nonblocking).
  [[nodiscard]] int raw_fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Identify as `member`; returns the daemon's epoch and group size.
  HelloAckBody hello(std::uint64_t member);

  /// Join the group; returns the registration unicast.
  JoinAckBody join(workload::MemberClass member_class);

  /// Stage a departure (acknowledged; the daemon closes the connection at
  /// the next commit).
  void leave();

  /// Ask the daemon to commit the staged epoch now.
  CommitAckBody commit();

  /// Fetch this member's catch-up bundle.
  [[nodiscard]] std::vector<crypto::WrappedKey> resync();

  [[nodiscard]] ServerCounters stats();

  /// Ask the daemon to exit (no response; the daemon stops its loop).
  void request_shutdown();

  /// Send a raw frame (protocol tests).
  void send(const Frame& frame);

  /// Next frame of any type, blocking. Throws on EOF or a poisoned
  /// stream.
  [[nodiscard]] Frame next_frame();

  /// Nonblocking pump: drain whatever the socket has (MSG_DONTWAIT) and
  /// return the next complete frame, or nullopt when none is buffered.
  /// Stashed rekey frames are replayed first. Callers fanning one epoch
  /// across thousands of blocking clients must drain round-robin through
  /// this — a serial blocking sweep leaves the tail's receive buffers
  /// full while the daemon is still sending, and loopback TCP punishes
  /// that with segment drops and minutes-long RTO backoff.
  [[nodiscard]] std::optional<Frame> poll_frame();

  /// Already-stashed rekey frame, if any (non-blocking).
  [[nodiscard]] std::optional<Frame> next_rekey();

  /// Block until a rekey fan-out frame arrives (stashed ones first).
  [[nodiscard]] Frame wait_rekey();

 private:
  /// Read frames until one of type `want` arrives. kRekey frames are
  /// stashed; a kError frame or any other type throws.
  [[nodiscard]] Frame expect(FrameType want, const char* what);

  int fd_ = -1;
  FrameCursor cursor_;
  std::deque<Frame> rekeys_;
};

}  // namespace gk::net
