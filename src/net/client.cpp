#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/ensure.h"
#include "wire/error.h"

namespace gk::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      cursor_(std::move(other.cursor_)),
      rekeys_(std::move(other.rekeys_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    cursor_ = std::move(other.cursor_);
    rekeys_ = std::move(other.rekeys_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  GK_ENSURE_MSG(fd_ < 0, "Client::connect called twice");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  GK_ENSURE_MSG(fd_ >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  GK_ENSURE_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "host is not a valid IPv4 address");
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd_);
    fd_ = -1;
    GK_ENSURE_MSG(false, "connect() to the key server failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const Frame& frame) {
  GK_ENSURE_MSG(fd_ >= 0, "Client::send on a closed connection");
  const auto bytes = encode_frame(frame.type, frame.payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      GK_ENSURE_MSG(false, "send() to the key server failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame Client::next_frame() {
  GK_ENSURE_MSG(fd_ >= 0, "Client::next_frame on a closed connection");
  for (;;) {
    if (auto frame = cursor_.next()) return std::move(*frame);
    std::uint8_t buffer[kReadChunk];
    const auto n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      cursor_.feed({buffer, static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    GK_ENSURE_MSG(false, "key server closed the connection");
  }
}

std::optional<Frame> Client::poll_frame() {
  GK_ENSURE_MSG(fd_ >= 0, "Client::poll_frame on a closed connection");
  if (!rekeys_.empty()) {
    Frame frame = std::move(rekeys_.front());
    rekeys_.pop_front();
    return frame;
  }
  if (auto frame = cursor_.next()) return std::move(*frame);
  for (;;) {
    std::uint8_t buffer[kReadChunk];
    const auto n = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (n > 0) {
      cursor_.feed({buffer, static_cast<std::size_t>(n)});
      if (auto frame = cursor_.next()) return std::move(*frame);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return std::nullopt;
    GK_ENSURE_MSG(false, "key server closed the connection");
  }
}

Frame Client::expect(FrameType want, const char* what) {
  for (;;) {
    auto frame = next_frame();
    if (frame.type == want) return frame;
    if (frame.type == FrameType::kRekey) {
      rekeys_.push_back(std::move(frame));
      continue;
    }
    if (frame.type == FrameType::kError) {
      const auto body = parse_error(frame);
      throw wire::WireError(wire::WireFault::kMalformed,
                            std::string(what) + ": server error: " + body.text);
    }
    throw wire::WireError(wire::WireFault::kMalformed,
                          std::string(what) + ": unexpected response frame");
  }
}

HelloAckBody Client::hello(std::uint64_t member) {
  send(make_hello({member, kProtocolVersion}));
  return parse_hello_ack(expect(FrameType::kHelloAck, "hello"));
}

JoinAckBody Client::join(workload::MemberClass member_class) {
  send(make_join({member_class}));
  return parse_join_ack(expect(FrameType::kJoinAck, "join"));
}

void Client::leave() {
  send(make_empty(FrameType::kLeave));
  (void)expect(FrameType::kLeaveAck, "leave");
}

CommitAckBody Client::commit() {
  send(make_empty(FrameType::kCommit));
  return parse_commit_ack(expect(FrameType::kCommitAck, "commit"));
}

std::vector<crypto::WrappedKey> Client::resync() {
  send(make_empty(FrameType::kResync));
  return parse_resync_bundle(expect(FrameType::kResyncBundle, "resync"));
}

ServerCounters Client::stats() {
  send(make_empty(FrameType::kStats));
  return parse_stats_ack(expect(FrameType::kStatsAck, "stats"));
}

void Client::request_shutdown() { send(make_empty(FrameType::kShutdown)); }

std::optional<Frame> Client::next_rekey() {
  if (rekeys_.empty()) return std::nullopt;
  auto frame = std::move(rekeys_.front());
  rekeys_.pop_front();
  return frame;
}

Frame Client::wait_rekey() {
  if (auto stashed = next_rekey()) return std::move(*stashed);
  return expect(FrameType::kRekey, "rekey");
}

}  // namespace gk::net
