#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/ensure.h"
#include "wire/error.h"
#include "wire/record.h"

namespace gk::net {
namespace {

constexpr int kMaxEpollEvents = 256;
constexpr std::size_t kReadChunk = 64 * 1024;

std::unique_ptr<engine::DurableRekeyServer> engine_from(const ServerConfig& config) {
  return partition::make_sharded_server(config.scheme, config.scheme_config,
                                        config.shards, Rng(config.seed));
}

}  // namespace

Server::Server(std::unique_ptr<engine::DurableRekeyServer> engine, ServerConfig config)
    : config_(std::move(config)),
      engine_(std::move(engine)),
      resync_rng_(config_.seed ^ 0x9e3779b97f4a7c15ULL) {}

Server::Server(const ServerConfig& config) : Server(engine_from(config), config) {}

Server::~Server() {
  for (auto& [fd, session] : sessions_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint16_t Server::listen() {
  GK_ENSURE_MSG(listen_fd_ < 0, "Server::listen called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  GK_ENSURE_MSG(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  GK_ENSURE_MSG(::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
                "bind_address is not a valid IPv4 address");
  GK_ENSURE_MSG(
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind() failed (port in use?)");
  GK_ENSURE_MSG(::listen(listen_fd_, config_.listen_backlog) == 0, "listen() failed");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  GK_ENSURE_MSG(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0,
      "getsockname() failed");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  GK_ENSURE_MSG(epoll_fd_ >= 0, "epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  GK_ENSURE_MSG(wake_fd_ >= 0, "eventfd() failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  GK_ENSURE_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
                "epoll_ctl(listen) failed");
  ev.data.fd = wake_fd_;
  GK_ENSURE_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                "epoll_ctl(wake) failed");
  return ntohs(bound.sin_port);
}

void Server::run() {
  GK_ENSURE_MSG(epoll_fd_ >= 0, "Server::run before listen()");
  const bool timed = config_.epoch_interval_ms > 0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.epoch_interval_ms);
  while (!stopped_.load(std::memory_order_acquire)) {
    int timeout = -1;
    if (timed) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        commit_epoch();
        reap_doomed();
        deadline = now + std::chrono::milliseconds(config_.epoch_interval_ms);
      }
      timeout = static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                     deadline - std::chrono::steady_clock::now())
                                     .count());
      if (timeout < 0) timeout = 0;
    }
    if (!poll_once(timeout)) break;
  }
}

bool Server::poll_once(int timeout_ms) {
  GK_ENSURE_MSG(epoll_fd_ >= 0, "Server::poll_once before listen()");
  epoll_event events[kMaxEpollEvents];
  int ready = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
  if (ready < 0) {
    GK_ENSURE_MSG(errno == EINTR, "epoll_wait() failed");
    ready = 0;
  }
  for (int i = 0; i < ready; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      drain_wakeups();
      run_posted();
      continue;
    }
    if (fd == listen_fd_) {
      handle_accept();
      continue;
    }
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;  // closed earlier in this batch
    Session& session = *it->second;
    if (session.doomed) continue;
    if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
      close_session(session, session.joined);
      continue;
    }
    if ((events[i].events & EPOLLOUT) != 0) handle_writable(session);
    if (!session.doomed && (events[i].events & EPOLLIN) != 0) handle_readable(session);
  }
  reap_doomed();
  return !stopped_.load(std::memory_order_acquire);
}

void Server::stop() noexcept {
  stopped_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::post(std::function<void()> task) {
  {
    common::MutexLock lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::drain_wakeups() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void Server::run_posted() {
  std::vector<std::function<void()>> tasks;
  {
    common::MutexLock lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void Server::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient per-connection error: nothing to do
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.session_sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.session_sndbuf,
                   sizeof(config_.session_sndbuf));
    auto session = std::make_unique<Session>();
    session->fd = fd;
    session->gate = OutboundGate(config_.straggler);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    sessions_.emplace(fd, std::move(session));
    ++stats_.accepted_connections;
  }
}

void Server::handle_readable(Session& session) {
  std::uint8_t buffer[kReadChunk];
  for (;;) {
    const auto n = ::recv(session.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      session.cursor.feed({buffer, static_cast<std::size_t>(n)});
      if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
      continue;
    }
    if (n == 0) {  // peer closed; a joined member vanishing is a departure
      close_session(session, session.joined);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_session(session, session.joined);
    return;
  }
  try {
    while (auto frame = session.cursor.next()) {
      ++stats_.frames_received;
      dispatch(session, *frame);
      if (session.doomed) return;
    }
  } catch (const wire::WireError&) {
    // Hostile or corrupt framing: the stream cannot resynchronize.
    close_session(session, session.joined);
  } catch (const ContractViolation& violation) {
    // The engine rejected the request (e.g. a join for a member id that is
    // already in the group). Engine contracts check before they mutate, so
    // the group state is intact: refuse the one connection, keep serving.
    send_error(session, FrameErrorCode::kRefused, violation.what());
    flush(session);
    close_session(session, session.joined);
  }
}

void Server::dispatch(Session& session, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      on_hello(session, frame);
      return;
    case FrameType::kJoin:
      on_join(session, frame);
      return;
    case FrameType::kLeave:
      on_leave(session);
      return;
    case FrameType::kResync:
      on_resync(session);
      return;
    case FrameType::kCommit:
      on_commit(session);
      return;
    case FrameType::kStats:
      send(session, make_stats_ack(counters_snapshot()));
      return;
    case FrameType::kShutdown:
      if (!config_.allow_remote_shutdown) {
        send_error(session, FrameErrorCode::kRefused, "remote shutdown disabled");
        return;
      }
      stop();
      return;
    default:
      send_error(session, FrameErrorCode::kBadState, "frame not valid at a server");
      return;
  }
}

void Server::on_hello(Session& session, const Frame& frame) {
  const auto body = parse_hello(frame);
  if (session.state != Session::State::kHandshake) {
    send_error(session, FrameErrorCode::kBadState, "hello already exchanged");
    return;
  }
  if (body.protocol > kProtocolVersion) {
    send_error(session, FrameErrorCode::kBadVersion, "protocol version too new");
    close_session(session, false);
    return;
  }
  if (registry_.contains(body.member)) {
    send_error(session, FrameErrorCode::kDuplicateMember,
               "member id already connected");
    close_session(session, false);
    return;
  }
  session.member = workload::make_member_id(body.member);
  session.state = Session::State::kActive;
  registry_.emplace(body.member, &session);
  send(session, make_hello_ack({engine_->epoch(), engine_->size()}));
}

void Server::on_join(Session& session, const Frame& frame) {
  const auto body = parse_join(frame);
  if (session.state != Session::State::kActive || session.joined) {
    send_error(session, FrameErrorCode::kBadState, "join requires hello, once");
    return;
  }
  workload::MemberProfile profile;
  profile.id = session.member;
  profile.member_class = body.member_class;
  const auto registration = engine_->join(profile);
  session.joined = true;
  session.joined_epoch = engine_->epoch();
  ++stats_.counters.joins;
  send(session,
       make_join_ack({crypto::raw(registration.leaf_id), registration.individual_key}));
}

void Server::on_leave(Session& session) {
  if (!session.joined) {
    send_error(session, FrameErrorCode::kBadState, "leave without a joined member");
    return;
  }
  engine_->leave(session.member);
  session.joined = false;
  session.state = Session::State::kDeparting;
  ++stats_.counters.leaves;
  send(session, make_empty(FrameType::kLeaveAck));
}

void Server::on_resync(Session& session) {
  if (!session.joined || engine_->epoch() <= session.joined_epoch) {
    send_error(session, FrameErrorCode::kNotAdmitted,
               "resync needs a committed membership");
    return;
  }
  const auto bundle = engine::make_catchup_bundle(*engine_, session.member, resync_rng_);
  ++stats_.counters.resyncs;
  send(session, make_resync_bundle(bundle));
  // The member is actively catching up; give it back its full budget.
  session.gate.reset();
  session.first_blocked_epoch = 0;
}

void Server::on_commit(Session& session) {
  if (!config_.allow_remote_commit) {
    send_error(session, FrameErrorCode::kRefused, "remote commit disabled");
    return;
  }
  ++stats_.commits_requested;
  const auto epoch = commit_epoch();
  if (session.doomed) return;  // the requester itself straggled out
  CommitAckBody ack;
  ack.epoch = epoch;
  ack.wraps = last_commit_wraps_;
  ack.subscribers = last_commit_subscribers_;
  send(session, make_commit_ack(ack));
}

std::uint64_t Server::commit_epoch() {
  const auto output = engine_->end_epoch();
  ++stats_.counters.epochs_committed;
  const auto payload = wire::RekeyRecord::encode(output.message);
  auto framed = std::make_shared<const std::vector<std::uint8_t>>(
      encode_frame(FrameType::kRekey, payload));
  last_commit_wraps_ = static_cast<std::uint32_t>(output.message.wraps.size());
  std::uint32_t subscribers = 0;
  for (auto& [fd, owned] : sessions_) {
    Session& session = *owned;
    if (session.doomed) continue;
    if (session.state == Session::State::kDeparting) {
      close_session(session, false);
      continue;
    }
    if (!session.joined) continue;
    if (deliver_epoch(session, framed, output.epoch)) ++subscribers;
  }
  last_commit_subscribers_ = subscribers;
  return output.epoch;
}

bool Server::deliver_epoch(Session& session,
                           const std::shared_ptr<const std::vector<std::uint8_t>>& frame,
                           std::uint64_t epoch) {
  switch (session.gate.begin_round()) {
    case OutboundGate::Round::kBackoff:
      return true;  // sits this epoch out; resync will catch it up
    case OutboundGate::Round::kDeliver:
      break;
  }
  const bool blocked = session.backlog > config_.max_outbound_bytes;
  if (!blocked) {
    stats_.counters.rekey_bytes_sent += frame->size();
    enqueue(session, frame);
    session.gate.reset();
    session.first_blocked_epoch = 0;
    return true;
  }
  if (session.first_blocked_epoch == 0) session.first_blocked_epoch = epoch;
  if (session.gate.note_failure()) {
    evict(session, epoch);
    return false;
  }
  return true;
}

void Server::evict(Session& session, std::uint64_t epoch) {
  EvictionRecord record;
  record.member = session.member;
  record.first_blocked_epoch = session.first_blocked_epoch;
  record.evicted_epoch = epoch;
  record.attempts = session.gate.attempts();
  record.rounds_waited = session.gate.rounds_waited();
  stats_.eviction_log.push_back(record);
  ++stats_.counters.evictions;
  close_session(session, true);
}

void Server::enqueue(Session& session,
                     std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  session.backlog += bytes->size();
  session.outbox.push_back({std::move(bytes), 0});
  flush(session);
}

void Server::send(Session& session, const Frame& frame) {
  enqueue(session, std::make_shared<const std::vector<std::uint8_t>>(
                       encode_frame(frame.type, frame.payload)));
}

void Server::send_error(Session& session, FrameErrorCode code, const std::string& text) {
  send(session, make_error(code, text));
}

void Server::flush(Session& session) {
  while (!session.outbox.empty()) {
    auto& chunk = session.outbox.front();
    const auto* data = chunk.bytes->data() + chunk.offset;
    const auto left = chunk.bytes->size() - chunk.offset;
    const auto n = ::send(session.fd, data, left, MSG_NOSIGNAL);
    if (n > 0) {
      chunk.offset += static_cast<std::size_t>(n);
      session.backlog -= static_cast<std::size_t>(n);
      if (chunk.offset == chunk.bytes->size()) session.outbox.pop_front();
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      arm_epollout(session, true);
      return;
    }
    close_session(session, session.joined);
    return;
  }
  arm_epollout(session, false);
}

void Server::handle_writable(Session& session) { flush(session); }

void Server::arm_epollout(Session& session, bool want) {
  if (session.epollout_armed == want) return;
  session.epollout_armed = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = session.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session.fd, &ev);
}

void Server::close_session(Session& session, bool stage_leave) {
  if (session.doomed) return;
  session.doomed = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, session.fd, nullptr);
  if (session.state != Session::State::kHandshake)
    registry_.erase(workload::raw(session.member));
  if (stage_leave && session.joined) {
    engine_->leave(session.member);
    session.joined = false;
    ++stats_.counters.leaves;
  }
  ++stats_.disconnects;
  doomed_fds_.push_back(session.fd);
}

void Server::reap_doomed() {
  for (const int fd : doomed_fds_) {
    ::close(fd);
    sessions_.erase(fd);
  }
  doomed_fds_.clear();
}

ServerCounters Server::counters_snapshot() const {
  ServerCounters counters = stats_.counters;
  std::uint64_t active = 0;
  std::uint64_t joined = 0;
  for (const auto& [fd, session] : sessions_) {
    if (session->doomed) continue;
    ++active;
    if (session->joined) ++joined;
  }
  counters.active_sessions = active;
  counters.subscribers = joined;
  return counters;
}

}  // namespace gk::net
