#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gk::net {

/// Slow-consumer policy shared by the netsim resync protocol and the socket
/// daemon: how many delivery attempts a member gets, and how long the sender
/// backs off between failed attempts.
///
/// This is the straggler logic that used to live inline in
/// transport::run_resync, lifted out so the in-sim path and the on-socket
/// path (net::Server's rekey fan-out) evict on *exactly* the same schedule:
/// both drive an OutboundGate built from the same policy object, and the
/// shared property test in tests/net_outbound_test.cpp pins the equality.
struct StragglerPolicy {
  /// Delivery attempts before the member is declared unreachable.
  std::size_t retry_budget = 6;
  /// Backoff before retry k (1-based) is
  /// min(base_backoff_rounds << (k - 1), max_backoff_rounds) rounds.
  std::size_t base_backoff_rounds = 1;
  std::size_t max_backoff_rounds = 8;

  /// Rounds to wait after the `failed_attempts`-th failed attempt
  /// (1-based). Saturates at max_backoff_rounds, shift-overflow included.
  [[nodiscard]] std::size_t backoff_after(std::size_t failed_attempts) const noexcept;
};

/// Per-consumer delivery gate: capped-exponential backoff and a retry
/// budget over a sequence of *rounds* (protocol rounds in the sim, rekey
/// epochs on a socket). Drive it as
///
///   for each round:
///     if (gate.begin_round() == Round::kBackoff) continue;   // waiting
///     attempt delivery;
///     if (delivered) { gate.reset(); continue; }             // caught up
///     if (gate.note_failure()) evict the consumer;           // budget gone
///
/// attempts()/rounds_waited() expose the same accounting ResyncReport
/// carries, so a socket eviction can be checked against the sim's numbers.
class OutboundGate {
 public:
  OutboundGate() = default;
  explicit OutboundGate(const StragglerPolicy& policy) : policy_(policy) {}

  enum class Round : std::uint8_t {
    kDeliver,  ///< eligible: attempt delivery this round
    kBackoff   ///< waiting out a backoff window; skip this round
  };

  /// Start one round; consumes one backoff round when waiting.
  Round begin_round() noexcept;

  /// Record a failed delivery attempt. Returns true when the retry budget
  /// is exhausted and the consumer must be evicted *now*; otherwise arms
  /// the next backoff window.
  [[nodiscard]] bool note_failure() noexcept;

  /// Consumer caught up: restore the full retry budget.
  void reset() noexcept;

  [[nodiscard]] std::size_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::size_t rounds_waited() const noexcept { return waited_; }
  [[nodiscard]] const StragglerPolicy& policy() const noexcept { return policy_; }

 private:
  StragglerPolicy policy_{};
  std::size_t attempts_ = 0;
  std::size_t waited_ = 0;
  std::size_t backoff_left_ = 0;
};

/// One consumer's delivery endpoint, as the fan-out side sees it: bytes go
/// in, and the implementation reports whether the consumer is keeping up.
/// net::Server adapts a nonblocking socket (send queue depth vs high-water
/// mark); tests drive mocks so backpressure decisions are schedulable.
class Outbound {
 public:
  virtual ~Outbound() = default;

  /// Hand one frame to the consumer. Returns false when the consumer could
  /// not take it this round (the caller consults its OutboundGate).
  virtual bool offer(std::span<const std::uint8_t> frame) = 0;

  /// Bytes accepted but not yet drained by the consumer.
  [[nodiscard]] virtual std::size_t backlog_bytes() const = 0;
};

}  // namespace gk::net
