#include "net/frame.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"
#include "crypto/secure.h"
#include "wire/codec.h"
#include "wire/error.h"
#include "wire/wrap_codec.h"

namespace gk::net {
namespace {

/// Validate one length prefix. `have` is how many payload bytes follow in
/// the buffer so far (streaming callers pass what they have; one-shot
/// callers pass the true remainder).
void check_prefix(std::uint32_t length) {
  if (length == 0)
    throw wire::WireError(wire::WireFault::kMalformed,
                          "net frame length prefix is zero (no type byte)");
  if (length - 1 > kMaxFramePayload) {
    std::ostringstream os;
    os << "net frame payload of " << (length - 1) << " bytes exceeds the "
       << kMaxFramePayload << "-byte ceiling";
    throw wire::WireError(wire::WireFault::kMalformed, os.str());
  }
}

Frame frame_of(FrameType type, common::ByteWriter&& body) {
  return {type, std::move(body).take()};
}

wire::Reader reader_for(const Frame& frame, FrameType expected, const char* what) {
  if (frame.type != expected) {
    std::ostringstream os;
    os << what << ": unexpected frame type " << static_cast<unsigned>(frame.type);
    throw wire::WireError(wire::WireFault::kMalformed, os.str());
  }
  return wire::Reader(frame.payload);
}

}  // namespace

Frame::~Frame() { crypto::secure_wipe(payload.data(), payload.size()); }

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload)
    throw wire::WireError(wire::WireFault::kMalformed,
                          "net frame payload exceeds the encode ceiling");
  common::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(payload.size() + 1));
  out.u8(static_cast<std::uint8_t>(type));
  out.bytes(payload);
  return std::move(out).take();
}

void FrameCursor::feed(std::span<const std::uint8_t> bytes) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameCursor::next() {
  if (poisoned_)
    throw wire::WireError(wire::WireFault::kMalformed,
                          "net frame stream already rejected; drop the connection");
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= std::uint32_t{buffer_[consumed_ + static_cast<std::size_t>(i)]} << (8 * i);
  try {
    check_prefix(length);
  } catch (const wire::WireError&) {
    poisoned_ = true;
    throw;
  }
  if (available < 4 + std::size_t{length}) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(buffer_[consumed_ + 4]);
  frame.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 5),
                       buffer_.begin() +
                           static_cast<std::ptrdiff_t>(consumed_ + 4 + length));
  consumed_ += 4 + std::size_t{length};
  return frame;
}

std::vector<Frame> decode_frames(std::span<const std::uint8_t> bytes) {
  FrameCursor cursor;
  cursor.feed(bytes);
  std::vector<Frame> frames;
  while (auto frame = cursor.next()) frames.push_back(std::move(*frame));
  if (!cursor.at_boundary())
    throw wire::WireError(wire::WireFault::kTruncated,
                          "net frame stream ends mid-frame");
  return frames;
}

Frame make_hello(const HelloBody& body) {
  common::ByteWriter out;
  out.u64(body.member);
  out.u32(body.protocol);
  return frame_of(FrameType::kHello, std::move(out));
}

Frame make_hello_ack(const HelloAckBody& body) {
  common::ByteWriter out;
  out.u64(body.epoch);
  out.u64(body.members);
  return frame_of(FrameType::kHelloAck, std::move(out));
}

Frame make_join(const JoinBody& body) {
  common::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(body.member_class));
  return frame_of(FrameType::kJoin, std::move(out));
}

Frame make_join_ack(const JoinAckBody& body) {
  common::ByteWriter out;
  out.u64(body.leaf_id);
  out.bytes(body.individual_key.bytes());
  return frame_of(FrameType::kJoinAck, std::move(out));
}

Frame make_commit_ack(const CommitAckBody& body) {
  common::ByteWriter out;
  out.u64(body.epoch);
  out.u32(body.wraps);
  out.u32(body.subscribers);
  return frame_of(FrameType::kCommitAck, std::move(out));
}

Frame make_resync_bundle(std::span<const crypto::WrappedKey> wraps) {
  common::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(wraps.size()));
  for (const auto& wrap : wraps) wire::encode_wrap(out, wrap);
  return frame_of(FrameType::kResyncBundle, std::move(out));
}

Frame make_stats_ack(const ServerCounters& counters) {
  common::ByteWriter out;
  out.u64(counters.active_sessions);
  out.u64(counters.subscribers);
  out.u64(counters.epochs_committed);
  out.u64(counters.joins);
  out.u64(counters.leaves);
  out.u64(counters.resyncs);
  out.u64(counters.evictions);
  out.u64(counters.rekey_bytes_sent);
  return frame_of(FrameType::kStatsAck, std::move(out));
}

Frame make_error(FrameErrorCode code, const std::string& text) {
  common::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(code));
  out.blob({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  return frame_of(FrameType::kError, std::move(out));
}

Frame make_empty(FrameType type) { return {type, {}}; }

HelloBody parse_hello(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kHello, "hello");
  HelloBody body;
  body.member = in.u64();
  body.protocol = in.u32();
  in.expect_exhausted("hello");
  return body;
}

HelloAckBody parse_hello_ack(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kHelloAck, "hello-ack");
  HelloAckBody body;
  body.epoch = in.u64();
  body.members = in.u64();
  in.expect_exhausted("hello-ack");
  return body;
}

JoinBody parse_join(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kJoin, "join");
  const auto raw_class = in.u8();
  if (raw_class > static_cast<std::uint8_t>(workload::MemberClass::kLong))
    throw wire::WireError(wire::WireFault::kMalformed, "join: unknown member class");
  in.expect_exhausted("join");
  return {static_cast<workload::MemberClass>(raw_class)};
}

JoinAckBody parse_join_ack(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kJoinAck, "join-ack");
  JoinAckBody body;
  body.leaf_id = in.u64();
  crypto::WipedBytes<crypto::Key128::kSize> raw;
  const auto view = in.bytes(crypto::Key128::kSize);
  std::copy(view.begin(), view.end(), raw.data());
  body.individual_key = crypto::Key128(raw.array());
  in.expect_exhausted("join-ack");
  return body;
}

CommitAckBody parse_commit_ack(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kCommitAck, "commit-ack");
  CommitAckBody body;
  body.epoch = in.u64();
  body.wraps = in.u32();
  body.subscribers = in.u32();
  in.expect_exhausted("commit-ack");
  return body;
}

std::vector<crypto::WrappedKey> parse_resync_bundle(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kResyncBundle, "resync-bundle");
  const auto count = in.u32();
  if (std::size_t{count} * crypto::WrappedKey::kWireSize != in.remaining())
    throw wire::WireError(wire::WireFault::kMalformed,
                          "resync-bundle: count disagrees with payload size");
  std::vector<crypto::WrappedKey> wraps;
  wraps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) wraps.push_back(wire::decode_wrap(in));
  in.expect_exhausted("resync-bundle");
  return wraps;
}

ServerCounters parse_stats_ack(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kStatsAck, "stats-ack");
  ServerCounters counters;
  counters.active_sessions = in.u64();
  counters.subscribers = in.u64();
  counters.epochs_committed = in.u64();
  counters.joins = in.u64();
  counters.leaves = in.u64();
  counters.resyncs = in.u64();
  counters.evictions = in.u64();
  counters.rekey_bytes_sent = in.u64();
  in.expect_exhausted("stats-ack");
  return counters;
}

ErrorBody parse_error(const Frame& frame) {
  auto in = reader_for(frame, FrameType::kError, "error");
  ErrorBody body;
  body.code = static_cast<FrameErrorCode>(in.u8());
  const auto text = in.blob();
  body.text.assign(reinterpret_cast<const char*>(text.data()), text.size());
  in.expect_exhausted("error");
  return body;
}

}  // namespace gk::net
