#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "engine/server.h"
#include "net/frame.h"
#include "net/outbound.h"
#include "net/server_config.h"

namespace gk::net {

/// One connected member endpoint inside the daemon: handshake state, the
/// inbound frame cursor, the outbound queue (which holds wrapped-key frames
/// in flight), and the straggler gate. Registered as a gklint secret type:
/// sessions are never logged, and their queued frames wipe on destruction.
struct Session {  // gklint: secret-type(Session)
  enum class State : std::uint8_t {
    kHandshake,  ///< connected, no Hello yet
    kActive,     ///< identified; may join/leave/resync
    kDeparting   ///< leave staged; closes at the next commit
  };

  /// One queued write: a frame buffer shared across the fan-out (the rekey
  /// record is encoded once per epoch, not once per subscriber) plus this
  /// session's progress through it.
  struct OutChunk {
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
    std::size_t offset = 0;
  };

  int fd = -1;
  State state = State::kHandshake;
  workload::MemberId member{};
  /// Joined the group and not yet departed: receives the rekey fan-out.
  bool joined = false;
  /// Engine epoch at which the join was staged; resync is meaningful only
  /// after the admitting commit.
  std::uint64_t joined_epoch = 0;
  FrameCursor cursor;
  std::deque<OutChunk> outbox;
  std::size_t backlog = 0;  ///< bytes queued in outbox
  bool epollout_armed = false;
  OutboundGate gate;
  /// Epoch of the first blocked delivery of the current straggle streak
  /// (0 = none); eviction records report it.
  std::uint64_t first_blocked_epoch = 0;
  /// Closed and unregistered; the fd is reaped at the end of the current
  /// dispatch batch (events already collected may still reference it).
  bool doomed = false;
};

/// Why and when the daemon gave up on a subscriber. attempts/rounds_waited
/// mirror transport::ResyncReport so tests can equate the socket schedule
/// with the sim schedule.
struct EvictionRecord {
  workload::MemberId member{};
  std::uint64_t first_blocked_epoch = 0;
  std::uint64_t evicted_epoch = 0;
  std::size_t attempts = 0;
  std::size_t rounds_waited = 0;
};

/// Daemon-side accounting. `counters` is what kStatsAck ships over the
/// wire; the eviction log is richer and only reachable in-process.
struct ServerStats {
  ServerCounters counters;
  std::uint64_t accepted_connections = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t commits_requested = 0;
  std::vector<EvictionRecord> eviction_log;
};

/// Single-threaded nonblocking TCP key-server daemon: an epoll event loop
/// over accept/read/write state machines, a session registry keyed by
/// member id, and length-prefixed net::Frame framing of the wire:: codecs.
/// Serves join/leave/resync, and fans each committed rekey epoch out to
/// every subscribed connection under the straggler policy.
///
/// Threading contract: everything runs on the loop thread (the thread
/// inside run() / poll_once()). The only cross-thread entry points are
/// stop() — async-signal-safe — and post(), which marshals a closure onto
/// the loop thread; engine(), stats(), and commit_epoch() must only be
/// touched from the loop thread (or from inside a posted closure).
class Server {
 public:
  /// Own an engine built elsewhere (the REPL's group, a pre-warmed tree).
  Server(std::unique_ptr<engine::DurableRekeyServer> engine, ServerConfig config);

  /// Build the engine from the config's scheme/shards/seed via
  /// partition::make_sharded_server.
  explicit Server(const ServerConfig& config);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and start listening; returns the actual port (useful with
  /// port 0). Must be called once, before run()/poll_once().
  std::uint16_t listen();

  /// Event loop until stop(). Runs the epoch timer when
  /// epoch_interval_ms > 0.
  void run();

  /// One epoll dispatch with the given timeout; returns false once the
  /// server has been stopped. For callers embedding the loop.
  bool poll_once(int timeout_ms);

  /// Request shutdown from any thread or a signal handler (atomic store +
  /// eventfd write; no locks, no allocation).
  void stop() noexcept;

  /// Run `task` on the loop thread before its next epoll wait.
  void post(std::function<void()> task);

  /// Commit the staged epoch and fan the rekey record out to every
  /// subscriber. Loop thread only. Returns the committed epoch.
  std::uint64_t commit_epoch();

  [[nodiscard]] engine::DurableRekeyServer& engine() noexcept { return *engine_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  void handle_accept();
  void handle_readable(Session& session);
  void handle_writable(Session& session);
  void dispatch(Session& session, const Frame& frame);
  void on_hello(Session& session, const Frame& frame);
  void on_join(Session& session, const Frame& frame);
  void on_leave(Session& session);
  void on_resync(Session& session);
  void on_commit(Session& session);
  void enqueue(Session& session, std::shared_ptr<const std::vector<std::uint8_t>> bytes);
  void send(Session& session, const Frame& frame);
  void send_error(Session& session, FrameErrorCode code, const std::string& text);
  void flush(Session& session);
  void arm_epollout(Session& session, bool want);
  /// Deliver one epoch's rekey frame through the session's straggler gate;
  /// returns false when the session was evicted.
  bool deliver_epoch(Session& session,
                     const std::shared_ptr<const std::vector<std::uint8_t>>& frame,
                     std::uint64_t epoch);
  void evict(Session& session, std::uint64_t epoch);
  /// Close and unregister. `stage_leave` stages a departure for a session
  /// that joined but vanished without a kLeave.
  void close_session(Session& session, bool stage_leave);
  /// Close and erase sessions doomed during the current batch.
  void reap_doomed();
  void drain_wakeups();
  void run_posted();
  [[nodiscard]] ServerCounters counters_snapshot() const;

  // Loop-thread state. The daemon is single-threaded by design; the mutex
  // below exists only for the post() mailbox, hence GK_CONSUMER_ONLY on
  // everything the loop thread owns.
  ServerConfig config_ GK_CONST_AFTER_INIT;
  std::unique_ptr<engine::DurableRekeyServer> engine_ GK_CONSUMER_ONLY;
  Rng resync_rng_ GK_CONSUMER_ONLY;  ///< nonce stream for catch-up bundles
  int epoll_fd_ GK_CONST_AFTER_INIT = -1;
  int listen_fd_ GK_CONST_AFTER_INIT = -1;
  int wake_fd_ GK_CONST_AFTER_INIT = -1;
  std::unordered_map<int, std::unique_ptr<Session>> sessions_ GK_CONSUMER_ONLY;
  /// Member id -> session, the registry the protocol handlers consult.
  std::unordered_map<std::uint64_t, Session*> registry_ GK_CONSUMER_ONLY;
  ServerStats stats_ GK_CONSUMER_ONLY;
  std::vector<int> doomed_fds_ GK_CONSUMER_ONLY;  ///< closed during commit sweep
  std::uint32_t last_commit_wraps_ GK_CONSUMER_ONLY = 0;
  std::uint32_t last_commit_subscribers_ GK_CONSUMER_ONLY = 0;

  std::atomic<bool> stopped_{false};
  common::Mutex post_mutex_;
  std::vector<std::function<void()>> posted_ GK_GUARDED_BY(post_mutex_);
};

}  // namespace gk::net
