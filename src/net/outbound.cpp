#include "net/outbound.h"

#include <algorithm>

namespace gk::net {

std::size_t StragglerPolicy::backoff_after(std::size_t failed_attempts) const noexcept {
  const std::size_t shift = failed_attempts - 1;
  return shift >= 63 ? max_backoff_rounds
                     : std::min(base_backoff_rounds << shift, max_backoff_rounds);
}

OutboundGate::Round OutboundGate::begin_round() noexcept {
  if (backoff_left_ > 0) {
    --backoff_left_;
    ++waited_;
    return Round::kBackoff;
  }
  return Round::kDeliver;
}

bool OutboundGate::note_failure() noexcept {
  ++attempts_;
  if (attempts_ >= policy_.retry_budget) return true;
  backoff_left_ = policy_.backoff_after(attempts_);
  return false;
}

void OutboundGate::reset() noexcept {
  attempts_ = 0;
  waited_ = 0;
  backoff_left_ = 0;
}

}  // namespace gk::net
