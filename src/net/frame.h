#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "workload/member.h"

namespace gk::net {

/// Protocol version spoken by net::Server, net::Client, and gkd. A Hello
/// carrying a newer version is rejected with FrameErrorCode::kBadVersion.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. A length prefix above this is a
/// hostile or corrupt stream and is rejected with wire::WireError before a
/// single payload byte is buffered — the allocation-bomb guard. 64 MiB
/// covers a flash-crowd rekey record for a ~1M-member group (68 B/wrap)
/// with headroom.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Message kinds carried over a gkd TCP connection. The payload layouts
/// live in the encode_*/parse_* helpers below; kRekey and kResyncBundle
/// payloads reuse the existing wire:: codecs verbatim (a kRekey payload IS
/// a wire::RekeyRecord byte string), so the daemon adds framing, not a
/// second serialization of key material.
enum class FrameType : std::uint8_t {
  kHello = 1,        ///< member id + protocol version
  kHelloAck = 2,     ///< epoch + current group size
  kJoin = 3,         ///< member class
  kJoinAck = 4,      ///< leaf id + individual key (registration unicast)
  kLeave = 5,        ///< stage departure
  kLeaveAck = 6,     ///< departure staged
  kCommit = 7,       ///< end the rekey period now
  kCommitAck = 8,    ///< epoch + wrap count + subscriber count
  kRekey = 9,        ///< fan-out: wire::RekeyRecord bytes
  kResync = 10,      ///< request my catch-up bundle
  kResyncBundle = 11,  ///< u32 count + count * 68 B wire wraps
  kStats = 12,       ///< request server counters
  kStatsAck = 13,    ///< ServerCounters
  kShutdown = 14,    ///< stop the daemon
  kError = 15,       ///< error code + text
};

/// One parsed frame: type byte plus raw payload. Frames carry wrapped and
/// registration key material, so the buffer is treated as secret — never
/// logged, wiped on destruction.
struct Frame {  // gklint: secret-type(Frame)
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;

  Frame() = default;
  Frame(FrameType t, std::vector<std::uint8_t> body)
      : type(t), payload(std::move(body)) {}
  Frame(Frame&&) noexcept = default;
  Frame& operator=(Frame&&) noexcept = default;
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;
  ~Frame();
};

/// Serialize one frame: u32 length (type byte + payload, little-endian)
/// followed by the type byte and the payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload);

/// Incremental decoder for a TCP byte stream: feed() arbitrary chunks,
/// next() yields complete frames in order. A partial frame is simply "not
/// yet" (nullopt); a structurally bad prefix — zero length, or a length
/// beyond kMaxFramePayload — throws wire::WireError(kMalformed), after
/// which the stream is poisoned (the connection must be dropped; framing
/// cannot resynchronize). Shared by the daemon, the client, the load
/// generator, and the damage-sweep fuzz test, so all four agree on what a
/// well-formed stream is.
class FrameCursor {
 public:
  /// Append received bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();

  /// True when no partially received frame is buffered — the stream ended
  /// on a frame boundary.
  [[nodiscard]] bool at_boundary() const noexcept { return buffer_.size() == consumed_; }

  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// One-shot decode of a complete byte string into frames. Throws
/// wire::WireError kMalformed on a bad prefix and kTruncated when the
/// bytes end mid-frame.
[[nodiscard]] std::vector<Frame> decode_frames(std::span<const std::uint8_t> bytes);

// ---- Typed payloads ---------------------------------------------------------

struct HelloBody {
  std::uint64_t member = 0;
  std::uint32_t protocol = kProtocolVersion;
};

struct HelloAckBody {
  std::uint64_t epoch = 0;
  std::uint64_t members = 0;
};

struct JoinBody {
  workload::MemberClass member_class = workload::MemberClass::kShort;
};

/// The registration unicast: what engine::RekeyServer::join returns. In a
/// production deployment this frame rides the member's authenticated TLS
/// channel; the daemon models that channel as the TCP connection itself.
struct JoinAckBody {
  std::uint64_t leaf_id = 0;
  crypto::Key128 individual_key;
};

struct CommitAckBody {
  std::uint64_t epoch = 0;
  std::uint32_t wraps = 0;
  std::uint32_t subscribers = 0;
};

/// Daemon counters exposed over the wire (kStatsAck) so load generators
/// and CI gates can assert on evictions without sharing an address space.
struct ServerCounters {
  std::uint64_t active_sessions = 0;
  std::uint64_t subscribers = 0;
  std::uint64_t epochs_committed = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rekey_bytes_sent = 0;
};

enum class FrameErrorCode : std::uint8_t {
  kBadVersion = 1,
  kDuplicateMember = 2,
  kNotAdmitted = 3,
  kBadState = 4,
  kRefused = 5,
};

struct ErrorBody {
  FrameErrorCode code = FrameErrorCode::kRefused;
  std::string text;
};

[[nodiscard]] Frame make_hello(const HelloBody& body);
[[nodiscard]] Frame make_hello_ack(const HelloAckBody& body);
[[nodiscard]] Frame make_join(const JoinBody& body);
[[nodiscard]] Frame make_join_ack(const JoinAckBody& body);
[[nodiscard]] Frame make_commit_ack(const CommitAckBody& body);
[[nodiscard]] Frame make_resync_bundle(std::span<const crypto::WrappedKey> wraps);
[[nodiscard]] Frame make_stats_ack(const ServerCounters& counters);
[[nodiscard]] Frame make_error(FrameErrorCode code, const std::string& text);
[[nodiscard]] Frame make_empty(FrameType type);

/// Payload parsers: each validates the frame type and the exact payload
/// length, throwing wire::WireError (kMalformed / kTruncated) on anything
/// else — hostile payload bytes never reach an ENSURE abort.
[[nodiscard]] HelloBody parse_hello(const Frame& frame);
[[nodiscard]] HelloAckBody parse_hello_ack(const Frame& frame);
[[nodiscard]] JoinBody parse_join(const Frame& frame);
[[nodiscard]] JoinAckBody parse_join_ack(const Frame& frame);
[[nodiscard]] CommitAckBody parse_commit_ack(const Frame& frame);
[[nodiscard]] std::vector<crypto::WrappedKey> parse_resync_bundle(const Frame& frame);
[[nodiscard]] ServerCounters parse_stats_ack(const Frame& frame);
[[nodiscard]] ErrorBody parse_error(const Frame& frame);

}  // namespace gk::net
