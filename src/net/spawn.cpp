#include "net/spawn.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/ensure.h"
#include "net/server.h"

namespace gk::net {

std::size_t raise_fd_limit() noexcept {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
    ::getrlimit(RLIMIT_NOFILE, &limit);
  }
  if (limit.rlim_cur == RLIM_INFINITY) return std::size_t{1} << 20;
  return static_cast<std::size_t>(limit.rlim_cur);
}

namespace {

Server* g_spawned_server = nullptr;

void handle_term(int /*signum*/) {
  if (g_spawned_server != nullptr) g_spawned_server->stop();
}

[[noreturn]] void child_main(const ServerConfig& config, int port_pipe) {
  Server server(config);
  g_spawned_server = &server;
  struct sigaction action {};
  action.sa_handler = handle_term;
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
  const std::uint16_t port = server.listen();
  ssize_t n;
  do {
    n = ::write(port_pipe, &port, sizeof(port));
  } while (n < 0 && errno == EINTR);
  ::close(port_pipe);
  if (n != sizeof(port)) std::_Exit(3);
  server.run();
  std::_Exit(0);
}

}  // namespace

SpawnedServer::SpawnedServer(const ServerConfig& config) {
  int pipe_fds[2];
  GK_ENSURE_MSG(::pipe(pipe_fds) == 0, "pipe() failed");
  pid_ = ::fork();
  GK_ENSURE_MSG(pid_ >= 0, "fork() failed");
  if (pid_ == 0) {
    ::close(pipe_fds[0]);
    child_main(config, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);
  std::uint16_t port = 0;
  ssize_t n;
  do {
    n = ::read(pipe_fds[0], &port, sizeof(port));
  } while (n < 0 && errno == EINTR);
  ::close(pipe_fds[0]);
  if (n != sizeof(port)) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    reaped_ = true;
    GK_ENSURE_MSG(false, "spawned key server died before reporting its port");
  }
  port_ = port;
}

SpawnedServer::~SpawnedServer() {
  if (!reaped_) (void)terminate();
}

int SpawnedServer::terminate() {
  if (reaped_) return 0;
  ::kill(pid_, SIGTERM);
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  return status;
}

}  // namespace gk::net
