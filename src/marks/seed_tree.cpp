#include "marks/seed_tree.h"

#include "common/ensure.h"
#include "crypto/kdf.h"

namespace gk::marks {

MarksServer::MarksServer(unsigned levels, Rng rng) : levels_(levels) {
  GK_ENSURE(levels >= 1 && levels <= 32);
  root_ = crypto::Key128::random(rng);
}

crypto::Key128 MarksServer::child(const crypto::Key128& seed, bool right) {
  return crypto::derive_key(seed, right ? "marks-R" : "marks-L");
}

crypto::Key128 MarksServer::seed_at(unsigned level, std::uint64_t index) const {
  GK_ENSURE(level <= levels_);
  GK_ENSURE(index < (std::uint64_t{1} << level));
  crypto::Key128 seed = root_;
  for (unsigned bit = level; bit-- > 0;)
    seed = child(seed, ((index >> bit) & 1) != 0);
  return seed;
}

crypto::Key128 MarksServer::slot_key(std::uint64_t slot) const {
  GK_ENSURE(slot < slot_count());
  return seed_at(levels_, slot);
}

std::vector<MarksServer::SeedGrant> MarksServer::subscribe(
    std::uint64_t first_slot, std::uint64_t last_slot) const {
  GK_ENSURE(first_slot <= last_slot);
  GK_ENSURE(last_slot < slot_count());

  // Canonical minimal segment cover on a complete binary tree: repeatedly
  // take the largest aligned block starting at `cursor` that fits in the
  // remaining interval.
  std::vector<SeedGrant> grants;
  std::uint64_t cursor = first_slot;
  while (cursor <= last_slot) {
    // Largest power-of-two block size that is aligned at cursor and fits.
    unsigned block_levels = 0;  // block covers 2^block_levels slots
    while (block_levels < levels_) {
      const std::uint64_t next_size = std::uint64_t{1} << (block_levels + 1);
      if (cursor % next_size != 0) break;
      if (cursor + next_size - 1 > last_slot) break;
      ++block_levels;
    }
    const unsigned level = levels_ - block_levels;
    const std::uint64_t index = cursor >> block_levels;
    grants.push_back({level, index, seed_at(level, index)});
    cursor += std::uint64_t{1} << block_levels;
  }
  return grants;
}

MarksSubscriber::MarksSubscriber(std::vector<MarksServer::SeedGrant> grants,
                                 unsigned levels)
    : grants_(std::move(grants)), levels_(levels) {
  GK_ENSURE(levels >= 1 && levels <= 32);
}

std::optional<crypto::Key128> MarksSubscriber::key_for(std::uint64_t slot) const {
  if (slot >= (std::uint64_t{1} << levels_)) return std::nullopt;
  for (const auto& grant : grants_) {
    const unsigned depth = levels_ - grant.level;  // levels below the seed
    if ((slot >> depth) != grant.index) continue;
    crypto::Key128 seed = grant.seed;
    for (unsigned bit = depth; bit-- > 0;)
      seed = MarksServer::child(seed, ((slot >> bit) & 1) != 0);
    return seed;
  }
  return std::nullopt;
}

}  // namespace gk::marks
