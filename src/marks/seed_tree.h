#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "crypto/key.h"

namespace gk::marks {

/// MARKS [Briscoe99]: zero-side-effect key management for members whose
/// membership interval is known at subscription time — one of the schemes
/// the paper's related-work section positions itself against, and the
/// natural comparison point for the PT oracle partition.
///
/// The session is divided into 2^levels time slots. Slot keys are the
/// leaves of a binary hash tree grown from a root seed with two one-way
/// functions (left/right). A subscriber to [first, last] receives the
/// minimal set of subtree seeds covering the interval — at most
/// 2 * levels seeds — and derives each slot key itself. Joins and
/// departures at interval edges cost the key server *nothing* on the
/// multicast channel; the trade-off is that early revocation is
/// impossible (hence the paper's interest in LKH-style trees).
class MarksServer {
 public:
  /// 2^levels slots; levels <= 32.
  MarksServer(unsigned levels, Rng rng);

  /// One seed handed to a subscriber: the subtree root at `level`
  /// (0 == tree root) and position `index`, covering slots
  /// [index << (levels-level), (index+1) << (levels-level)).
  struct SeedGrant {
    unsigned level = 0;
    std::uint64_t index = 0;
    crypto::Key128 seed;
  };

  /// Minimal cover of [first_slot, last_slot] (inclusive).
  [[nodiscard]] std::vector<SeedGrant> subscribe(std::uint64_t first_slot,
                                                 std::uint64_t last_slot) const;

  /// The data key for one slot (server side).
  [[nodiscard]] crypto::Key128 slot_key(std::uint64_t slot) const;

  [[nodiscard]] unsigned levels() const noexcept { return levels_; }
  [[nodiscard]] std::uint64_t slot_count() const noexcept {
    return std::uint64_t{1} << levels_;
  }

 private:
  friend class MarksSubscriber;
  /// Derive the seed at (level, index) from the root.
  [[nodiscard]] crypto::Key128 seed_at(unsigned level, std::uint64_t index) const;
  static crypto::Key128 child(const crypto::Key128& seed, bool right);

  unsigned levels_;
  crypto::Key128 root_;
};

/// Member side: holds the granted seeds and derives slot keys. Slots
/// outside every granted subtree are cryptographically out of reach.
class MarksSubscriber {
 public:
  MarksSubscriber(std::vector<MarksServer::SeedGrant> grants, unsigned levels);

  /// The slot's key, or nullopt if no granted seed covers it.
  [[nodiscard]] std::optional<crypto::Key128> key_for(std::uint64_t slot) const;

  [[nodiscard]] std::size_t seed_count() const noexcept { return grants_.size(); }

 private:
  std::vector<MarksServer::SeedGrant> grants_;
  unsigned levels_;
};

}  // namespace gk::marks
