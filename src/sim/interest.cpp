#include "sim/interest.h"

#include <algorithm>

namespace gk::sim {

InterestIndex::InterestIndex(std::span<const crypto::WrappedKey> payload) {
  by_wrapping_.reserve(payload.size());
  for (std::uint32_t i = 0; i < payload.size(); ++i)
    by_wrapping_.push_back({crypto::raw(payload[i].wrapping_id), i});
  std::sort(by_wrapping_.begin(), by_wrapping_.end(),
            [](const Entry& a, const Entry& b) { return a.wrapping_id < b.wrapping_id; });
}

std::vector<std::uint32_t> InterestIndex::interest_of(
    std::span<const crypto::KeyId> held_ids) const {
  std::vector<std::uint32_t> interest;
  for (const auto id : held_ids) {
    const auto raw_id = crypto::raw(id);
    auto it = std::lower_bound(by_wrapping_.begin(), by_wrapping_.end(), raw_id,
                               [](const Entry& e, std::uint64_t v) {
                                 return e.wrapping_id < v;
                               });
    for (; it != by_wrapping_.end() && it->wrapping_id == raw_id; ++it)
      interest.push_back(it->index);
  }
  std::sort(interest.begin(), interest.end());
  interest.erase(std::unique(interest.begin(), interest.end()), interest.end());
  return interest;
}

}  // namespace gk::sim
