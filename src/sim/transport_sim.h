#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace gk::sim {

/// End-to-end simulation of Section 4's scenario: a group with two-point
/// loss heterogeneity is rekeyed in batches; the resulting payload is
/// delivered by a real transport protocol over a simulated lossy multicast
/// channel, and the measured bandwidth is compared across key-tree
/// organizations.
struct TransportSimConfig {
  enum class Organization : std::uint8_t {
    kOneTree,          ///< baseline: a single key tree
    kRandomSplit,      ///< Fig. 6 control: two trees, random placement
    kLossHomogenized,  ///< Section 4.2: trees binned by reported loss
  };
  enum class Protocol : std::uint8_t { kWkaBkr, kProactiveFec, kMultiSend };

  Organization organization = Organization::kOneTree;
  Protocol protocol = Protocol::kWkaBkr;
  unsigned degree = 4;
  std::uint64_t group_size = 4096;
  /// Batched departures per epoch (joins match to hold the size steady).
  std::size_t departures_per_epoch = 16;
  double low_loss = 0.02;
  double high_loss = 0.20;
  double high_fraction = 0.3;  ///< alpha of Section 4.3
  /// Fig. 7's beta: this fraction of each class reports the other class's
  /// loss rate at join time (misplacement). Only affects loss-homogenized
  /// placement.
  double misreport_fraction = 0.0;
  /// Optional richer loss population: (rate, weight) points replacing the
  /// two-point low/high model when non-empty. Misreporting is not applied
  /// to custom populations.
  std::vector<std::pair<double, double>> loss_points;
  /// Optional explicit tree bins (ascending upper bounds) overriding the
  /// organization's default of one or two trees. Lets experiments study
  /// three-or-more loss-homogenized trees, beyond the paper's pair.
  std::vector<double> custom_bins;
  std::uint64_t epochs = 10;
  std::uint64_t warmup_epochs = 2;
  std::uint64_t seed = 1;
  std::size_t keys_per_packet = 16;
  /// 0 = independent Bernoulli loss (the paper's model). > 1 = bursty
  /// Gilbert-Elliott channels matched to each member's mean loss rate,
  /// with this mean burst length in packets.
  double mean_burst_packets = 0.0;
};

struct TransportSimResult {
  /// Encrypted-key transmissions per epoch (proactive + retransmissions),
  /// the metric of Fig. 6/7.
  RunningStats keys_per_epoch;
  RunningStats packets_per_epoch;
  RunningStats rounds_per_epoch;
  RunningStats payload_keys_per_epoch;  ///< pre-transport rekey message size

  /// Receiver-side load (Section 4.4's discussion of multiple multicast
  /// groups [YSI99]): packets offered to one member per epoch when every
  /// session shares a single multicast group (everyone hears everything)
  /// versus when each key tree uses its own group (members only hear their
  /// tree's sessions plus the group-key session).
  RunningStats offered_single_group;
  RunningStats offered_own_group;
  /// Per-tree breakdown of the own-group load (index = tree).
  std::vector<RunningStats> offered_by_tree;

  bool all_delivered = true;
  /// Transport sessions that hit their round cap with receivers still
  /// missing keys (gave up; see TransportReport::rounds_capped).
  std::size_t capped_sessions = 0;
};

[[nodiscard]] TransportSimResult run_transport_sim(const TransportSimConfig& config);

}  // namespace gk::sim
