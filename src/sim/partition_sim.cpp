#include "sim/partition_sim.h"

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/ensure.h"
#include "engine/core_server.h"
#include "lkh/key_ring.h"
#include "partition/factory.h"
#include "workload/membership.h"
#include "workload/trace.h"

namespace gk::sim {

namespace {

const std::vector<partition::Relocation>* relocations_of(partition::RekeyServer& server) {
  if (auto* core = dynamic_cast<engine::CoreServer*>(&server))
    return &core->core().last_relocations();
  return nullptr;
}

}  // namespace

PartitionSimResult run_partition_sim(const PartitionSimConfig& config) {
  PartitionSimResult result;

  auto durations = std::make_shared<workload::TwoClassExponential>(
      config.short_mean, config.long_mean, config.short_fraction);
  auto losses = std::make_shared<workload::UniformLoss>(0.0);
  workload::MembershipGenerator generator(durations, losses, config.group_size,
                                          Rng(config.seed));
  const auto trace = workload::MembershipTrace::generate(
      generator, config.rekey_period, config.warmup_epochs + config.epochs);

  auto server = partition::make_server(config.scheme, config.degree,
                                       config.s_period_epochs, Rng(config.seed ^ 0xabcd));

  // Member-side state (verification mode only).
  std::unordered_map<std::uint64_t, lkh::KeyRing> rings;
  std::unordered_map<std::uint64_t, crypto::Key128> individual_keys;
  std::deque<lkh::KeyRing> evicted;  // bounded eavesdropper sample

  auto admit = [&](const workload::MemberProfile& profile) {
    const auto reg = server->join(profile);
    if (config.verify_members) {
      rings.emplace(workload::raw(profile.id),
                    lkh::KeyRing(profile.id, reg.leaf_id, reg.individual_key));
      individual_keys.emplace(workload::raw(profile.id), reg.individual_key);
    }
  };

  // Session start: the bootstrap population joins as one batch. Its cost is
  // session setup, not steady-state rekeying; warmup discards it.
  server->reserve(trace.initial_members().size());
  for (const auto& member : trace.initial_members()) admit(member);

  std::unordered_map<std::uint64_t, bool> present;
  for (const auto& member : trace.initial_members())
    present.emplace(workload::raw(member.id), true);

  auto depart = [&](workload::MemberId id) {
    server->leave(id);
    present.erase(workload::raw(id));
    if (config.verify_members) {
      auto it = rings.find(workload::raw(id));
      evicted.push_back(std::move(it->second));
      if (evicted.size() > 64) evicted.pop_front();
      rings.erase(it);
      individual_keys.erase(workload::raw(id));
    }
  };

  for (const auto& epoch : trace.epochs()) {
    // Departures of incumbents first so this batch's joins can refill the
    // vacated slots; members who both join and leave within the epoch are
    // handled after their join is staged.
    std::vector<workload::MemberId> churn_leaves;
    for (const auto id : epoch.leaves) {
      if (present.count(workload::raw(id)) != 0)
        depart(id);
      else
        churn_leaves.push_back(id);
    }
    for (const auto& profile : epoch.joins) {
      admit(profile);
      present.emplace(workload::raw(profile.id), true);
    }
    for (const auto id : churn_leaves) depart(id);

    const auto out = server->end_epoch();

    if (config.verify_members) {
      if (const auto* relocations = relocations_of(*server)) {
        for (const auto& move : *relocations) {
          const auto it = rings.find(workload::raw(move.member));
          if (it != rings.end())
            it->second.grant(move.new_leaf_id,
                             {individual_keys.at(workload::raw(move.member)), 0});
        }
      }
      for (auto& [id, ring] : rings) ring.process(out.message);
      for (auto& ring : evicted) ring.process(out.message);

      const auto dek_id = server->group_key_id();
      const auto dek_version = server->group_key().version;
      for (const auto& [id, ring] : rings) {
        ++result.members_checked;
        if (!ring.holds(dek_id, dek_version)) result.invariants_ok = false;
      }
      for (const auto& ring : evicted) {
        ++result.members_checked;
        if (ring.holds(dek_id, dek_version)) result.invariants_ok = false;
      }
    }

    if (epoch.index >= config.warmup_epochs) {
      result.cost_per_epoch.add(static_cast<double>(out.multicast_cost()));
      result.joins_per_epoch.add(static_cast<double>(out.joins));
      result.leaves_per_epoch.add(
          static_cast<double>(out.s_departures + out.l_departures));
      result.migrations_per_epoch.add(static_cast<double>(out.migrations));
      result.group_size.add(static_cast<double>(server->size()));
    }
  }
  return result;
}

}  // namespace gk::sim
