#pragma once

#include <cstdint>

#include "common/stats.h"
#include "partition/adaptive.h"

namespace gk::sim {

/// Discrete-event simulation of one rekeying scheme under the paper's
/// two-class workload (Section 3.3's scenario, executed for real instead of
/// analytically): a steady-state group churns for `epochs` rekey periods
/// while the server batches joins, leaves, and migrations.
struct PartitionSimConfig {
  partition::SchemeKind scheme = partition::SchemeKind::kOneKeyTree;
  unsigned degree = 4;
  unsigned s_period_epochs = 10;  ///< K
  std::uint64_t group_size = 4096;
  double rekey_period = 60.0;     ///< Tp seconds
  double short_mean = 180.0;      ///< Ms
  double long_mean = 10800.0;     ///< Ml
  double short_fraction = 0.8;    ///< alpha
  std::uint64_t epochs = 40;      ///< measured epochs (after warmup)
  std::uint64_t warmup_epochs = 15;
  std::uint64_t seed = 1;
  /// Drive member-side key rings and check confidentiality invariants each
  /// epoch (quadratic-ish; use small groups).
  bool verify_members = false;
};

struct PartitionSimResult {
  /// Multicast encrypted keys per epoch, measured epochs only.
  RunningStats cost_per_epoch;
  RunningStats joins_per_epoch;
  RunningStats leaves_per_epoch;
  RunningStats migrations_per_epoch;
  RunningStats group_size;
  /// Only meaningful when verify_members is set.
  bool invariants_ok = true;
  std::uint64_t members_checked = 0;
};

[[nodiscard]] PartitionSimResult run_partition_sim(const PartitionSimConfig& config);

}  // namespace gk::sim
