#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/keywrap.h"

namespace gk::sim {

/// Compute a receiver's keys of interest in a rekey payload: the indices of
/// wraps encrypted under a key the member holds (its leaf key or any node
/// on its path, including the group key for "new under old" wraps).
///
/// This is the sparseness property of Section 2.2 made concrete — in a
/// deployed protocol the member derives the same set from the packet
/// headers (ids are not secret).
class InterestIndex {
 public:
  explicit InterestIndex(std::span<const crypto::WrappedKey> payload);

  /// Indices of wraps whose wrapping key is one of `held_ids`
  /// (sorted, deduplicated).
  [[nodiscard]] std::vector<std::uint32_t> interest_of(
      std::span<const crypto::KeyId> held_ids) const;

 private:
  struct Entry {
    std::uint64_t wrapping_id;
    std::uint32_t index;
  };
  std::vector<Entry> by_wrapping_;  // sorted by wrapping_id
};

}  // namespace gk::sim
