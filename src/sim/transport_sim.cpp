#include "sim/transport_sim.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ensure.h"
#include "losshomo/multi_tree_server.h"
#include "sim/interest.h"
#include "transport/fec.h"
#include "transport/multisend.h"
#include "transport/session.h"
#include "transport/wka_bkr.h"
#include "workload/loss_assignment.h"

namespace gk::sim {

namespace {

struct MemberInfo {
  double true_loss = 0.0;
  crypto::KeyId leaf_id{};
};

std::unique_ptr<transport::RekeyTransport> make_transport(
    const TransportSimConfig& config) {
  switch (config.protocol) {
    case TransportSimConfig::Protocol::kWkaBkr: {
      transport::WkaBkrTransport::Config c;
      c.keys_per_packet = config.keys_per_packet;
      return std::make_unique<transport::WkaBkrTransport>(c);
    }
    case TransportSimConfig::Protocol::kProactiveFec: {
      transport::ProactiveFecTransport::Config c;
      c.keys_per_packet = config.keys_per_packet;
      return std::make_unique<transport::ProactiveFecTransport>(c);
    }
    case TransportSimConfig::Protocol::kMultiSend: {
      transport::MultiSendTransport::Config c;
      c.keys_per_packet = config.keys_per_packet;
      return std::make_unique<transport::MultiSendTransport>(c);
    }
  }
  GK_ENSURE_MSG(false, "unknown protocol");
  return nullptr;
}

}  // namespace

TransportSimResult run_transport_sim(const TransportSimConfig& config) {
  TransportSimResult result;
  Rng rng(config.seed);

  // ---- Server with the requested tree organization. ----
  std::vector<double> bounds;
  auto placement = losshomo::Placement::kLossHomogenized;
  switch (config.organization) {
    case TransportSimConfig::Organization::kOneTree:
      bounds = {1.0};
      break;
    case TransportSimConfig::Organization::kRandomSplit:
      bounds = {0.5, 1.0};
      placement = losshomo::Placement::kRandom;
      break;
    case TransportSimConfig::Organization::kLossHomogenized:
      bounds = config.custom_bins.empty()
                   ? std::vector<double>{(config.low_loss + config.high_loss) / 2.0, 1.0}
                   : config.custom_bins;
      break;
  }
  losshomo::MultiTreeServer server(config.degree, bounds, placement, rng.fork());

  // Loss population: the paper's two-point default or a caller-supplied
  // discrete distribution.
  std::unique_ptr<workload::DiscreteLoss> custom_losses;
  if (!config.loss_points.empty()) {
    std::vector<workload::DiscreteLoss::Point> points;
    for (const auto& [rate, weight] : config.loss_points)
      points.push_back({rate, weight});
    custom_losses = std::make_unique<workload::DiscreteLoss>(std::move(points));
  }

  std::unordered_map<std::uint64_t, MemberInfo> members;
  std::uint64_t next_id = 0;

  // Fig. 7's misplacement: a fraction beta of high-loss members report low
  // loss, and the same *number* of low-loss members report high, keeping
  // the tree sizes invariant (Section 4.3.1(b)).
  const double low_misreport_prob =
      config.high_fraction >= 1.0
          ? 0.0
          : config.misreport_fraction * config.high_fraction /
                (1.0 - config.high_fraction);

  auto admit_one = [&] {
    const auto id = workload::make_member_id(next_id++);
    double true_loss;
    double reported;
    if (custom_losses != nullptr) {
      true_loss = custom_losses->assign(rng);
      reported = true_loss;
    } else {
      const bool is_high = rng.bernoulli(config.high_fraction);
      true_loss = is_high ? config.high_loss : config.low_loss;
      reported = true_loss;
      if (is_high && rng.bernoulli(config.misreport_fraction))
        reported = config.low_loss;
      else if (!is_high && rng.bernoulli(low_misreport_prob))
        reported = config.high_loss;
    }
    const auto reg = server.join(id, reported);
    members.emplace(workload::raw(id), MemberInfo{true_loss, reg.leaf_id});
    return id;
  };

  for (std::uint64_t i = 0; i < config.group_size; ++i) admit_one();
  (void)server.end_epoch();  // session setup, not measured

  auto protocol = make_transport(config);

  for (std::uint64_t epoch = 0; epoch < config.warmup_epochs + config.epochs; ++epoch) {
    // Uniform random departures (per-tree counts proportional to size) and
    // replacement joins.
    std::vector<std::uint64_t> ids;
    ids.reserve(members.size());
    for (const auto& [id, info] : members) ids.push_back(id);
    for (std::size_t d = 0; d < config.departures_per_epoch && !ids.empty(); ++d) {
      const auto pick = rng.uniform_u64(ids.size());
      const auto id = ids[pick];
      ids[pick] = ids.back();
      ids.pop_back();
      server.leave(workload::make_member_id(id));
      members.erase(id);
    }
    for (std::size_t d = 0; d < config.departures_per_epoch; ++d) admit_one();

    const auto out = server.end_epoch();

    // ---- Deliver the payload over the lossy channel, one transport
    // session per tree (a tree's rekey sub-message only concerns its own
    // members; running sessions per tree also keeps FEC blocks from
    // straddling audiences), plus a final session for the DEK wraps that
    // everyone needs. ----
    transport::TransportReport epoch_report;
    epoch_report.all_delivered = true;
    std::vector<std::size_t> packets_by_tree(server.tree_count(), 0);
    std::size_t packets_shared = 0;  // the DEK session, heard by everyone
    auto run_session = [&](std::span<const crypto::WrappedKey> slice, bool tree_scoped,
                           std::size_t tree) {
      if (slice.empty()) return;
      const InterestIndex index(slice);
      std::vector<transport::SessionReceiver> receivers;
      for (const auto& [id, info] : members) {
        const auto member = workload::make_member_id(id);
        if (tree_scoped && server.tree_of(member) != tree) continue;
        auto held = server.member_path(member);
        held.push_back(info.leaf_id);
        auto interest = index.interest_of(held);
        if (interest.empty()) continue;  // nothing to deliver to this member
        auto channel =
            config.mean_burst_packets > 1.0
                ? netsim::Receiver::bursty(member, info.true_loss,
                                           config.mean_burst_packets, rng.fork())
                : netsim::Receiver(member, info.true_loss, rng.fork());
        receivers.emplace_back(std::move(channel), std::move(interest));
      }
      const auto report = protocol->deliver(slice, receivers);
      epoch_report.rounds += report.rounds;
      epoch_report.packets_sent += report.packets_sent;
      epoch_report.key_transmissions += report.key_transmissions;
      epoch_report.nacks += report.nacks;
      if (!report.all_delivered) epoch_report.all_delivered = false;
      if (report.rounds_capped) ++result.capped_sessions;
      if (tree_scoped)
        packets_by_tree[tree] += report.packets_sent;
      else
        packets_shared += report.packets_sent;
    };

    std::size_t offset = 0;
    const std::span<const crypto::WrappedKey> wraps(out.message.wraps);
    for (std::size_t t = 0; t < out.per_tree_cost.size(); ++t) {
      run_session(wraps.subspan(offset, out.per_tree_cost[t]), true, t);
      offset += out.per_tree_cost[t];
    }
    run_session(wraps.subspan(offset), false, 0);  // DEK wraps, whole group

    if (!epoch_report.all_delivered) result.all_delivered = false;

    if (epoch >= config.warmup_epochs) {
      result.keys_per_epoch.add(static_cast<double>(epoch_report.key_transmissions));
      result.packets_per_epoch.add(static_cast<double>(epoch_report.packets_sent));
      result.rounds_per_epoch.add(static_cast<double>(epoch_report.rounds));
      result.payload_keys_per_epoch.add(static_cast<double>(out.multicast_cost()));

      // Receiver-side load: one shared multicast group means every member
      // is offered every packet of every session; per-tree groups confine
      // a member to its own tree's sessions plus the shared DEK session.
      result.offered_single_group.add(
          static_cast<double>(epoch_report.packets_sent));
      if (result.offered_by_tree.size() < packets_by_tree.size())
        result.offered_by_tree.resize(packets_by_tree.size());
      double weighted_own = 0.0;
      for (std::size_t t = 0; t < packets_by_tree.size(); ++t) {
        const double own =
            static_cast<double>(packets_by_tree[t] + packets_shared);
        result.offered_by_tree[t].add(own);
        const double share = server.size() > 0
                                 ? static_cast<double>(server.tree_size(t)) /
                                       static_cast<double>(server.size())
                                 : 0.0;
        weighted_own += share * own;
      }
      result.offered_own_group.add(weighted_own);
    }
  }
  return result;
}

}  // namespace gk::sim
