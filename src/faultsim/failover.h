#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faultsim/fault_schedule.h"
#include "faultsim/harness.h"

namespace gk::faultsim {

/// One failover drill: a replicated cluster (leader + N standbys under
/// journal shipping) driven through churn while the fault schedule kills
/// the leader mid-commit, partitions it away, and damages the ship
/// channels. The drill asserts, every epoch:
///
///  * the three group-key invariants (agreement, forward/backward secrecy)
///    across leader changes,
///  * epoch uniqueness — no epoch is ever delivered twice, even when a
///    promoted standby re-delivers the commit a dead leader never sent,
///  * term fencing — standbys answer a partitioned ex-leader's stream with
///    kRejectedStale and members refuse its rekey record,
///  * convergence — every standby's state is byte-identical to the
///    leader's after the shipped commit.
struct FailoverConfig {
  /// Scheme name for partition::make_server ("one-tree", "qt", "tt", ...).
  std::string scheme = "tt";
  unsigned degree = 4;
  unsigned s_period_epochs = 3;
  std::vector<double> bins = {0.05, 1.0};

  std::size_t standbys = 3;
  std::size_t initial_members = 24;
  std::size_t joins_per_epoch = 2;
  std::size_t leaves_per_epoch = 2;
  std::size_t epochs = 16;

  std::uint64_t seed = 1;
  FaultConfig faults;
  std::size_t checkpoint_every = 4;
  std::size_t digest_every = 1;
  bool check_invariants = true;
};

struct FailoverDrillResult {
  std::vector<EpochRecord> epochs;

  std::size_t leader_kills = 0;
  std::size_t leader_partitions = 0;
  std::size_t failovers = 0;
  /// Commits a dead leader journaled but never delivered, recovered from
  /// the promoted standby's eager replay.
  std::size_t pending_epochs_delivered = 0;
  /// Standby kRejectedStale verdicts on a partitioned ex-leader's stream.
  std::size_t stale_frames_refused = 0;
  /// Member-side rejections of a stale-term rekey record.
  std::size_t stale_records_refused = 0;
  std::size_t ship_faults_injected = 0;
  /// Aggregated standby stats at the end of the run.
  std::size_t checkpoint_catchups = 0;
  std::size_t digest_checks = 0;
  std::size_t invariant_checks = 0;

  std::uint64_t final_term = 0;
  std::uint64_t final_leader = 0;
  std::size_t final_group_size = 0;
  /// Every surviving standby byte-identical to the leader at the end.
  bool converged = false;
};

/// Drive the full drill. Throws gk::ContractViolation at the first broken
/// invariant, divergent standby, or unfenced stale commit.
[[nodiscard]] FailoverDrillResult run_failover_drill(const FailoverConfig& config);

}  // namespace gk::faultsim
