#pragma once

#include <cstdint>

#include "workload/member.h"

namespace gk::faultsim {

/// Probabilities and seed for one deterministic fault schedule. All
/// probabilities are per-epoch (server) or per-epoch-per-member (the rest).
struct FaultConfig {
  std::uint64_t seed = 0;
  /// P(the key server crashes mid-commit this epoch).
  double server_crash = 0.0;
  /// P(a member's copy of the epoch's rekey message is lost entirely).
  double message_drop = 0.0;
  /// P(a member receives the rekey message twice).
  double message_duplicate = 0.0;
  /// P(a member receives the rekey message with its wraps reordered).
  double message_reorder = 0.0;
  /// P(a member crashes this epoch, losing all key state but its
  /// registration key, and rejoins after a delay).
  double member_crash = 0.0;
  /// Crash-to-rejoin delay is uniform in [min, max] epochs.
  std::uint64_t min_rejoin_delay = 1;
  std::uint64_t max_rejoin_delay = 3;

  // -- replication faults (failover drills; ignored by the single-server
  //    harness) --
  /// P(the leader is killed mid-commit this epoch, forcing a failover).
  double leader_kill = 0.0;
  /// P(the leader is partitioned away at the top of this epoch; the old
  /// leader stays alive to attempt a fenced-out stale commit).
  double leader_partition = 0.0;
  /// P(the frame shipped to a given standby this epoch is delayed a round).
  double ship_delay = 0.0;
  /// P(the frame shipped to a given standby this epoch is torn).
  double ship_torn = 0.0;
};

/// Seed-driven fault oracle. Every decision is a pure hash of
/// (seed, stream, epoch, member) — no internal RNG stream — so answers are
/// independent of query order and of how many other members exist. Two runs
/// with the same seed see the exact same faults at the same points even if
/// one of them crashes and recovers between queries, which is what makes
/// crash-recovery determinism testable at all.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] bool server_crashes(std::uint64_t epoch) const;
  [[nodiscard]] bool message_dropped(std::uint64_t epoch,
                                     workload::MemberId member) const;
  [[nodiscard]] bool message_duplicated(std::uint64_t epoch,
                                        workload::MemberId member) const;
  [[nodiscard]] bool message_reordered(std::uint64_t epoch,
                                       workload::MemberId member) const;
  [[nodiscard]] bool member_crashes(std::uint64_t epoch,
                                    workload::MemberId member) const;
  /// Epochs until a member crashed at `epoch` rejoins (>= min_rejoin_delay).
  [[nodiscard]] std::uint64_t rejoin_delay(std::uint64_t epoch,
                                           workload::MemberId member) const;

  [[nodiscard]] bool leader_killed(std::uint64_t epoch) const;
  [[nodiscard]] bool leader_partitioned(std::uint64_t epoch) const;
  [[nodiscard]] bool ship_delayed(std::uint64_t epoch, std::uint64_t standby) const;
  [[nodiscard]] bool ship_torn(std::uint64_t epoch, std::uint64_t standby) const;

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double unit(std::uint64_t stream, std::uint64_t epoch,
                            std::uint64_t entity) const noexcept;

  FaultConfig config_;
};

}  // namespace gk::faultsim
