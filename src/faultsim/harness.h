#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/key.h"
#include "faultsim/fault_schedule.h"
#include "partition/journaled_server.h"
#include "partition/server.h"
#include "transport/resync.h"

namespace gk::faultsim {

/// Which key-server scheme the harness drives.
enum class ServerKind : std::uint8_t {
  kOneKeyTree,
  kQt,
  kTt,
  kLossHomogenized,
};

/// One fault-injection run: a journaled key server, a churning membership,
/// a deterministic fault schedule, and the invariant checker.
struct HarnessConfig {
  ServerKind kind = ServerKind::kOneKeyTree;
  unsigned degree = 4;
  /// S-period for QT/TT (ignored otherwise).
  unsigned s_period_epochs = 3;
  /// Loss-rate bin bounds for the loss-homogenized scheme.
  std::vector<double> bins = {0.05, 1.0};

  std::size_t initial_members = 24;
  std::size_t joins_per_epoch = 2;
  std::size_t leaves_per_epoch = 2;
  std::size_t epochs = 16;
  /// Mean per-packet loss on each member's resync unicast channel.
  double member_loss = 0.1;

  std::uint64_t seed = 1;
  FaultConfig faults;
  /// Journal compaction cadence (commits between checkpoints).
  std::size_t checkpoint_every = 4;
  transport::ResyncConfig resync;
  bool check_invariants = true;
};

struct EpochRecord {
  std::uint64_t epoch = 0;
  /// Commit attribution: which node and term authored this epoch's commit.
  /// The single-server harness is node 0 for its whole run (term 0: never
  /// elected); failover drills re-point these at each promoted leader, so
  /// per-epoch invariants no longer assume one server identity.
  std::uint64_t term = 0;
  std::uint64_t leader = 0;
  /// The commit was delivered by a leader elected this epoch.
  bool failover = false;
  crypto::VersionedKey group_key;
  std::size_t multicast_cost = 0;
  bool server_crashed = false;
  std::size_t messages_dropped = 0;
  std::size_t member_crashes = 0;
  std::size_t rejoins = 0;
  std::size_t resyncs = 0;
  std::size_t stragglers_evicted = 0;
};

struct HarnessResult {
  std::vector<EpochRecord> epochs;
  /// The server's group key after each epoch — the crash-recovery
  /// determinism property compares these across runs byte for byte.
  std::vector<crypto::VersionedKey> group_key_history;

  std::size_t server_crashes = 0;
  std::size_t recoveries = 0;
  std::size_t member_crashes = 0;
  std::size_t rejoins = 0;
  std::size_t resyncs = 0;
  std::size_t resyncs_failed = 0;
  std::size_t stragglers_evicted = 0;
  std::size_t invariant_checks = 0;
  /// Multicast bandwidth (the paper's metric) and the unicast resync
  /// traffic, kept separate on purpose.
  std::size_t multicast_key_transmissions = 0;
  std::size_t resync_key_transmissions = 0;
  std::size_t resync_rounds_waited = 0;
  std::size_t final_group_size = 0;
};

/// Fresh server of the configured kind, seeded from config.seed. Recovery
/// uses the same factory for the blank server a journal is replayed into.
[[nodiscard]] std::unique_ptr<partition::DurableRekeyServer> make_harness_server(
    const HarnessConfig& config);

/// Drive the full run. Throws gk::ContractViolation if any invariant
/// breaks or recovery diverges.
[[nodiscard]] HarnessResult run_harness(const HarnessConfig& config);

}  // namespace gk::faultsim
