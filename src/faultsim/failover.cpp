#include "faultsim/failover.h"

#include <map>
#include <utility>

#include "common/ensure.h"
#include "faultsim/invariants.h"
#include "lkh/key_ring.h"
#include "partition/factory.h"
#include "replica/cluster.h"
#include "wire/record.h"

namespace gk::faultsim {

namespace {

/// Drill-side view of one member. Members in this drill always receive the
/// multicast (per-member delivery faults are the single-server harness's
/// territory); what they enforce here is term fencing.
struct DrillMember {
  lkh::KeyRing ring;
  crypto::Key128 individual;
  crypto::KeyId leaf_id{};
  /// Highest authoring term this member has accepted; records framed by a
  /// staler term are refused without touching the ring.
  std::uint64_t fenced_term = 0;
};

}  // namespace

FailoverDrillResult run_failover_drill(const FailoverConfig& config) {
  GK_ENSURE_MSG(config.epochs > 0, "need at least one epoch");
  GK_ENSURE_MSG(config.standbys >= 1, "failover drill needs at least one standby");
  const FaultSchedule faults(config.faults);
  InvariantChecker checker;
  FailoverDrillResult result;

  Rng workload_rng(config.seed ^ 0xa5a5a5a5a5a5a5a5ULL);

  partition::SchemeConfig scheme_config;
  scheme_config.degree = config.degree;
  scheme_config.s_period_epochs = config.s_period_epochs;
  scheme_config.bin_upper_bounds = config.bins;

  replica::ReplicaCluster::Config cluster_config;
  cluster_config.standbys = config.standbys;
  cluster_config.journal.checkpoint_every = config.checkpoint_every;
  cluster_config.journal.digest_every = config.digest_every;
  cluster_config.channel_seed = config.seed ^ 0x5a5a5a5a5a5a5a5aULL;

  // Every replica starts from the same seed: blanks are structurally
  // identical and the first shipped checkpoint overwrites all state anyway.
  replica::ReplicaCluster cluster(
      [&] {
        return partition::make_server(config.scheme, scheme_config, Rng(config.seed));
      },
      cluster_config);

  std::map<std::uint64_t, DrillMember> members;
  std::uint64_t next_member = 1;

  auto do_join = [&](std::uint64_t epoch) {
    workload::MemberProfile profile;
    profile.id = workload::make_member_id(next_member++);
    profile.member_class = workload_rng.bernoulli(0.5) ? workload::MemberClass::kShort
                                                       : workload::MemberClass::kLong;
    profile.join_time = static_cast<double>(epoch);
    profile.duration = 1.0 + workload_rng.uniform() * 32.0;
    profile.loss_rate = 0.0;
    const auto registration = cluster.join(profile);
    DrillMember member{
        lkh::KeyRing(profile.id, registration.leaf_id, registration.individual_key),
        registration.individual_key, registration.leaf_id,
        // Registration is unicast from the current leader and carries its
        // term, so newcomers are born fenced.
        cluster.term()};
    if (config.check_invariants) checker.note_join(member.ring);
    members.emplace(workload::raw(profile.id), std::move(member));
  };

  for (std::uint64_t epoch = 0; epoch < config.epochs; ++epoch) {
    EpochRecord record;
    record.epoch = epoch;

    // ---- Partition drill: the leader is cut off between epochs. The
    // survivors elect a replacement; the ex-leader stays alive so its stale
    // stream can be offered (and must be refused) after the new leader's
    // commit raises every fence. ----
    const bool partitioned =
        faults.leader_partitioned(epoch) && cluster.standby_count() >= 2;
    if (partitioned) {
      cluster.partition_leader();
      const auto failover = cluster.failover();
      GK_ENSURE_MSG(!failover.pending.has_value(),
                    "a between-epochs partition interrupted no commit");
      ++result.leader_partitions;
      ++result.failovers;
      record.failover = true;
    }

    // ---- Churn, journaled and shipped by the current leader. ----
    if (epoch == 0) {
      for (std::size_t j = 0; j < config.initial_members; ++j) do_join(epoch);
    } else {
      std::vector<std::uint64_t> eligible;
      for (const auto& [raw_id, member] : members) eligible.push_back(raw_id);
      const std::size_t leaves =
          eligible.size() > config.leaves_per_epoch + 2 ? config.leaves_per_epoch : 0;
      for (std::size_t l = 0; l < leaves; ++l) {
        const auto pick = workload_rng.uniform_u64(eligible.size());
        const auto raw_id = eligible[pick];
        eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(pick));
        if (config.check_invariants) checker.note_eviction(members.at(raw_id).ring);
        cluster.leave(workload::make_member_id(raw_id));
        members.erase(raw_id);
      }
      for (std::size_t j = 0; j < config.joins_per_epoch; ++j) do_join(epoch);
    }

    // ---- Ship-channel faults for this epoch's commit traffic. ----
    for (std::size_t s = 0; s < cluster.standby_count(); ++s) {
      if (faults.ship_delayed(epoch, s)) {
        cluster.arm_channel_fault(s, transport::ShipChannel::Fault::kDelay);
        ++result.ship_faults_injected;
      } else if (faults.ship_torn(epoch, s)) {
        cluster.arm_channel_fault(s, transport::ShipChannel::Fault::kTear);
        ++result.ship_faults_injected;
      }
    }

    // ---- Commit, possibly through a mid-commit leader kill + failover. ----
    engine::EpochOutput out;
    if (faults.leader_killed(epoch) && cluster.standby_count() >= 2) {
      cluster.kill_leader_mid_commit();
      bool crashed = false;
      try {
        out = cluster.end_epoch();
      } catch (const partition::ServerCrashed&) {
        crashed = true;
      }
      GK_ENSURE_MSG(crashed, "armed leader kill did not fire");
      const auto failover = cluster.failover();
      GK_ENSURE_MSG(failover.pending.has_value(),
                    "promoted standby lost the interrupted epoch");
      out = *failover.pending;
      ++result.leader_kills;
      ++result.failovers;
      ++result.pending_epochs_delivered;
      record.server_crashed = true;
      record.failover = true;
    } else {
      out = cluster.end_epoch();
    }
    record.term = out.term;
    record.leader = cluster.leader_node();
    record.multicast_cost = out.message.cost();

    const auto& durable = cluster.leader().durable();

    // ---- Leaf relocations (partition migration), as in the harness. ----
    for (auto& [raw_id, member] : members) {
      const auto leaf = durable.member_leaf_id(workload::make_member_id(raw_id));
      if (leaf != member.leaf_id) {
        member.leaf_id = leaf;
        member.ring.grant(leaf, {member.individual, 0});
      }
    }

    // ---- Multicast delivery through the framed record, term enforced by
    // every member before its ring sees a single wrap. ----
    if (config.check_invariants) {
      checker.note_message(out.message);
      checker.note_commit(out.epoch, out.term);
    }
    const auto framed =
        wire::RekeyRecord::decode_framed(wire::RekeyRecord::encode(out.message, out.term));
    for (auto& [raw_id, member] : members) {
      GK_ENSURE_MSG(framed.term >= member.fenced_term,
                    "live leader's record must never be fenced out");
      member.fenced_term = framed.term;
      member.ring.process(framed.message);
    }

    // ---- Stale probe: the partitioned ex-leader commits on its side of
    // the split and offers the result everywhere. Every standby and every
    // member must refuse it. ----
    if (partitioned) {
      const auto probe = cluster.stale_commit();
      for (const auto verdict : probe.verdicts) {
        GK_ENSURE_MSG(verdict == replica::StandbyReplica::Offer::kRejectedStale,
                      "standby accepted a fenced-out leader's stream");
        ++result.stale_frames_refused;
      }
      const auto stale = wire::RekeyRecord::decode_framed(
          wire::RekeyRecord::encode(probe.output.message, probe.output.term));
      for (auto& [raw_id, member] : members) {
        GK_ENSURE_MSG(stale.term < member.fenced_term,
                      "member failed to fence a stale-term rekey record");
        ++result.stale_records_refused;
      }
    }

    // ---- Invariants + convergence. ----
    record.group_key = cluster.leader().group_key();
    if (config.check_invariants) {
      std::vector<const lkh::KeyRing*> live;
      live.reserve(members.size());
      for (const auto& [raw_id, member] : members) live.push_back(&member.ring);
      checker.check_epoch(epoch, cluster.leader().group_key_id(), record.group_key,
                          live);
      ++result.invariant_checks;
    }
    GK_ENSURE_MSG(cluster.standbys_identical(),
                  "standby state diverged from the leader after epoch " << epoch);
    result.epochs.push_back(std::move(record));
  }

  for (std::size_t s = 0; s < cluster.standby_count(); ++s) {
    result.checkpoint_catchups += cluster.standby(s).stats().checkpoint_catchups;
    result.digest_checks += cluster.standby(s).stats().digest_checks;
  }
  result.final_term = cluster.term();
  result.final_leader = cluster.leader_node();
  result.final_group_size = cluster.leader().size();
  result.converged = cluster.standbys_identical();
  return result;
}

}  // namespace gk::faultsim
