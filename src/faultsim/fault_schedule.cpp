#include "faultsim/fault_schedule.h"

#include "common/ensure.h"

namespace gk::faultsim {

namespace {

// splitmix64 finalizer: full-avalanche mixing so adjacent epochs/members
// land on uncorrelated points of [0, 1).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-decision streams, so e.g. "drop" and "duplicate" never correlate.
enum Stream : std::uint64_t {
  kServerCrash = 1,
  kDrop = 2,
  kDuplicate = 3,
  kReorder = 4,
  kMemberCrash = 5,
  kRejoinDelay = 6,
  kLeaderKill = 7,
  kLeaderPartition = 8,
  kShipDelay = 9,
  kShipTear = 10,
};

}  // namespace

double FaultSchedule::unit(std::uint64_t stream, std::uint64_t epoch,
                           std::uint64_t entity) const noexcept {
  std::uint64_t h = mix(config_.seed ^ mix(stream));
  h = mix(h ^ mix(epoch));
  h = mix(h ^ mix(entity));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultSchedule::server_crashes(std::uint64_t epoch) const {
  return unit(kServerCrash, epoch, 0) < config_.server_crash;
}

bool FaultSchedule::message_dropped(std::uint64_t epoch,
                                    workload::MemberId member) const {
  return unit(kDrop, epoch, workload::raw(member)) < config_.message_drop;
}

bool FaultSchedule::message_duplicated(std::uint64_t epoch,
                                       workload::MemberId member) const {
  return unit(kDuplicate, epoch, workload::raw(member)) < config_.message_duplicate;
}

bool FaultSchedule::message_reordered(std::uint64_t epoch,
                                      workload::MemberId member) const {
  return unit(kReorder, epoch, workload::raw(member)) < config_.message_reorder;
}

bool FaultSchedule::member_crashes(std::uint64_t epoch,
                                   workload::MemberId member) const {
  return unit(kMemberCrash, epoch, workload::raw(member)) < config_.member_crash;
}

std::uint64_t FaultSchedule::rejoin_delay(std::uint64_t epoch,
                                          workload::MemberId member) const {
  GK_ENSURE(config_.min_rejoin_delay >= 1 &&
            config_.max_rejoin_delay >= config_.min_rejoin_delay);
  const auto span = config_.max_rejoin_delay - config_.min_rejoin_delay + 1;
  const auto draw = static_cast<std::uint64_t>(
      unit(kRejoinDelay, epoch, workload::raw(member)) * static_cast<double>(span));
  return config_.min_rejoin_delay + (draw >= span ? span - 1 : draw);
}

bool FaultSchedule::leader_killed(std::uint64_t epoch) const {
  return unit(kLeaderKill, epoch, 0) < config_.leader_kill;
}

bool FaultSchedule::leader_partitioned(std::uint64_t epoch) const {
  return unit(kLeaderPartition, epoch, 0) < config_.leader_partition;
}

bool FaultSchedule::ship_delayed(std::uint64_t epoch, std::uint64_t standby) const {
  return unit(kShipDelay, epoch, standby) < config_.ship_delay;
}

bool FaultSchedule::ship_torn(std::uint64_t epoch, std::uint64_t standby) const {
  return unit(kShipTear, epoch, standby) < config_.ship_torn;
}

}  // namespace gk::faultsim
