#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/key.h"
#include "lkh/key_ring.h"
#include "lkh/rekey_message.h"

namespace gk::faultsim {

/// Group-key security invariant checker. Sits beside the fault harness and
/// asserts, after every epoch, the three properties a group key management
/// scheme exists to provide — under faults, crashes, and recoveries:
///
///  * Agreement: every live, synchronized member derives exactly the
///    server's current group key (byte comparison, not just version).
///  * Forward secrecy: an evicted member, replaying every multicast sent
///    after its eviction against its archived key ring, can never derive
///    the current group key.
///  * Backward secrecy: a member's registration-time key state, replaying
///    every multicast sent *before* it joined, can never derive any group
///    key that was current before its join.
///
/// Violations throw common::ContractViolation (via GK_ENSURE), so any sweep
/// or property test fails loudly at the first broken epoch.
class InvariantChecker {
 public:
  /// Record one multicast rekey message, in the order the group saw them.
  /// Re-delivered recovery output must be recorded exactly once.
  void note_message(const lkh::RekeyMessage& message);

  /// Record one delivered commit with the leader term that authored it.
  /// Asserts the replication safety properties: epochs are delivered exactly
  /// once and in order (no epoch committed twice — failovers and recovery
  /// re-runs included), and authoring terms never regress.
  void note_commit(std::uint64_t epoch, std::uint64_t term);

  /// Archive a member's ring at eviction time (before it could process the
  /// eviction epoch's message). The checker owns the copy and replays all
  /// later multicasts against it forever after.
  void note_eviction(const lkh::KeyRing& ring);

  /// Register a newcomer's registration-time ring (individual key only).
  /// The probe replays all *earlier* multicasts once, at the next
  /// check_epoch(), to assert backward secrecy, then is discarded.
  void note_join(const lkh::KeyRing& fresh_ring);

  /// Run all three invariants for the epoch just committed. `live_rings`
  /// are the rings of members that are up and synchronized (crashed or
  /// mid-resync members are checked once they resync).
  void check_epoch(std::uint64_t epoch, crypto::KeyId group_key_id,
                   const crypto::VersionedKey& group_key,
                   std::span<const lkh::KeyRing* const> live_rings);

  [[nodiscard]] std::size_t checks_run() const noexcept { return checks_run_; }
  [[nodiscard]] std::size_t evicted_tracked() const noexcept {
    return evicted_.size();
  }
  [[nodiscard]] std::size_t probes_run() const noexcept { return probes_run_; }
  [[nodiscard]] std::size_t commits_seen() const noexcept { return commits_seen_; }

 private:
  struct GroupKeyRecord {
    std::uint64_t epoch = 0;
    crypto::KeyId id{};
    crypto::VersionedKey key;
  };
  struct ArchivedRing {
    lkh::KeyRing ring;
    std::size_t replayed = 0;  // messages_[0, replayed) already processed
  };
  struct JoinProbe {
    lkh::KeyRing ring;
    std::size_t pre_join_messages = 0;  // history length at join time
  };

  std::vector<lkh::RekeyMessage> messages_;
  std::vector<GroupKeyRecord> dek_history_;
  std::vector<ArchivedRing> evicted_;
  std::vector<JoinProbe> probes_;
  std::size_t checks_run_ = 0;
  std::size_t probes_run_ = 0;
  std::size_t commits_seen_ = 0;
  std::uint64_t next_commit_epoch_ = 0;  ///< pinned by the first note_commit
  std::uint64_t last_commit_term_ = 0;
};

}  // namespace gk::faultsim
