#include "faultsim/invariants.h"

#include "common/ensure.h"

namespace gk::faultsim {

void InvariantChecker::note_message(const lkh::RekeyMessage& message) {
  messages_.push_back(message);
}

void InvariantChecker::note_commit(std::uint64_t epoch, std::uint64_t term) {
  if (commits_seen_ == 0) next_commit_epoch_ = epoch;
  GK_ENSURE_MSG(epoch == next_commit_epoch_,
                "invariant violated (epoch uniqueness): epoch "
                    << epoch << " delivered out of order (expected "
                    << next_commit_epoch_ << ")");
  GK_ENSURE_MSG(term >= last_commit_term_,
                "invariant violated (fencing): authoring term regressed from "
                    << last_commit_term_ << " to " << term << " at epoch " << epoch);
  ++next_commit_epoch_;
  last_commit_term_ = term;
  ++commits_seen_;
}

void InvariantChecker::note_eviction(const lkh::KeyRing& ring) {
  // Everything multicast up to now was fair game for the member; only
  // post-eviction messages must keep it out.
  evicted_.push_back({ring, messages_.size()});
}

void InvariantChecker::note_join(const lkh::KeyRing& fresh_ring) {
  probes_.push_back({fresh_ring, messages_.size()});
}

void InvariantChecker::check_epoch(std::uint64_t epoch, crypto::KeyId group_key_id,
                                   const crypto::VersionedKey& group_key,
                                   std::span<const lkh::KeyRing* const> live_rings) {
  dek_history_.push_back({epoch, group_key_id, group_key});

  // ---- Agreement: every synchronized member holds the exact DEK bytes. ----
  for (const auto* ring : live_rings) {
    const auto held = ring->lookup(group_key_id);
    GK_ENSURE_MSG(held.has_value(),
                  "invariant violated (agreement): member "
                      << workload::raw(ring->owner()) << " has no group key at epoch "
                      << epoch);
    GK_ENSURE_MSG(held->version == group_key.version && held->key == group_key.key,
                  "invariant violated (agreement): member "
                      << workload::raw(ring->owner())
                      << " holds a different group key at epoch " << epoch);
  }

  // ---- Forward secrecy: evicted rings + all post-eviction multicasts
  // never reach the current DEK. ----
  for (auto& archived : evicted_) {
    for (; archived.replayed < messages_.size(); ++archived.replayed)
      archived.ring.process(messages_[archived.replayed]);
    const auto derived = archived.ring.lookup(group_key_id);
    GK_ENSURE_MSG(!(derived.has_value() && derived->version == group_key.version &&
                    derived->key == group_key.key),
                  "invariant violated (forward secrecy): evicted member "
                      << workload::raw(archived.ring.owner())
                      << " derived the group key of epoch " << epoch);
  }

  // ---- Backward secrecy: registration-time state + all pre-join
  // multicasts never reach any pre-join group key. ----
  for (auto& probe : probes_) {
    for (std::size_t m = 0; m < probe.pre_join_messages; ++m)
      probe.ring.process(messages_[m]);
    for (const auto& record : dek_history_) {
      const auto derived = probe.ring.lookup(record.id);
      GK_ENSURE_MSG(!(derived.has_value() && derived->version == record.key.version &&
                      derived->key == record.key.key),
                    "invariant violated (backward secrecy): member "
                        << workload::raw(probe.ring.owner())
                        << " derived the pre-join group key of epoch "
                        << record.epoch);
    }
    ++probes_run_;
  }
  probes_.clear();

  ++checks_run_;
}

}  // namespace gk::faultsim
