#include "faultsim/harness.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/ensure.h"
#include "faultsim/invariants.h"
#include "lkh/key_ring.h"
#include "netsim/receiver.h"
#include "partition/factory.h"

namespace gk::faultsim {

namespace {

/// Harness-side view of one member. The std::map keyed by raw member id
/// keeps every per-member sweep in deterministic order (an unordered
/// container here would leak iteration order into RNG consumption).
struct MemberState {
  lkh::KeyRing ring;
  crypto::Key128 individual;
  crypto::KeyId leaf_id{};
  netsim::Receiver channel;  // resync unicast path
  bool synced = true;
  bool crashed = false;
  std::uint64_t rejoin_epoch = 0;
  bool pending_evict = false;
};

}  // namespace

std::unique_ptr<partition::DurableRekeyServer> make_harness_server(
    const HarnessConfig& config) {
  const char* scheme = nullptr;
  switch (config.kind) {
    case ServerKind::kOneKeyTree: scheme = "one-tree"; break;
    case ServerKind::kQt: scheme = "qt"; break;
    case ServerKind::kTt: scheme = "tt"; break;
    case ServerKind::kLossHomogenized: scheme = "loss-bin"; break;
  }
  GK_ENSURE_MSG(scheme != nullptr, "unknown server kind");
  partition::SchemeConfig scheme_config;
  scheme_config.degree = config.degree;
  scheme_config.s_period_epochs = config.s_period_epochs;
  scheme_config.bin_upper_bounds = config.bins;
  return partition::make_server(scheme, scheme_config, Rng(config.seed));
}

HarnessResult run_harness(const HarnessConfig& config) {
  GK_ENSURE_MSG(config.epochs > 0, "need at least one epoch");
  const FaultSchedule faults(config.faults);
  InvariantChecker checker;
  HarnessResult result;

  // Independent streams: workload decisions, member channel seeds, and
  // resync wrap nonces must not perturb each other (or the server's own
  // streams, which live inside the server and its checkpoints).
  Rng workload_rng(config.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  Rng channel_rng(config.seed ^ 0x5a5a5a5a5a5a5a5aULL);
  Rng resync_rng(config.seed ^ 0xc3c3c3c3c3c3c3c3ULL);

  partition::JournaledServer::Config journal_config;
  journal_config.checkpoint_every = config.checkpoint_every;
  auto server = std::make_unique<partition::JournaledServer>(
      make_harness_server(config), journal_config);

  std::map<std::uint64_t, MemberState> members;
  std::uint64_t next_member = 1;

  auto do_join = [&](std::uint64_t epoch) {
    workload::MemberProfile profile;
    profile.id = workload::make_member_id(next_member++);
    profile.member_class = workload_rng.bernoulli(0.5) ? workload::MemberClass::kShort
                                                       : workload::MemberClass::kLong;
    profile.join_time = static_cast<double>(epoch);
    profile.duration = 1.0 + workload_rng.uniform() * 32.0;
    profile.loss_rate =
        std::min(config.member_loss * (0.5 + workload_rng.uniform()), 0.999);
    const auto registration = server->join(profile);
    MemberState state{
        lkh::KeyRing(profile.id, registration.leaf_id, registration.individual_key),
        registration.individual_key,
        registration.leaf_id,
        netsim::Receiver(profile.id, profile.loss_rate, channel_rng.fork())};
    if (config.check_invariants) checker.note_join(state.ring);
    members.emplace(workload::raw(profile.id), std::move(state));
  };

  for (std::uint64_t epoch = 0; epoch < config.epochs; ++epoch) {
    EpochRecord record;
    record.epoch = epoch;

    // ---- Evict stragglers whose resync budget ran out last epoch. Their
    // departure rotates every key they held, so this epoch's commit restores
    // forward secrecy for whatever they did manage to receive. ----
    {
      std::vector<std::uint64_t> evict;
      for (const auto& [raw_id, state] : members)
        if (state.pending_evict) evict.push_back(raw_id);
      for (const auto raw_id : evict) {
        if (config.check_invariants)
          checker.note_eviction(members.at(raw_id).ring);
        server->leave(workload::make_member_id(raw_id));
        members.erase(raw_id);
        ++record.stragglers_evicted;
        ++result.stragglers_evicted;
      }
    }

    // ---- Member crash / rejoin faults. A crashed member loses all key
    // state except its registration key; the server never hears about it
    // (crash, not leave), so the membership does not change. ----
    for (auto& [raw_id, state] : members) {
      const auto id = workload::make_member_id(raw_id);
      if (!state.crashed && faults.member_crashes(epoch, id)) {
        state.ring = lkh::KeyRing(id, state.leaf_id, state.individual);
        state.crashed = true;
        state.synced = false;
        state.rejoin_epoch = epoch + faults.rejoin_delay(epoch, id);
        ++record.member_crashes;
        ++result.member_crashes;
      } else if (state.crashed && epoch >= state.rejoin_epoch) {
        state.crashed = false;  // back up; resynced below, after the commit
        // The leaf may have migrated while the member was down; rebuild the
        // ring against the current placement (the registration key and the
        // new leaf id are what the member re-learns at reconnect).
        state.ring = lkh::KeyRing(id, state.leaf_id, state.individual);
        ++record.rejoins;
        ++result.rejoins;
      }
    }

    // ---- Churn. ----
    if (epoch == 0) {
      for (std::size_t j = 0; j < config.initial_members; ++j) do_join(epoch);
    } else {
      std::vector<std::uint64_t> eligible;
      for (const auto& [raw_id, state] : members)
        if (!state.crashed && !state.pending_evict) eligible.push_back(raw_id);
      const std::size_t leaves =
          eligible.size() > config.leaves_per_epoch + 2 ? config.leaves_per_epoch : 0;
      for (std::size_t l = 0; l < leaves; ++l) {
        const auto pick = workload_rng.uniform_u64(eligible.size());
        const auto raw_id = eligible[pick];
        eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(pick));
        if (config.check_invariants) checker.note_eviction(members.at(raw_id).ring);
        server->leave(workload::make_member_id(raw_id));
        members.erase(raw_id);
      }
      for (std::size_t j = 0; j < config.joins_per_epoch; ++j) do_join(epoch);
    }

    // ---- Commit the epoch, possibly through a crash + journal recovery. ----
    partition::EpochOutput out;
    if (faults.server_crashes(epoch)) {
      server->arm_crash_before_commit();
      bool crashed = false;
      try {
        out = server->end_epoch();
      } catch (const partition::ServerCrashed&) {
        crashed = true;
      }
      GK_ENSURE_MSG(crashed, "armed crash did not fire");
      record.server_crashed = true;
      ++result.server_crashes;
      const std::vector<std::uint8_t> journal = server->journal_bytes();
      auto recovery = partition::JournaledServer::recover(
          journal, make_harness_server(config), journal_config);
      server = std::move(recovery.server);
      GK_ENSURE_MSG(recovery.pending.has_value(),
                    "recovery did not re-run the interrupted epoch");
      out = std::move(*recovery.pending);
      ++result.recoveries;
    } else {
      out = server->end_epoch();
    }
    record.term = out.term;
    record.multicast_cost = out.message.cost();
    result.multicast_key_transmissions += out.message.cost();
    if (config.check_invariants) checker.note_commit(out.epoch, out.term);

    const auto& durable = server->durable();

    // ---- Leaf relocations (partition migration): leaf placement is public
    // structure information; the member re-registers its unchanged
    // individual key under the new node id. ----
    for (auto& [raw_id, state] : members) {
      const auto leaf = durable.member_leaf_id(workload::make_member_id(raw_id));
      if (leaf != state.leaf_id) {
        state.leaf_id = leaf;
        if (!state.crashed) state.ring.grant(leaf, {state.individual, 0});
      }
    }

    // ---- Multicast delivery, with per-member message faults. Reordered
    // delivery exercises the ring's fixed-point processing; drops leave the
    // member desynchronized until resync. ----
    if (config.check_invariants) checker.note_message(out.message);
    for (auto& [raw_id, state] : members) {
      if (state.crashed) continue;
      const auto id = workload::make_member_id(raw_id);
      if (faults.message_dropped(epoch, id)) {
        state.synced = false;
        ++record.messages_dropped;
        continue;
      }
      if (faults.message_reordered(epoch, id)) {
        auto shuffled = out.message;
        std::reverse(shuffled.wraps.begin(), shuffled.wraps.end());
        state.ring.process(shuffled);
      } else {
        state.ring.process(out.message);
      }
      if (faults.message_duplicated(epoch, id)) state.ring.process(out.message);
    }

    // ---- Resync: every live member that missed this epoch (drop fault, or
    // crash-rejoin with a wiped ring) gets a catch-up bundle over its
    // unicast channel instead of a group-wide rekey. ----
    for (auto& [raw_id, state] : members) {
      if (state.crashed || state.synced) continue;
      const auto id = workload::make_member_id(raw_id);
      const auto bundle = partition::make_catchup_bundle(durable, id, resync_rng);
      const auto report = transport::run_resync(bundle, state.channel, config.resync);
      ++record.resyncs;
      ++result.resyncs;
      result.resync_key_transmissions += report.key_transmissions;
      result.resync_rounds_waited += report.rounds_waited;
      std::vector<crypto::WrappedKey> received;
      for (std::size_t w = 0; w < bundle.size(); ++w)
        if (report.received[w]) received.push_back(bundle[w]);
      state.ring.process(std::span<const crypto::WrappedKey>(received));
      if (report.delivered) {
        state.synced = true;
      } else {
        ++result.resyncs_failed;
        state.pending_evict = true;  // unreachable: evicted next epoch
      }
    }

    // ---- Invariants. ----
    record.group_key = server->group_key();
    result.group_key_history.push_back(record.group_key);
    if (config.check_invariants) {
      std::vector<const lkh::KeyRing*> live;
      for (const auto& [raw_id, state] : members)
        if (!state.crashed && state.synced && !state.pending_evict)
          live.push_back(&state.ring);
      checker.check_epoch(epoch, server->group_key_id(), record.group_key, live);
      ++result.invariant_checks;
    }
    result.epochs.push_back(std::move(record));
  }

  result.final_group_size = server->size();
  return result;
}

}  // namespace gk::faultsim
