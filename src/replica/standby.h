#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/sha256.h"
#include "engine/server.h"
#include "partition/journaled_server.h"
#include "replica/ship.h"

namespace gk::replica {

/// A standby key-server replica fed by journal shipping.
///
/// The standby mirrors the leader's journal byte stream and applies each
/// complete record through the same replay path crash recovery uses, so its
/// server state is *byte-identical* to the leader's after every shipped
/// commit — which is what makes failover cheap: promotion is a pointer
/// move, not a state transfer.
///
/// Failure handling is two-tier, and deliberately so:
///  * Transport-level damage (torn frame, flipped bit, dropped or reordered
///    frame, missed compaction) is detected by the frame digest and offset
///    bookkeeping and answered with kNeedCheckpoint — a clean catch-up
///    request. Nothing damaged is ever applied.
///  * Semantic divergence in an authenticated record (join grant mismatch,
///    commit epoch mismatch, state-digest mismatch) means the leader and
///    standby no longer agree on the deterministic replay — that is a
///    broken contract, and it throws ContractViolation loudly.
///
/// Epoch fencing: fence(term) pins the minimum acceptable term; frames
/// authored by a staler term return kRejectedStale and are never applied,
/// so a partitioned ex-leader cannot advance a standby.
class StandbyReplica {  // gklint: secret-type(StandbyReplica)
 public:
  StandbyReplica(std::uint64_t node_id,
                 std::unique_ptr<engine::DurableRekeyServer> blank);

  enum class Offer : std::uint8_t {
    kApplied,         ///< frame authenticated and applied (or benign duplicate)
    kNeedCheckpoint,  ///< gap, corruption, or unseeded: send a checkpoint frame
    kRejectedStale,   ///< frame from a fenced (stale) leader term — refused
  };

  /// Feed one encoded frame as received from the ship channel.
  Offer offer(std::span<const std::uint8_t> frame_bytes);

  /// Raise the minimum acceptable leader term (never lowers it).
  void fence(std::uint64_t term) noexcept;
  [[nodiscard]] std::uint64_t fenced_term() const noexcept { return fenced_term_; }

  /// True once a checkpoint has seeded the replica.
  [[nodiscard]] bool synced() const noexcept { return synced_; }
  /// The epoch the replica's next commit would produce (election ranking).
  [[nodiscard]] std::uint64_t applied_epoch() const;
  /// Replication cursor: how much of the leader's stream is applied.
  [[nodiscard]] JournalShipper::Cursor cursor() const noexcept;
  [[nodiscard]] std::uint64_t node() const noexcept { return node_; }

  /// SHA-256 of the replica server's full state (the rolling byte-identity
  /// check: must equal the leader's after every shipped commit).
  [[nodiscard]] crypto::Sha256::Digest state_digest() const;
  /// Full state bytes, for byte-for-byte comparison in property tests.
  [[nodiscard]] std::vector<std::uint8_t> state_bytes() const;

  [[nodiscard]] const engine::DurableRekeyServer& server() const;

  /// Promotion to leader after winning an election at `term`: the replica
  /// server is moved into a fresh JournaledServer fenced to the new term.
  /// If the shipped stream ended inside a commit (COMMIT_BEGIN without
  /// COMMIT_END — the old leader died mid-epoch), the standby has already
  /// replayed that commit deterministically, and `pending` carries the
  /// epoch output the dead leader never delivered, restamped to the new
  /// term. The standby is consumed.
  struct Promotion {
    std::unique_ptr<partition::JournaledServer> leader;
    std::optional<engine::EpochOutput> pending;
  };
  [[nodiscard]] Promotion promote(std::uint64_t term,
                                  partition::JournaledServer::Config config);

  struct Stats {
    std::size_t frames_applied = 0;
    std::size_t records_applied = 0;
    std::size_t duplicate_frames = 0;
    std::size_t corrupt_frames = 0;
    std::size_t gap_frames = 0;
    std::size_t stale_frames = 0;
    std::size_t checkpoint_catchups = 0;  ///< checkpoint frames that re-seeded us
    std::size_t digest_checks = 0;        ///< 'D' records verified
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Offer apply_checkpoint(const ShipFrame& frame);
  Offer apply_delta(const ShipFrame& frame);
  /// Parse and apply every complete record beyond the parse cursor.
  void apply_records();

  std::uint64_t node_;
  std::unique_ptr<engine::DurableRekeyServer> server_;
  bool synced_ = false;
  std::uint64_t fenced_term_ = 0;
  std::uint64_t stream_term_ = 0;   ///< term of the stream we are following
  std::uint64_t generation_ = 0;    ///< journal generation of that stream
  std::uint64_t applied_term_ = 0;  ///< last 'T' record applied
  std::vector<std::uint8_t> mirror_;  ///< received journal bytes
  std::size_t parse_cursor_ = 0;      ///< mirror_ offset of the next record
  std::size_t staged_ops_ = 0;        ///< ops applied since the last commit
  bool pending_join_ = false;         ///< 'J' applied, awaiting its 'A'
  crypto::KeyId pending_grant_{};
  std::optional<engine::EpochOutput> pending_commit_;  ///< 'C' applied, no 'E' yet
  Stats stats_;
};

}  // namespace gk::replica
