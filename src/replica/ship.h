#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "partition/journaled_server.h"

namespace gk::replica {

/// One journal-shipping frame: a slice of the leader's write-ahead journal
/// with enough framing for a standby to detect every transport failure.
///
///   'G' 'K' 'F' '1' | u8 version | u8 kind | u64 term | u64 generation
///   | u64 offset | blob payload | 32B SHA-256 of everything prior
///
/// A kDelta frame carries journal bytes [offset, offset + payload) of the
/// stream identified by (term, generation); a kCheckpoint frame carries the
/// whole current stream from byte 0 (base checkpoint record included) and
/// re-anchors a lagging or corrupted standby. The trailing digest turns
/// torn and bit-flipped frames into loud decode failures — a standby never
/// applies a record whose bytes it cannot authenticate against the frame
/// hash.
struct ShipFrame {  // gklint: secret-type(ShipFrame)
  static constexpr std::uint8_t kVersion = 1;
  enum class Kind : std::uint8_t { kDelta = 0, kCheckpoint = 1 };

  Kind kind = Kind::kDelta;
  /// Leader term that authored the frame (epoch fencing).
  std::uint64_t term = 0;
  /// Journal compaction generation the offsets are relative to.
  std::uint64_t generation = 0;
  /// Byte offset of `payload` within the (term, generation) stream.
  std::uint64_t offset = 0;
  /// Journal bytes (checkpoint state and staged keys — secret material).
  std::vector<std::uint8_t> payload;
};

/// Encode a frame, appending the integrity digest.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const ShipFrame& frame);

/// Decode and verify a frame. Throws wire::WireError on bad magic, bad
/// version, truncation, or digest mismatch — the standby's cue to request
/// checkpoint catch-up rather than apply a corrupt record.
[[nodiscard]] ShipFrame decode_frame(std::span<const std::uint8_t> bytes);

/// The leader side of journal shipping: reads a JournaledServer's journal
/// and cuts the frame that advances one standby's replication cursor to the
/// journal head. Stateless per standby — the cluster tracks one Cursor per
/// standby and acked offsets simply advance it.
class JournalShipper {
 public:
  /// A standby's acknowledged position in the leader's journal stream.
  struct Cursor {
    std::uint64_t generation = 0;  ///< 0 = never synced: needs a checkpoint
    std::uint64_t offset = 0;
  };

  explicit JournalShipper(const partition::JournaledServer& leader)
      : leader_(&leader) {}

  /// The frame that advances `cursor` toward the head: a delta when the
  /// cursor lies inside the current generation, a full checkpoint when the
  /// standby missed a compaction (or never synced), and nullopt when the
  /// standby is already caught up.
  [[nodiscard]] std::optional<ShipFrame> next_frame(const Cursor& cursor) const;

  /// Full-stream catch-up frame, unconditionally.
  [[nodiscard]] ShipFrame checkpoint_frame() const;

  /// Where the journal head currently is.
  [[nodiscard]] Cursor head() const noexcept;

 private:
  const partition::JournaledServer* leader_;
};

}  // namespace gk::replica
