#include "replica/election.h"

#include "common/ensure.h"

namespace gk::replica {

ElectionResult elect_leader(std::span<const Candidate> candidates,
                            std::uint64_t current_term) {
  GK_ENSURE_MSG(!candidates.empty(), "election with no eligible candidates");
  const Candidate* best = &candidates.front();
  for (const auto& candidate : candidates.subspan(1)) {
    if (candidate.applied_epoch != best->applied_epoch) {
      if (candidate.applied_epoch > best->applied_epoch) best = &candidate;
      continue;
    }
    if (candidate.journal_offset != best->journal_offset) {
      if (candidate.journal_offset > best->journal_offset) best = &candidate;
      continue;
    }
    if (candidate.node < best->node) best = &candidate;
  }
  return {best->node, current_term + 1};
}

}  // namespace gk::replica
