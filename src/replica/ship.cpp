#include "replica/ship.h"

#include <algorithm>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "wire/codec.h"
#include "wire/error.h"

namespace gk::replica {

namespace {

constexpr char kMagic[4] = {'G', 'K', 'F', '1'};

}  // namespace

std::vector<std::uint8_t> encode_frame(const ShipFrame& frame) {
  common::ByteWriter out;
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(ShipFrame::kVersion);
  out.u8(static_cast<std::uint8_t>(frame.kind));
  out.u64(frame.term);
  out.u64(frame.generation);
  out.u64(frame.offset);
  out.blob(frame.payload);
  const auto digest = crypto::sha256(out.data());
  out.bytes(digest);
  return out.take();
}

ShipFrame decode_frame(std::span<const std::uint8_t> bytes) {
  wire::Reader in(bytes);
  if (in.remaining() < 4)
    throw wire::WireError(wire::WireFault::kTruncated, "ship frame: no magic");
  for (const char c : kMagic)
    if (in.u8() != static_cast<std::uint8_t>(c))
      throw wire::WireError(wire::WireFault::kBadMagic, "not a ship frame");
  const auto version = in.u8();
  if (version != ShipFrame::kVersion)
    throw wire::WireError(wire::WireFault::kBadVersion,
                          "ship frame version " + std::to_string(version) +
                              " unsupported");
  const auto kind = in.u8();
  if (kind > static_cast<std::uint8_t>(ShipFrame::Kind::kCheckpoint))
    throw wire::WireError(wire::WireFault::kMalformed, "ship frame: unknown kind");

  ShipFrame frame;
  frame.kind = static_cast<ShipFrame::Kind>(kind);
  frame.term = in.u64();
  frame.generation = in.u64();
  frame.offset = in.u64();
  const auto payload = in.blob();
  frame.payload.assign(payload.begin(), payload.end());

  if (in.remaining() < crypto::Sha256::kDigestSize)
    throw wire::WireError(wire::WireFault::kTruncated, "ship frame: digest missing");
  const auto hashed = bytes.first(bytes.size() - in.remaining());
  const auto digest = crypto::sha256(hashed);
  const auto carried = in.bytes(crypto::Sha256::kDigestSize);
  if (!std::equal(digest.begin(), digest.end(), carried.begin()))
    throw wire::WireError(wire::WireFault::kMalformed,
                          "ship frame: integrity digest mismatch");
  in.expect_exhausted("ship frame");
  return frame;
}

std::optional<ShipFrame> JournalShipper::next_frame(const Cursor& cursor) const {
  const auto& journal = leader_->journal();
  if (cursor.generation != journal.generation()) return checkpoint_frame();
  const auto& bytes = journal.bytes();
  if (cursor.offset > bytes.size()) return checkpoint_frame();  // cursor from lost future
  if (cursor.offset == bytes.size()) return std::nullopt;       // caught up

  ShipFrame frame;
  frame.kind = ShipFrame::Kind::kDelta;
  frame.term = leader_->term();
  frame.generation = journal.generation();
  frame.offset = cursor.offset;
  frame.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(cursor.offset),
                       bytes.end());
  return frame;
}

ShipFrame JournalShipper::checkpoint_frame() const {
  const auto& journal = leader_->journal();
  ShipFrame frame;
  frame.kind = ShipFrame::Kind::kCheckpoint;
  frame.term = leader_->term();
  frame.generation = journal.generation();
  frame.offset = 0;
  frame.payload = journal.bytes();
  return frame;
}

JournalShipper::Cursor JournalShipper::head() const noexcept {
  return {leader_->journal().generation(), leader_->journal().size_bytes()};
}

}  // namespace gk::replica
