#include "replica/cluster.h"

#include <algorithm>
#include <utility>

#include "common/ensure.h"
#include "common/mutex.h"
#include "replica/election.h"
#include "replica/ship.h"

namespace gk::replica {

ReplicaCluster::ReplicaCluster(const Factory& factory, Config config)
    : config_(config) {
  GK_ENSURE_MSG(factory != nullptr, "cluster needs a replica factory");
  leader_ = std::make_unique<partition::JournaledServer>(factory(), config_.journal);
  term_ = 1;  // the founding leader's term; failovers move it forward
  leader_->set_term(term_);
  nodes_.reserve(config_.standbys);
  for (std::size_t i = 0; i < config_.standbys; ++i) {
    const auto id = static_cast<std::uint64_t>(i) + 1;  // leader is node 0
    nodes_.push_back(Node{
        id,
        std::make_unique<StandbyReplica>(id, factory()),
        transport::ShipChannel(Rng(config_.channel_seed ^ (id * 0x9e3779b9ULL))),
    });
  }
  const common::MutexLock lock(mutex_);
  ship();  // seed every standby with the founding checkpoint
}

engine::Registration ReplicaCluster::join(const workload::MemberProfile& profile) {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader (run failover)");
  auto registration = leader_->join(profile);
  ship();
  return registration;
}

void ReplicaCluster::leave(workload::MemberId member) {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader (run failover)");
  leader_->leave(member);
  ship();
}

engine::EpochOutput ReplicaCluster::end_epoch() {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader (run failover)");
  try {
    auto out = leader_->end_epoch();
    ship();
    // Drain frames a kDelay fault withheld earlier in the epoch, then
    // re-offer anything a kDrop fault swallowed (the cursor never advanced,
    // so the next cut covers the hole). Faults are one-shot, so this
    // converges within the epoch.
    for (auto& node : nodes_) pump(node);
    ship();
    return out;
  } catch (const partition::ServerCrashed&) {
    // The WAL tail (COMMIT_BEGIN included) hit the replication pipe before
    // the process died: ship it, then the leader is gone.
    ship();
    for (auto& node : nodes_) pump(node);
    ship();
    leader_.reset();
    throw;
  }
}

void ReplicaCluster::arm_channel_fault(std::size_t standby,
                                       transport::ShipChannel::Fault fault) {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(standby < nodes_.size(), "no such standby");
  nodes_[standby].channel.arm_fault(fault);
}

void ReplicaCluster::kill_leader_mid_commit() {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader to kill");
  leader_->arm_crash_before_commit();
}

void ReplicaCluster::partition_leader() {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader to partition");
  GK_ENSURE_MSG(stale_leader_ == nullptr, "a partitioned ex-leader already exists");
  stale_leader_ = std::move(leader_);
}

ReplicaCluster::StaleProbe ReplicaCluster::stale_commit() {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(stale_leader_ != nullptr, "no partitioned ex-leader to probe");
  StaleProbe probe;
  probe.output = stale_leader_->end_epoch();
  // The split heals just enough for the stale stream to reach the standbys;
  // fencing — not luck of the partition — must be what refuses it.
  const JournalShipper shipper(*stale_leader_);
  const auto frame = encode_frame(shipper.checkpoint_frame());
  probe.verdicts.reserve(nodes_.size());
  for (auto& node : nodes_) probe.verdicts.push_back(node.standby->offer(frame));
  // Refused everywhere, the ex-leader steps down for good; the slot is free
  // for the next partition drill.
  stale_leader_.reset();
  return probe;
}

ReplicaCluster::FailoverResult ReplicaCluster::failover() {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ == nullptr,
                "failover with a live leader — kill or partition it first");
  std::vector<Candidate> candidates;
  candidates.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (!node.standby->synced()) continue;  // never seeded: not electable
    candidates.push_back(
        Candidate{node.id, node.standby->applied_epoch(), node.standby->cursor().offset});
  }
  const auto elected = elect_leader(candidates, term_);

  const auto winner = static_cast<std::size_t>(
      std::find_if(nodes_.begin(), nodes_.end(),
                   [&](const Node& node) { return node.id == elected.leader; }) -
      nodes_.begin());
  auto promotion = nodes_[winner].standby->promote(elected.term, config_.journal);
  leader_ = std::move(promotion.leader);
  leader_node_ = elected.leader;
  term_ = elected.term;
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(winner));

  // Survivors fence out the old term, then re-anchor on the new stream.
  for (auto& node : nodes_) node.standby->fence(term_);
  ship();
  return {term_, leader_node_, std::move(promotion.pending)};
}

const partition::JournaledServer& ReplicaCluster::leader() const {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader");
  return *leader_;
}

partition::JournaledServer& ReplicaCluster::leader() {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader");
  return *leader_;
}

const StandbyReplica& ReplicaCluster::standby(std::size_t index) const {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(index < nodes_.size(), "no such standby");
  return *nodes_[index].standby;
}

const transport::ShipChannel::Stats& ReplicaCluster::channel_stats(
    std::size_t index) const {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(index < nodes_.size(), "no such standby");
  return nodes_[index].channel.stats();
}

void ReplicaCluster::fence_standby(std::size_t index, std::uint64_t term) {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(index < nodes_.size(), "no such standby");
  nodes_[index].standby->fence(term);
}

bool ReplicaCluster::standbys_identical() const {
  const common::MutexLock lock(mutex_);
  GK_ENSURE_MSG(leader_ != nullptr, "cluster has no leader to compare against");
  const auto golden = leader_->durable().save_state();
  for (const auto& node : nodes_) {
    if (!node.standby->synced()) return false;
    if (node.standby->state_bytes() != golden) return false;
  }
  return true;
}

void ReplicaCluster::ship() {
  if (leader_ == nullptr) return;
  const JournalShipper shipper(*leader_);
  for (auto& node : nodes_) {
    if (auto frame = shipper.next_frame(node.standby->cursor()))
      node.channel.send(encode_frame(*frame));
    pump(node);
  }
}

void ReplicaCluster::pump(Node& node) {
  const JournalShipper shipper(*leader_);
  for (int round = 0; round < 4; ++round) {
    bool need_checkpoint = false;
    for (const auto& bytes : node.channel.deliver()) {
      if (node.standby->offer(bytes) == StandbyReplica::Offer::kNeedCheckpoint)
        need_checkpoint = true;
    }
    if (!need_checkpoint) return;
    // Channel faults are one-shot, so the retransmitted checkpoint arrives
    // clean on the next round.
    node.channel.send(encode_frame(shipper.checkpoint_frame()));
  }
  GK_ENSURE_MSG(false, "standby failed to catch up after repeated checkpoints");
}

}  // namespace gk::replica
