#include "replica/standby.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/ensure.h"
#include "wire/error.h"

namespace gk::replica {

namespace {

constexpr std::size_t kMagicSize = 4;  // "GKJ1"

bool starts_with_journal_magic(std::span<const std::uint8_t> bytes) {
  static constexpr char kMagic[4] = {'G', 'K', 'J', '1'};
  if (bytes.size() < kMagicSize) return false;
  for (std::size_t i = 0; i < kMagicSize; ++i)
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i])) return false;
  return true;
}

}  // namespace

StandbyReplica::StandbyReplica(std::uint64_t node_id,
                               std::unique_ptr<engine::DurableRekeyServer> blank)
    : node_(node_id), server_(std::move(blank)) {
  GK_ENSURE_MSG(server_ != nullptr, "standby needs a blank server to replay into");
}

void StandbyReplica::fence(std::uint64_t term) noexcept {
  fenced_term_ = std::max(fenced_term_, term);
}

std::uint64_t StandbyReplica::applied_epoch() const {
  GK_ENSURE_MSG(server_ != nullptr, "standby was promoted away");
  return server_->epoch();
}

JournalShipper::Cursor StandbyReplica::cursor() const noexcept {
  if (!synced_) return {};
  return {generation_, mirror_.size()};
}

crypto::Sha256::Digest StandbyReplica::state_digest() const {
  return crypto::sha256(state_bytes());
}

std::vector<std::uint8_t> StandbyReplica::state_bytes() const {
  GK_ENSURE_MSG(server_ != nullptr, "standby was promoted away");
  GK_ENSURE_MSG(synced_, "standby not yet seeded by a checkpoint");
  GK_ENSURE_MSG(staged_ops_ == 0 && !pending_join_,
                "standby state read mid-batch (staged operations pending)");
  return server_->save_state();
}

const engine::DurableRekeyServer& StandbyReplica::server() const {
  GK_ENSURE_MSG(server_ != nullptr, "standby was promoted away");
  return *server_;
}

StandbyReplica::Offer StandbyReplica::offer(std::span<const std::uint8_t> frame_bytes) {
  GK_ENSURE_MSG(server_ != nullptr, "standby was promoted away");
  ShipFrame frame;
  try {
    frame = decode_frame(frame_bytes);
  } catch (const wire::WireError&) {
    // Torn, flipped, or mis-framed on the wire: nothing of it is applied;
    // ask for a re-anchor instead of guessing.
    ++stats_.corrupt_frames;
    return Offer::kNeedCheckpoint;
  }
  if (frame.term < fenced_term_) {
    ++stats_.stale_frames;
    return Offer::kRejectedStale;
  }
  return frame.kind == ShipFrame::Kind::kCheckpoint ? apply_checkpoint(frame)
                                                    : apply_delta(frame);
}

StandbyReplica::Offer StandbyReplica::apply_checkpoint(const ShipFrame& frame) {
  GK_ENSURE_MSG(starts_with_journal_magic(frame.payload),
                "checkpoint frame does not carry a journal stream");
  // Parse the base record eagerly so a reseed replaces state atomically.
  common::ByteReader in(std::span<const std::uint8_t>(frame.payload).subspan(kMagicSize));
  GK_ENSURE_MSG(in.remaining() >= 1 && in.u8() == 'B',
                "checkpoint frame stream does not begin with a base record");
  const auto base = in.blob();

  // When we were already in lockstep and clean, the shipped base must equal
  // our own serialized state byte for byte — verify instead of restoring
  // (this is the cheap-standby property the whole design leans on). A
  // lagging, corrupted, or mid-batch replica is reseeded outright.
  bool verified_in_place = false;
  if (synced_ && staged_ops_ == 0 && !pending_join_ && !pending_commit_) {
    const auto mine = server_->save_state();
    verified_in_place =
        mine.size() == base.size() && std::equal(mine.begin(), mine.end(), base.begin());
  }
  if (!verified_in_place) server_->restore_state(base);

  mirror_.assign(frame.payload.begin(), frame.payload.end());
  parse_cursor_ = frame.payload.size() - in.remaining();
  synced_ = true;
  stream_term_ = frame.term;
  generation_ = frame.generation;
  fence(frame.term);
  staged_ops_ = 0;
  pending_join_ = false;
  pending_commit_.reset();
  ++stats_.checkpoint_catchups;
  ++stats_.frames_applied;
  apply_records();
  return Offer::kApplied;
}

StandbyReplica::Offer StandbyReplica::apply_delta(const ShipFrame& frame) {
  if (!synced_ || frame.term != stream_term_ || frame.generation != generation_) {
    // Unseeded, a new leader's stream, or a missed compaction: re-anchor.
    ++stats_.gap_frames;
    return Offer::kNeedCheckpoint;
  }
  if (frame.offset > mirror_.size()) {
    ++stats_.gap_frames;  // a frame before this one was lost
    return Offer::kNeedCheckpoint;
  }
  const auto end = frame.offset + frame.payload.size();
  const auto overlap = mirror_.size() - static_cast<std::size_t>(frame.offset);
  // A delayed or retransmitted frame overlaps bytes we already hold; the
  // overlap must match exactly (same stream) or the stream identity lied.
  if (!std::equal(frame.payload.begin(),
                  frame.payload.begin() + static_cast<std::ptrdiff_t>(
                                              std::min<std::size_t>(overlap,
                                                                    frame.payload.size())),
                  mirror_.begin() + static_cast<std::ptrdiff_t>(frame.offset))) {
    ++stats_.gap_frames;
    return Offer::kNeedCheckpoint;
  }
  if (end <= mirror_.size()) {
    ++stats_.duplicate_frames;  // fully known bytes: benign no-op
    return Offer::kApplied;
  }
  mirror_.insert(mirror_.end(),
                 frame.payload.begin() + static_cast<std::ptrdiff_t>(overlap),
                 frame.payload.end());
  ++stats_.frames_applied;
  apply_records();
  return Offer::kApplied;
}

void StandbyReplica::apply_records() {
  // Every complete record beyond the cursor is applied through the same
  // deterministic replay path crash recovery uses. The shipper only cuts
  // frames at record boundaries, so an incomplete tail can only mean the
  // next frame has not arrived yet — stop and wait, never guess.
  while (parse_cursor_ < mirror_.size()) {
    const auto tag = mirror_[parse_cursor_];
    const std::span<const std::uint8_t> body(mirror_.data() + parse_cursor_ + 1,
                                             mirror_.size() - parse_cursor_ - 1);
    common::ByteReader in(body);
    switch (tag) {
      case 'J': {
        if (body.size() < 8 + 1 + 24) return;  // wait for the rest
        workload::MemberProfile profile;
        profile.id = workload::make_member_id(in.u64());
        const auto member_class = in.u8();
        GK_ENSURE_MSG(member_class <= 1, "shipped stream corrupt: bad member class");
        profile.member_class = static_cast<workload::MemberClass>(member_class);
        profile.join_time = in.f64();
        profile.duration = in.f64();
        profile.loss_rate = in.f64();
        GK_ENSURE_MSG(!pending_join_,
                      "shipped stream corrupt: join staged inside an open join");
        const auto registration = server_->join(profile);
        pending_join_ = true;
        pending_grant_ = registration.leaf_id;
        ++staged_ops_;
        break;
      }
      case 'A': {
        if (body.size() < 8) return;
        const auto granted = crypto::make_key_id(in.u64());
        GK_ENSURE_MSG(pending_join_,
                      "shipped stream corrupt: acknowledge without a pending join");
        // The replication analogue of recovery's grant check: the leaf we
        // derived must be the leaf the leader granted, or replay diverged.
        GK_ENSURE_MSG(granted == pending_grant_,
                      "shipped replay diverged: join grant mismatch");
        pending_join_ = false;
        break;
      }
      case 'L': {
        if (body.size() < 8) return;
        server_->leave(workload::make_member_id(in.u64()));
        ++staged_ops_;
        break;
      }
      case 'C': {
        if (body.size() < 8) return;
        const auto epoch = in.u64();
        GK_ENSURE_MSG(!pending_commit_,
                      "shipped stream corrupt: commit begun inside an open commit");
        GK_ENSURE_MSG(epoch == server_->epoch(),
                      "shipped replay diverged: commit epoch "
                          << epoch << " but replica is at " << server_->epoch());
        // Commit eagerly: COMMIT_BEGIN is the leader's durable intent, and
        // replaying it now means a promoted standby already holds the epoch
        // the dead leader never finished (recovery's re-run, pre-paid).
        pending_commit_ = server_->end_epoch();
        pending_commit_->term = applied_term_ != 0 ? applied_term_ : stream_term_;
        staged_ops_ = 0;
        break;
      }
      case 'E': {
        if (body.size() < 8) return;
        const auto epoch = in.u64();
        GK_ENSURE_MSG(pending_commit_.has_value() && pending_commit_->epoch == epoch,
                      "shipped stream corrupt: commit end without matching begin");
        pending_commit_.reset();
        break;
      }
      case 'T': {
        if (body.size() < 8) return;
        const auto term = in.u64();
        GK_ENSURE_MSG(term >= applied_term_,
                      "shipped stream corrupt: term regressed");
        applied_term_ = term;
        break;
      }
      case 'D': {
        if (body.size() < 32) return;
        const auto carried = in.bytes(32);
        GK_ENSURE_MSG(staged_ops_ == 0 && !pending_commit_,
                      "shipped stream corrupt: state digest mid-batch");
        const auto mine = crypto::sha256(server_->save_state());
        // The rolling byte-identity check: divergence surfaces at the first
        // post-commit digest, not at failover.
        GK_ENSURE_MSG(std::equal(mine.begin(), mine.end(), carried.begin()),
                      "shipped replay diverged: state digest mismatch at epoch "
                          << (server_->epoch() - 1));
        ++stats_.digest_checks;
        break;
      }
      case 'B':
        GK_ENSURE_MSG(false,
                      "shipped stream corrupt: base checkpoint inside a delta stream");
        break;
      default:
        GK_ENSURE_MSG(false,
                      "shipped stream corrupt: unknown record tag " << int{tag});
    }
    parse_cursor_ += 1 + (body.size() - in.remaining());
    ++stats_.records_applied;
  }
}

StandbyReplica::Promotion StandbyReplica::promote(
    std::uint64_t term, partition::JournaledServer::Config config) {
  GK_ENSURE_MSG(server_ != nullptr, "standby was promoted away");
  GK_ENSURE_MSG(synced_, "cannot promote an unseeded standby");
  GK_ENSURE_MSG(staged_ops_ == 0 && !pending_join_,
                "promotion with staged uncommitted operations");
  GK_ENSURE_MSG(term > fenced_term_ || (term == fenced_term_ && term > stream_term_),
                "promotion term must fence out the old leader");
  Promotion promotion;
  auto pending = std::move(pending_commit_);
  pending_commit_.reset();
  promotion.leader =
      std::make_unique<partition::JournaledServer>(std::move(server_), config);
  promotion.leader->set_term(term);
  if (pending.has_value()) {
    // The old leader journaled intent and died: this is the epoch it never
    // delivered, regenerated byte-identically, now owned by the new term.
    pending->term = term;
    promotion.pending = std::move(pending);
  }
  return promotion;
}

}  // namespace gk::replica
