#pragma once

#include <cstdint>
#include <span>

namespace gk::replica {

/// One node's claim in a leader election: how much replicated history it
/// holds. `applied_epoch` is the number of commits the node has applied;
/// `journal_offset` breaks ties between nodes at the same epoch (a node
/// that additionally holds staged-but-uncommitted operations is strictly
/// more up to date, exactly like Raft's log-completeness rule).
struct Candidate {
  std::uint64_t node = 0;
  std::uint64_t applied_epoch = 0;
  std::uint64_t journal_offset = 0;
};

/// The outcome every participant computes identically: the winning node and
/// the new fencing term (strictly greater than every term any candidate has
/// seen, so a partitioned ex-leader's records are stale by construction).
struct ElectionResult {
  std::uint64_t leader = 0;
  std::uint64_t term = 0;
};

/// Deterministic election among the given candidates: the most up-to-date
/// node wins — max (applied_epoch, journal_offset), lowest node id breaking
/// exact ties — and the term advances to current_term + 1. Deterministic by
/// design (mirrors the km_election pattern in DCT's dist_sgkey): every
/// replica evaluating the same candidate set reaches the same leader
/// without exchanging votes, which is what makes failover drills
/// reproducible. Throws ContractViolation when no candidates are offered.
[[nodiscard]] ElectionResult elect_leader(std::span<const Candidate> candidates,
                                          std::uint64_t current_term);

}  // namespace gk::replica
