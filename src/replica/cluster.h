#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "engine/server.h"
#include "partition/journaled_server.h"
#include "replica/standby.h"
#include "transport/ship_channel.h"

namespace gk::replica {

/// A replicated key-server deployment: one journaled leader plus N standby
/// replicas, each fed over its own simulated ship channel.
///
/// Every membership operation is journaled by the leader and the journal
/// tail is shipped to all standbys before the call returns — the WAL write
/// and the replication send are one durability event, which is what lets a
/// kill-leader drill assume the standbys saw COMMIT_BEGIN before the leader
/// died. Shipping is cursor-driven: each standby acknowledges how much of
/// the (term, generation) stream it holds, and the leader cuts the frame
/// that advances that cursor to the journal head, so dropped frames are
/// healed by the next ship and torn or flipped frames by an immediate
/// checkpoint retransmit.
///
/// Failover is explicit: kill or partition the leader, then call failover()
/// to run the deterministic election, promote the most up-to-date standby,
/// fence the survivors to the new term, and re-anchor them on the new
/// leader's stream. A partitioned ex-leader stays runnable so split-brain
/// drills can prove its stale commits are refused on every path.
class ReplicaCluster {
 public:
  /// Builds one blank server per replica; all replicas (and the leader)
  /// must be structurally identical, and each standby's state is entirely
  /// overwritten by the first shipped checkpoint.
  using Factory = std::function<std::unique_ptr<engine::DurableRekeyServer>()>;

  struct Config {
    std::size_t standbys = 3;
    partition::JournaledServer::Config journal{};
    /// Seed for the per-channel fault RNGs (tear lengths, flip positions).
    std::uint64_t channel_seed = 0x5eedULL;
  };

  ReplicaCluster(const Factory& factory, Config config);

  // -- leader operations (journaled, then shipped to every standby) --
  engine::Registration join(const workload::MemberProfile& profile);
  void leave(workload::MemberId member);
  /// Commit the epoch on the leader and ship it. If a crash was armed this
  /// throws partition::ServerCrashed *after* shipping the COMMIT_BEGIN
  /// tail — the leader is then dead and failover() must run.
  engine::EpochOutput end_epoch();

  // -- fault injection --
  /// Arm a one-shot transport fault on the next frame shipped to `standby`.
  void arm_channel_fault(std::size_t standby, transport::ShipChannel::Fault fault);
  /// Arm the leader to die mid-commit (after journaling COMMIT_BEGIN).
  void kill_leader_mid_commit();
  /// Isolate the leader: it stays alive but its frames stop reaching the
  /// standbys. The cluster is leaderless until failover() runs.
  void partition_leader();

  /// The partitioned ex-leader commits an epoch on its side of the split
  /// and offers the resulting stream to every standby. After failover() the
  /// verdict must be kRejectedStale on all of them, and the returned output
  /// carries the stale term for member-side fencing tests. The probe
  /// consumes the ex-leader (it steps down after being refused everywhere).
  struct StaleProbe {
    engine::EpochOutput output;
    std::vector<StandbyReplica::Offer> verdicts;
  };
  StaleProbe stale_commit();

  /// Elect and install a new leader from the surviving standbys.
  struct FailoverResult {
    std::uint64_t term = 0;
    std::uint64_t leader_node = 0;
    /// The epoch the dead leader journaled but never delivered, regenerated
    /// by the promoted standby and restamped to the new term. The caller
    /// must multicast it.
    std::optional<engine::EpochOutput> pending;
  };
  FailoverResult failover();

  // -- inspection --
  [[nodiscard]] bool has_leader() const noexcept {
    const common::MutexLock lock(mutex_);
    return leader_ != nullptr;
  }
  [[nodiscard]] const partition::JournaledServer& leader() const;
  [[nodiscard]] partition::JournaledServer& leader();
  [[nodiscard]] std::uint64_t leader_node() const noexcept {
    const common::MutexLock lock(mutex_);
    return leader_node_;
  }
  [[nodiscard]] std::uint64_t term() const noexcept {
    const common::MutexLock lock(mutex_);
    return term_;
  }
  [[nodiscard]] std::size_t standby_count() const noexcept {
    const common::MutexLock lock(mutex_);
    return nodes_.size();
  }
  [[nodiscard]] const StandbyReplica& standby(std::size_t index) const;
  [[nodiscard]] const transport::ShipChannel::Stats& channel_stats(
      std::size_t index) const;
  /// Raise a standby's fence directly (member-notified term, for tests).
  void fence_standby(std::size_t index, std::uint64_t term);
  /// True when every standby's full server state is byte-identical to the
  /// leader's (the replication invariant; only meaningful between epochs).
  [[nodiscard]] bool standbys_identical() const;

 private:
  struct Node {
    std::uint64_t id = 0;
    std::unique_ptr<StandbyReplica> standby;
    transport::ShipChannel channel;
  };

  /// Advance every standby to the journal head (send + deliver + apply).
  void ship() GK_REQUIRES(mutex_);
  /// Deliver queued frames to one standby, retransmitting a checkpoint
  /// whenever it reports a gap or corruption.
  void pump(Node& node) GK_REQUIRES(mutex_);

  /// One coarse lock covers every cluster transition: leader ops, fault
  /// arming, failover, and inspection. A deployed cluster takes membership
  /// calls from front-end threads while a drill (or an operator) runs
  /// failover, and a half-installed leader observed mid-election is exactly
  /// the split-brain state the epoch fencing exists to prevent.
  mutable common::Mutex mutex_;
  Config config_ GK_CONST_AFTER_INIT;
  std::unique_ptr<partition::JournaledServer> leader_ GK_GUARDED_BY(mutex_);
  /// The partitioned ex-leader, while a split-brain drill is running.
  std::unique_ptr<partition::JournaledServer> stale_leader_ GK_GUARDED_BY(mutex_);
  std::uint64_t leader_node_ GK_GUARDED_BY(mutex_) = 0;
  std::uint64_t term_ GK_GUARDED_BY(mutex_) = 0;
  std::vector<Node> nodes_ GK_GUARDED_BY(mutex_);
};

}  // namespace gk::replica
