// Pay-per-view broadcast: the two-partition optimization end to end.
//
// A pay-per-view session (one of the paper's motivating applications) has
// exactly the churn the two-partition scheme targets: lots of browsers who
// leave within minutes, a core of viewers who stay for hours. This example
// runs the Section 3.4 control loop:
//
//   1. start on the one-keytree baseline and collect departure durations,
//   2. fit the two-exponential mixture and ask the analytic model for the
//      best scheme and S-period,
//   3. re-run the same churn under the recommendation and report the
//      measured bandwidth saving.
//
//   $ ./pay_per_view

#include <iostream>

#include "common/rng.h"
#include "partition/adaptive.h"
#include "sim/partition_sim.h"

int main() {
  using namespace gk;

  std::cout << "pay-per-view: adaptive two-partition rekeying\n\n";

  // Audience model: 85% channel surfers (mean stay 2 min), 15% committed
  // viewers (mean stay 2 h). 8192 concurrent viewers, 60 s rekey period.
  constexpr double kShortMean = 120.0;
  constexpr double kLongMean = 7200.0;
  constexpr double kAlpha = 0.85;
  constexpr std::uint64_t kViewers = 8192;

  // --- Phase 1: baseline + measurement. ----------------------------------
  sim::PartitionSimConfig baseline;
  baseline.scheme = partition::SchemeKind::kOneKeyTree;
  baseline.group_size = kViewers;
  baseline.short_mean = kShortMean;
  baseline.long_mean = kLongMean;
  baseline.short_fraction = kAlpha;
  baseline.epochs = 30;
  baseline.warmup_epochs = 5;
  baseline.seed = 1977;
  const auto base_result = sim::run_partition_sim(baseline);
  std::cout << "phase 1 — one-keytree baseline: "
            << base_result.cost_per_epoch.mean() << " encrypted keys/epoch ("
            << base_result.joins_per_epoch.mean() << " joins, "
            << base_result.leaves_per_epoch.mean() << " leaves per epoch)\n";

  // The key server observes completed membership durations as members
  // depart (here: sampled from the same audience model it just served).
  partition::AdaptiveController controller(baseline.rekey_period, baseline.degree);
  Rng observation_rng(42);
  for (int i = 0; i < 30000; ++i) {
    const bool surfer = observation_rng.bernoulli(kAlpha);
    controller.observe_duration(
        observation_rng.exponential(surfer ? kShortMean : kLongMean));
  }

  // --- Phase 2: fit + recommend. ------------------------------------------
  const auto fit = controller.fit();
  std::cout << "\nphase 2 — fitted audience model: Ms=" << fit.short_mean
            << " s, Ml=" << fit.long_mean << " s, alpha=" << fit.short_fraction
            << '\n';
  const auto rec = controller.recommend(static_cast<double>(kViewers));
  std::cout << "recommendation: scheme=" << partition::to_string(rec.scheme)
            << ", K=" << rec.s_period_epochs << " (predicted "
            << rec.predicted_cost << " vs baseline " << rec.baseline_cost
            << " keys/epoch)\n";

  // --- Phase 3: deploy the recommendation. --------------------------------
  auto tuned = baseline;
  tuned.scheme = rec.scheme;
  tuned.s_period_epochs = rec.s_period_epochs;
  tuned.warmup_epochs = rec.s_period_epochs + 6;
  const auto tuned_result = sim::run_partition_sim(tuned);

  const double saving =
      100.0 * (1.0 - tuned_result.cost_per_epoch.mean() /
                         base_result.cost_per_epoch.mean());
  std::cout << "\nphase 3 — deployed " << partition::to_string(rec.scheme)
            << " (K=" << rec.s_period_epochs
            << "): " << tuned_result.cost_per_epoch.mean()
            << " encrypted keys/epoch\n";
  std::cout << "measured key-server bandwidth saving: " << saving
            << "%  (paper's Fig. 4 promises up to ~31% in this regime)\n";
  std::cout << "migrations per epoch: " << tuned_result.migrations_per_epoch.mean()
            << " — the price of not knowing who will stay\n";
  return 0;
}
