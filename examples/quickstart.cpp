// Quickstart: the paper's Fig. 1 walkthrough on a real key tree.
//
// Builds the nine-member, degree-3 logical key hierarchy from Section 2.1,
// runs the join and departure procedures, and shows — with actual
// ChaCha20+HMAC key wrapping — that members extract the new group key from
// the multicast rekey message while the departed member cannot.
//
//   $ ./quickstart

#include <iostream>
#include <map>

#include "common/rng.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"

int main() {
  using namespace gk;
  using workload::make_member_id;

  std::cout << "groupkey quickstart — LKH join/leave (paper Fig. 1)\n\n";

  // --- Build the group: U1..U9 under a degree-3 tree. -------------------
  lkh::KeyTree tree(/*degree=*/3, Rng(2003));
  std::map<std::uint64_t, lkh::KeyRing> members;
  for (std::uint64_t u = 1; u <= 8; ++u) {
    const auto grant = tree.insert(make_member_id(u));
    members.emplace(u, lkh::KeyRing(make_member_id(u), grant.leaf_id,
                                    grant.individual_key));
  }
  auto setup = tree.commit(0);
  for (auto& [u, ring] : members) ring.process(setup);
  std::cout << "session start: 8 members, initial rekey message carried "
            << setup.cost() << " encrypted keys\n";

  // --- Join procedure (U9 arrives). --------------------------------------
  const auto grant9 = tree.insert(make_member_id(9));
  members.emplace(9, lkh::KeyRing(make_member_id(9), grant9.leaf_id,
                                  grant9.individual_key));
  const auto join_msg = tree.commit(1);
  for (auto& [u, ring] : members) ring.process(join_msg);

  std::cout << "\nU9 joins. Rekey message: " << join_msg.cost()
            << " encrypted keys (paper: 4 — K1-9 under K1-8, K789 under K78,"
               " and both under K9)\n";
  for (const auto u : {1ULL, 8ULL, 9ULL})
    std::cout << "  U" << u << " holds current group key: " << std::boolalpha
              << members.at(u).holds(tree.root_id(), tree.root_key().version) << '\n';

  // --- Departure procedure (U4 leaves). ----------------------------------
  auto evicted = std::move(members.at(4));
  members.erase(4);
  tree.remove(make_member_id(4));
  const auto leave_msg = tree.commit(2);
  for (auto& [u, ring] : members) ring.process(leave_msg);
  evicted.process(leave_msg);  // the leaver eavesdrops on the multicast

  std::cout << "\nU4 departs. Rekey message: " << leave_msg.cost()
            << " encrypted keys (paper: 5 — K'456 under K5,K6; K'1-9 under"
               " K123,K'456,K789)\n";
  std::cout << "  survivors hold the new group key: ";
  bool all = true;
  for (const auto& [u, ring] : members)
    all = all && ring.holds(tree.root_id(), tree.root_key().version);
  std::cout << std::boolalpha << all << '\n';
  std::cout << "  departed U4 can decrypt the new group key: "
            << evicted.holds(tree.root_id(), tree.root_key().version)
            << "  (forward confidentiality)\n";

  // --- Batched rekeying (Section 2.1.1). ---------------------------------
  tree.remove(make_member_id(7));
  tree.remove(make_member_id(1));
  const auto batch_msg = tree.commit(3);
  std::cout << "\nBatching two departures into one periodic rekey costs "
            << batch_msg.cost() << " keys — overlapping paths are refreshed once.\n";
  std::cout << "\nGroup key id " << crypto::raw(tree.root_id()) << " is now at version "
            << tree.root_key().version << "; " << tree.size()
            << " members remain.\n";
  return 0;
}
