// Capstone: an actual secure multicast data stream on top of the rekeying
// machinery. The sender encrypts application payloads with ChaCha20 under
// the current group DEK (per-epoch nonce discipline); members decrypt with
// the DEK recovered from rekey messages. The demo shows:
//
//   * everyone present decrypts the stream,
//   * a newly joined member cannot decrypt chunks sent before its join
//     (backward confidentiality),
//   * an evicted member decrypts nothing after its departure epoch
//     (forward confidentiality),
// all with real key material end to end.
//
//   $ ./secure_stream

#include <array>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/kdf.h"
#include "lkh/key_ring.h"
#include "partition/factory.h"

namespace {

using namespace gk;

/// A data chunk multicast to the group: ciphertext under the epoch's DEK.
struct Chunk {
  std::uint32_t dek_version = 0;
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> ciphertext;
};

/// Expand the 128-bit DEK to a ChaCha20 key (both sides derive alike).
std::array<std::uint8_t, 32> stream_key(const crypto::Key128& dek) {
  const auto k0 = crypto::derive_key(dek, "stream", 0);
  const auto k1 = crypto::derive_key(dek, "stream", 1);
  std::array<std::uint8_t, 32> key{};
  std::copy(k0.bytes().begin(), k0.bytes().end(), key.begin());
  std::copy(k1.bytes().begin(), k1.bytes().end(), key.begin() + 16);
  return key;
}

Chunk encrypt_chunk(const crypto::VersionedKey& dek, const std::string& text,
                    std::uint64_t sequence) {
  Chunk chunk;
  chunk.dek_version = dek.version;
  for (int i = 0; i < 8; ++i)
    chunk.nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sequence >> (8 * i));
  crypto::ChaCha20 cipher(stream_key(dek.key), chunk.nonce);
  chunk.ciphertext.assign(text.begin(), text.end());
  cipher.crypt(chunk.ciphertext);
  return chunk;
}

std::optional<std::string> decrypt_chunk(const lkh::KeyRing& ring,
                                         crypto::KeyId dek_id, const Chunk& chunk) {
  const auto dek = ring.lookup(dek_id);
  if (!dek.has_value() || dek->version != chunk.dek_version) return std::nullopt;
  crypto::ChaCha20 cipher(stream_key(dek->key), chunk.nonce);
  auto plain = chunk.ciphertext;
  cipher.crypt(plain);
  return std::string(plain.begin(), plain.end());
}

}  // namespace

int main() {
  std::cout << "secure multicast stream over TT two-partition rekeying\n\n";

  auto server = partition::make_server(partition::SchemeKind::kTt, 3, 2, Rng(777));
  std::map<std::uint64_t, lkh::KeyRing> members;
  auto join = [&](std::uint64_t id) {
    workload::MemberProfile profile;
    profile.id = workload::make_member_id(id);
    const auto reg = server->join(profile);
    members.emplace(id, lkh::KeyRing(profile.id, reg.leaf_id, reg.individual_key));
  };

  // Epoch 0: members 1..5 join.
  for (std::uint64_t id = 1; id <= 5; ++id) join(id);
  auto out = server->end_epoch();
  for (auto& [id, ring] : members) ring.process(out.message);

  std::uint64_t sequence = 0;
  const auto chunk1 =
      encrypt_chunk(server->group_key(), "market data tick #1", sequence++);
  std::cout << "epoch 0 broadcast: \"market data tick #1\"\n";
  for (const auto& [id, ring] : members) {
    const auto plain = decrypt_chunk(ring, server->group_key_id(), chunk1);
    std::cout << "  member " << id << ": "
              << (plain.has_value() ? *plain : std::string("<cannot decrypt>")) << '\n';
  }

  // Epoch 1: member 6 joins; member 3 leaves.
  join(6);
  auto evicted = std::move(members.at(3));
  members.erase(3);
  server->leave(workload::make_member_id(3));
  out = server->end_epoch();
  for (auto& [id, ring] : members) ring.process(out.message);
  evicted.process(out.message);  // keeps listening to the multicast

  const auto chunk2 =
      encrypt_chunk(server->group_key(), "market data tick #2", sequence++);
  std::cout << "\nepoch 1 (member 6 joined, member 3 evicted): \"market data tick #2\"\n";
  for (const auto& [id, ring] : members) {
    const auto plain = decrypt_chunk(ring, server->group_key_id(), chunk2);
    std::cout << "  member " << id << ": "
              << (plain.has_value() ? *plain : std::string("<cannot decrypt>")) << '\n';
  }
  const auto evicted_view = decrypt_chunk(evicted, server->group_key_id(), chunk2);
  std::cout << "  evicted 3: "
            << (evicted_view.has_value() ? *evicted_view
                                         : std::string("<cannot decrypt>"))
            << "   <- forward confidentiality\n";

  const auto newcomer_history = decrypt_chunk(members.at(6), server->group_key_id(),
                                              chunk1);
  std::cout << "  member 6 reading the epoch-0 chunk: "
            << (newcomer_history.has_value() ? *newcomer_history
                                             : std::string("<cannot decrypt>"))
            << "   <- backward confidentiality\n";

  std::cout << "\ngroup key version " << server->group_key().version << ", "
            << server->size() << " members; every rekey cost above was "
            << "carried by real wrapped keys.\n";
  return 0;
}
