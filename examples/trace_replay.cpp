// Trace replay: run every rekeying scheme against the same recorded
// membership trace and compare key-server bandwidth.
//
// Usage:
//   trace_replay                 generate a demo trace, replay it
//   trace_replay <trace.csv>     replay a recorded trace (see trace_io.h)
//   trace_replay --record <file> generate the demo trace and save it first
//
// Traces are plain CSV, so real session logs (e.g. MBone-style membership
// dumps) can be converted and replayed against QT/TT/PT directly.

#include <iostream>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "partition/factory.h"
#include "workload/membership.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

namespace {

using namespace gk;

workload::MembershipTrace demo_trace() {
  auto durations =
      std::make_shared<workload::TwoClassExponential>(180.0, 10800.0, 0.8);
  auto losses = std::make_shared<workload::TwoPointLoss>(0.02, 0.2, 0.25);
  workload::MembershipGenerator generator(durations, losses, 2048, Rng(8711));
  return workload::MembershipTrace::generate(generator, 60.0, 40);
}

double replay(const workload::MembershipTrace& trace, partition::SchemeKind scheme,
              unsigned k) {
  auto server = partition::make_server(scheme, 4, k, Rng(5150));
  for (const auto& member : trace.initial_members()) (void)server->join(member);
  (void)server->end_epoch();

  RunningStats cost;
  const std::size_t warmup = k + 5;
  for (const auto& epoch : trace.epochs()) {
    // Incumbent departures first (vacancy reuse), same-epoch churn after.
    std::vector<workload::MemberId> churn;
    for (const auto id : epoch.leaves) {
      const bool joined_now =
          std::any_of(epoch.joins.begin(), epoch.joins.end(),
                      [id](const auto& p) { return p.id == id; });
      if (joined_now)
        churn.push_back(id);
      else
        server->leave(id);
    }
    for (const auto& profile : epoch.joins) (void)server->join(profile);
    for (const auto id : churn) server->leave(id);

    const auto out = server->end_epoch();
    if (epoch.index >= warmup) cost.add(static_cast<double>(out.multicast_cost()));
  }
  return cost.mean();
}

}  // namespace

int main(int argc, char** argv) {
  workload::MembershipTrace trace = demo_trace();
  if (argc >= 2 && std::string(argv[1]) == "--record") {
    const std::string path = argc >= 3 ? argv[2] : "demo_trace.csv";
    workload::save_trace(trace, path);
    std::cout << "recorded demo trace to " << path << '\n';
  } else if (argc >= 2) {
    trace = workload::load_trace(argv[1]);
    std::cout << "loaded trace from " << argv[1] << '\n';
  }

  std::cout << "trace: " << trace.initial_members().size() << " initial members, "
            << trace.epochs().size() << " epochs of " << trace.rekey_period()
            << " s, " << trace.mean_joins_per_epoch() << " joins/epoch, "
            << trace.mean_leaves_per_epoch() << " leaves/epoch\n\n";

  const double one = replay(trace, partition::SchemeKind::kOneKeyTree, 0);
  std::cout << "one-keytree : " << one << " keys/epoch\n";
  for (const unsigned k : {5u, 10u}) {
    const double qt = replay(trace, partition::SchemeKind::kQt, k);
    const double tt = replay(trace, partition::SchemeKind::kTt, k);
    std::cout << "QT (K=" << k << ")   : " << qt << " keys/epoch  ("
              << 100.0 * (1.0 - qt / one) << "% vs baseline)\n";
    std::cout << "TT (K=" << k << ")   : " << tt << " keys/epoch  ("
              << 100.0 * (1.0 - tt / one) << "% vs baseline)\n";
  }
  const double pt = replay(trace, partition::SchemeKind::kPt, 0);
  std::cout << "PT (oracle) : " << pt << " keys/epoch  ("
            << 100.0 * (1.0 - pt / one) << "% vs baseline)\n";
  return 0;
}
