// Interactive key-server console: drive any registered rekeying policy by
// hand.
//
// A small operator REPL over engine::CoreServer, useful for exploring how
// rekey messages are shaped. Reads commands from stdin:
//
//   join <id>            stage a join (short class)
//   joinlong <id>        stage a join (long class; only PT cares)
//   leave <id>           stage a departure
//   commit               end the rekey period, print the message summary
//   stats                group/partition sizes and key version
//   paths <id>           the member's key path (node ids)
//   quit
//
// Usage: keyserver_repl [scheme] [degree] [K]
// where scheme is any name from partition::registered_policies()
// ("one-tree", "qt", "tt", "pt", "oft-tt", "elk-tt", "loss-bin", "batch").
// Also accepts a command script on stdin, e.g.:
//   printf 'join 1\njoin 2\ncommit\nleave 1\ncommit\nquit\n' | ./keyserver_repl tt 3 2

#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "partition/factory.h"

namespace {

using namespace gk;

workload::MemberProfile profile_of(std::uint64_t id, workload::MemberClass cls) {
  workload::MemberProfile p;
  p.id = workload::make_member_id(id);
  p.member_class = cls;
  return p;
}

void print_stats(const engine::CoreServer& server) {
  std::cout << "members=" << server.size() << " group-key-id="
            << crypto::raw(server.group_key_id())
            << " version=" << server.group_key().version;
  const auto census = server.core().partition_census();
  if (server.core().policy().info().split_partitions && !census.empty()) {
    std::cout << " S=" << census[0];
    std::size_t l = 0;
    for (std::size_t p = 1; p < census.size(); ++p) l += census[p];
    std::cout << " L=" << l;
  } else if (census.size() > 1) {
    std::cout << " partitions=";
    for (std::size_t p = 0; p < census.size(); ++p)
      std::cout << (p == 0 ? "" : "/") << census[p];
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scheme = argc > 1 ? argv[1] : "one-tree";
  partition::SchemeConfig config;
  config.degree = argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 4;
  config.s_period_epochs = argc > 3 ? static_cast<unsigned>(std::stoul(argv[3])) : 10;

  std::unique_ptr<engine::CoreServer> server;
  try {
    server = partition::make_server(scheme, config, Rng(20030519));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nregistered schemes:";
    for (const auto& name : partition::registered_policies()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 1;
  }
  std::cout << "scheme=" << scheme << " degree=" << config.degree
            << " K=" << config.s_period_epochs
            << "\ncommands: join/joinlong/leave <id>, commit, stats, "
            << "paths <id>, quit\n";

  std::uint64_t epoch = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    try {
      if (command == "join" || command == "joinlong") {
        std::uint64_t id = 0;
        in >> id;
        const auto cls = command == "join" ? workload::MemberClass::kShort
                                           : workload::MemberClass::kLong;
        const auto reg = server->join(profile_of(id, cls));
        std::cout << "staged join " << id << " leaf-id=" << crypto::raw(reg.leaf_id)
                  << " key=" << reg.individual_key.hex() << "\n";
      } else if (command == "leave") {
        std::uint64_t id = 0;
        in >> id;
        server->leave(workload::make_member_id(id));
        std::cout << "staged leave " << id << '\n';
      } else if (command == "commit") {
        const auto out = server->end_epoch();
        std::cout << "epoch " << out.epoch << ": " << out.multicast_cost()
                  << " encrypted keys multicast (" << out.joins << " joins, "
                  << out.s_departures + out.l_departures << " leaves, "
                  << out.migrations << " migrations)\n";
        ++epoch;
      } else if (command == "stats") {
        print_stats(*server);
      } else if (command == "paths") {
        std::uint64_t id = 0;
        in >> id;
        std::cout << "member " << id << " path:";
        for (const auto node : server->member_path(workload::make_member_id(id)))
          std::cout << ' ' << crypto::raw(node);
        std::cout << '\n';
      } else if (command == "quit" || command == "exit") {
        break;
      } else if (!command.empty() && command[0] != '#') {
        std::cout << "unknown command: " << command << '\n';
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << '\n';
    }
  }
  std::cout << "bye (" << epoch << " epochs committed)\n";
  return 0;
}
