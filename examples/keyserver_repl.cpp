// Interactive key-server console: drive any registered rekeying policy by
// hand.
//
// A small operator REPL over engine::CoreServer, useful for exploring how
// rekey messages are shaped. Reads commands from stdin:
//
//   join <id>            stage a join (short class)
//   joinlong <id>        stage a join (long class; only PT cares)
//   leave <id>           stage a departure
//   commit               end the rekey period, print the message summary
//   stats                group/partition sizes and key version
//   paths <id>           the member's key path (node ids)
//   serve [port]         host this group over the network daemon (gkd)
//   quit
//
// `serve` hands the REPL's engine to a net::Server and runs its epoll loop
// on a background thread. From then on every REPL command is posted onto
// the loop thread, so the interactive path and the socket path execute
// through the same single-threaded daemon: a `commit` typed here fans the
// rekey record out to every connected network subscriber, and a join that
// arrives over TCP shows up in `stats` typed here.
//
// Usage: keyserver_repl [scheme] [degree] [K]
// where scheme is any name from partition::registered_policies()
// ("one-tree", "qt", "tt", "pt", "oft-tt", "elk-tt", "loss-bin", "batch").
// Also accepts a command script on stdin, e.g.:
//   printf 'join 1\njoin 2\ncommit\nleave 1\ncommit\nquit\n' | ./keyserver_repl tt 3 2

#include <functional>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "common/rng.h"
#include "net/server.h"
#include "partition/factory.h"

namespace {

using namespace gk;

workload::MemberProfile profile_of(std::uint64_t id, workload::MemberClass cls) {
  workload::MemberProfile p;
  p.id = workload::make_member_id(id);
  p.member_class = cls;
  return p;
}

void print_stats(const engine::CoreServer& server) {
  std::cout << "members=" << server.size() << " group-key-id="
            << crypto::raw(server.group_key_id())
            << " version=" << server.group_key().version;
  const auto census = server.core().partition_census();
  if (server.core().policy().info().split_partitions && !census.empty()) {
    std::cout << " S=" << census[0];
    std::size_t l = 0;
    for (std::size_t p = 1; p < census.size(); ++p) l += census[p];
    std::cout << " L=" << l;
  } else if (census.size() > 1) {
    std::cout << " partitions=";
    for (std::size_t p = 0; p < census.size(); ++p)
      std::cout << (p == 0 ? "" : "/") << census[p];
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scheme = argc > 1 ? argv[1] : "one-tree";
  partition::SchemeConfig config;
  config.degree = argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 4;
  config.s_period_epochs = argc > 3 ? static_cast<unsigned>(std::stoul(argv[3])) : 10;

  std::unique_ptr<engine::CoreServer> server;
  try {
    server = partition::make_server(scheme, config, Rng(20030519));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nregistered schemes:";
    for (const auto& name : partition::registered_policies()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 1;
  }
  std::cout << "scheme=" << scheme << " degree=" << config.degree
            << " K=" << config.s_period_epochs
            << "\ncommands: join/joinlong/leave <id>, commit, stats, "
            << "paths <id>, serve [port], quit\n";

  // The REPL keeps a raw handle to its engine; once `serve` moves ownership
  // into the daemon the object itself stays put, but every access must then
  // go through exec() so it happens on the daemon's loop thread.
  engine::CoreServer* core = server.get();
  std::unique_ptr<net::Server> daemon;
  std::thread loop;

  const auto exec = [&](const std::function<void()>& op) {
    if (!daemon) {
      op();
      return;
    }
    std::promise<void> done;
    daemon->post([&] {
      try {
        op();
        done.set_value();
      } catch (...) {
        done.set_exception(std::current_exception());
      }
    });
    done.get_future().get();
  };

  std::uint64_t epoch = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    try {
      if (command == "join" || command == "joinlong") {
        std::uint64_t id = 0;
        in >> id;
        const auto cls = command == "join" ? workload::MemberClass::kShort
                                           : workload::MemberClass::kLong;
        exec([&] {
          const auto reg = core->join(profile_of(id, cls));
          std::cout << "staged join " << id << " leaf-id=" << crypto::raw(reg.leaf_id)
                    << " key=" << reg.individual_key.hex() << "\n";
        });
      } else if (command == "leave") {
        std::uint64_t id = 0;
        in >> id;
        exec([&] {
          core->leave(workload::make_member_id(id));
          std::cout << "staged leave " << id << '\n';
        });
      } else if (command == "commit") {
        exec([&] {
          if (daemon) {
            // The daemon's commit is the REPL's commit: one end_epoch, one
            // encode, fanned to every connected subscriber.
            const auto committed = daemon->commit_epoch();
            const auto& counters = daemon->stats().counters;
            std::cout << "epoch " << committed << " committed; fanned to "
                      << counters.subscribers << " subscribers ("
                      << counters.evictions << " evictions so far)\n";
          } else {
            const auto out = server->end_epoch();
            std::cout << "epoch " << out.epoch << ": " << out.multicast_cost()
                      << " encrypted keys multicast (" << out.joins << " joins, "
                      << out.s_departures + out.l_departures << " leaves, "
                      << out.migrations << " migrations)\n";
          }
          ++epoch;
        });
      } else if (command == "stats") {
        exec([&] {
          print_stats(*core);
          if (daemon) {
            const auto& stats = daemon->stats();
            std::cout << "serving: subscribers=" << stats.counters.subscribers
                      << " epochs=" << stats.counters.epochs_committed
                      << " resyncs=" << stats.counters.resyncs
                      << " evictions=" << stats.counters.evictions
                      << " connections=" << stats.accepted_connections << '\n';
          }
        });
      } else if (command == "paths") {
        std::uint64_t id = 0;
        in >> id;
        exec([&] {
          std::cout << "member " << id << " path:";
          for (const auto node : core->member_path(workload::make_member_id(id)))
            std::cout << ' ' << crypto::raw(node);
          std::cout << '\n';
        });
      } else if (command == "serve") {
        if (daemon) {
          std::cout << "already serving\n";
          continue;
        }
        net::ServerConfig net_config;
        in >> net_config.port;  // stays 0 (ephemeral) if absent
        net::Server* built = nullptr;
        try {
          daemon = std::make_unique<net::Server>(std::move(server), net_config);
          built = daemon.get();
          const auto port = daemon->listen();
          std::cout << "serving " << scheme << " on " << net_config.bind_address
                    << ":" << port << '\n';
        } catch (const std::exception& e) {
          // listen() failed: the engine lives on inside the dead daemon, so
          // the REPL cannot continue against it; bail out loudly.
          std::cerr << "serve failed: " << e.what() << '\n';
          return 1;
        }
        loop = std::thread([built] { built->run(); });
      } else if (command == "quit" || command == "exit") {
        break;
      } else if (!command.empty() && command[0] != '#') {
        std::cout << "unknown command: " << command << '\n';
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << '\n';
    }
  }
  if (daemon) {
    daemon->stop();
    loop.join();
  }
  std::cout << "bye (" << epoch << " epochs committed)\n";
  return 0;
}
