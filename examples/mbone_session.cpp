// MBone-style session replay: heavy-tailed membership and the OFT variant.
//
// Almeroth & Ammar's MBone study — the measurement basis for the paper's
// two-partition idea — found sessions whose mean membership duration was
// hours while the median was minutes. This example:
//
//   1. generates a Zipf-duration session and reports its mean/median skew,
//   2. replays the same churn against the one-keytree LKH baseline and the
//      TT two-partition scheme to show the savings carry over from the
//      exponential-mixture model to a heavy-tailed workload,
//   3. runs the same style of churn against a one-way function tree (OFT),
//      demonstrating the paper's remark that the optimizations' substrate
//      generalizes: OFT departures cost ~log2 N instead of d*logd N.
//
//   $ ./mbone_session

#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "oft/oft_tree.h"
#include "partition/factory.h"
#include "workload/duration_model.h"
#include "workload/membership.h"
#include "workload/trace.h"

int main() {
  using namespace gk;

  std::cout << "mbone session replay\n\n";

  // --- 1. Heavy-tailed audience. ------------------------------------------
  auto durations = std::make_shared<workload::ZipfDuration>(
      /*unit=*/30.0, /*max_rank=*/20000, /*exponent=*/1.1,
      /*class_threshold=*/3600.0);
  {
    Rng rng(7);
    Histogram hist(0.0, 240.0 * 3600.0, 200000);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) {
      const auto s = durations->sample(rng);
      hist.add(s.duration);
      stats.add(s.duration);
    }
    std::cout << "audience durations: mean " << stats.mean() / 60.0
              << " min, median " << hist.quantile(0.5) / 60.0
              << " min  (Almeroth-Ammar: mean ~5 h vs median ~6.5 min)\n";
  }

  // --- 2. Replay under one-keytree vs TT. ----------------------------------
  auto losses = std::make_shared<workload::UniformLoss>(0.0);
  workload::MembershipGenerator generator(durations, losses, 4096, Rng(11));
  const auto trace = workload::MembershipTrace::generate(generator, 60.0, 40);
  std::cout << "\ntrace: " << trace.epochs().size() << " epochs, "
            << trace.mean_joins_per_epoch() << " joins/epoch, "
            << trace.mean_leaves_per_epoch() << " leaves/epoch at N=4096\n";

  auto replay = [&](partition::SchemeKind scheme, unsigned k) {
    auto server = partition::make_server(scheme, 4, k, Rng(13));
    for (const auto& member : trace.initial_members()) (void)server->join(member);
    (void)server->end_epoch();
    RunningStats cost;
    std::size_t epoch_index = 0;
    for (const auto& epoch : trace.epochs()) {
      for (const auto id : epoch.leaves)
        if (std::none_of(epoch.joins.begin(), epoch.joins.end(),
                         [id](const auto& p) { return p.id == id; }))
          server->leave(id);
      for (const auto& profile : epoch.joins) (void)server->join(profile);
      for (const auto id : epoch.leaves)
        if (std::any_of(epoch.joins.begin(), epoch.joins.end(),
                        [id](const auto& p) { return p.id == id; }))
          server->leave(id);
      const auto out = server->end_epoch();
      if (epoch_index++ >= 15) cost.add(static_cast<double>(out.multicast_cost()));
    }
    return cost.mean();
  };

  const double one = replay(partition::SchemeKind::kOneKeyTree, 0);
  const double tt = replay(partition::SchemeKind::kTt, 10);
  std::cout << "one-keytree: " << one << " keys/epoch;  TT (K=10): " << tt
            << " keys/epoch  -> " << 100.0 * (1.0 - tt / one)
            << "% saving on a heavy-tailed (non-exponential) audience\n";

  // --- 3. OFT substrate. -----------------------------------------------------
  {
    oft::OftTree tree(Rng(17));
    lkh::RekeyMessage scratch;
    for (std::uint64_t i = 0; i < 4096; ++i) {
      scratch.wraps.clear();
      (void)tree.join(workload::make_member_id(i), scratch);
    }
    RunningStats leave_cost;
    for (std::uint64_t i = 0; i < 64; ++i) {
      lkh::RekeyMessage message;
      tree.leave(workload::make_member_id(i * 13 % 4096), message);
      leave_cost.add(static_cast<double>(message.cost()));
    }
    std::cout << "\nOFT substrate at N=4096: departure costs " << leave_cost.mean()
              << " wrapped (blinded) keys on average — ~log2 N = 12, versus "
                 "d*logd N = 24 for degree-4 LKH.\n";
  }
  return 0;
}
