// Satellite news feed: loss-homogenized key trees plus WKA-BKR transport.
//
// A broadcaster serves two receiver populations at once — wired
// subscribers with clean links (~2% loss) and mobile/satellite receivers
// with noisy ones (~20% loss). With a single key tree, every key the noisy
// receivers share with the clean ones inherits their replication.
// Section 4's fix: bin members into per-loss-class trees under one group
// key. This example measures the rekey bandwidth of the three
// organizations of Fig. 6 with the real WKA-BKR protocol over a simulated
// lossy channel, then repeats under proactive FEC (Section 4.4).
//
//   $ ./satellite_feed

#include <iostream>

#include "sim/transport_sim.h"

namespace {

const char* name_of(gk::sim::TransportSimConfig::Organization org) {
  using Org = gk::sim::TransportSimConfig::Organization;
  switch (org) {
    case Org::kOneTree: return "one key tree         ";
    case Org::kRandomSplit: return "two random trees     ";
    case Org::kLossHomogenized: return "two loss-homogenized ";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace gk;
  using Org = sim::TransportSimConfig::Organization;
  using Proto = sim::TransportSimConfig::Protocol;

  std::cout << "satellite feed: 4096 receivers, 25% on high-loss links "
               "(ph=20%, pl=2%), 16 departures per 60 s epoch\n";

  for (const auto proto : {Proto::kWkaBkr, Proto::kProactiveFec}) {
    std::cout << "\n-- transport: "
              << (proto == Proto::kWkaBkr ? "WKA-BKR" : "proactive FEC (RS over GF(256))")
              << " --\n";
    double baseline = 0.0;
    for (const auto org : {Org::kOneTree, Org::kRandomSplit, Org::kLossHomogenized}) {
      sim::TransportSimConfig config;
      config.organization = org;
      config.protocol = proto;
      config.group_size = 4096;
      config.departures_per_epoch = 16;
      config.high_fraction = 0.25;
      config.low_loss = 0.02;
      config.high_loss = 0.20;
      config.epochs = 12;
      config.warmup_epochs = 3;
      config.seed = 1999;
      const auto result = sim::run_transport_sim(config);
      if (org == Org::kOneTree) baseline = result.keys_per_epoch.mean();
      const double delta =
          100.0 * (1.0 - result.keys_per_epoch.mean() / baseline);
      std::cout << "  " << name_of(org) << ": "
                << result.keys_per_epoch.mean() << " key transmissions/epoch, "
                << result.rounds_per_epoch.mean() << " rounds";
      if (org != Org::kOneTree)
        std::cout << "  (" << (delta >= 0 ? "-" : "+")
                  << (delta >= 0 ? delta : -delta) << "% vs one tree)";
      if (!result.all_delivered) std::cout << "  [DELIVERY INCOMPLETE]";
      std::cout << '\n';
    }
  }

  std::cout << "\nTakeaway (paper Sections 4.3-4.4): splitting trees at random "
               "buys nothing,\nbut splitting by loss rate isolates the noisy "
               "receivers' replication —\nand FEC transports benefit even more "
               "than WKA-BKR.\n";
  return 0;
}
