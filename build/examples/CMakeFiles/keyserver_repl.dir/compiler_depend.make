# Empty compiler generated dependencies file for keyserver_repl.
# This may be replaced when dependencies are built.
