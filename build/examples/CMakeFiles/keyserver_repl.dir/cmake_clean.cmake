file(REMOVE_RECURSE
  "CMakeFiles/keyserver_repl.dir/keyserver_repl.cpp.o"
  "CMakeFiles/keyserver_repl.dir/keyserver_repl.cpp.o.d"
  "keyserver_repl"
  "keyserver_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyserver_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
