# Empty dependencies file for mbone_session.
# This may be replaced when dependencies are built.
