file(REMOVE_RECURSE
  "CMakeFiles/mbone_session.dir/mbone_session.cpp.o"
  "CMakeFiles/mbone_session.dir/mbone_session.cpp.o.d"
  "mbone_session"
  "mbone_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbone_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
