# Empty compiler generated dependencies file for secure_stream.
# This may be replaced when dependencies are built.
