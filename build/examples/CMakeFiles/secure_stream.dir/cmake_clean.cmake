file(REMOVE_RECURSE
  "CMakeFiles/secure_stream.dir/secure_stream.cpp.o"
  "CMakeFiles/secure_stream.dir/secure_stream.cpp.o.d"
  "secure_stream"
  "secure_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
