file(REMOVE_RECURSE
  "CMakeFiles/pay_per_view.dir/pay_per_view.cpp.o"
  "CMakeFiles/pay_per_view.dir/pay_per_view.cpp.o.d"
  "pay_per_view"
  "pay_per_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pay_per_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
