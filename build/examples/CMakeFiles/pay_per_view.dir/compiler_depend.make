# Empty compiler generated dependencies file for pay_per_view.
# This may be replaced when dependencies are built.
