file(REMOVE_RECURSE
  "libgk_workload.a"
)
