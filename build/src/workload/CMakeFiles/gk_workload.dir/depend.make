# Empty dependencies file for gk_workload.
# This may be replaced when dependencies are built.
