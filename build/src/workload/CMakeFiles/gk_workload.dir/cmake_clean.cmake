file(REMOVE_RECURSE
  "CMakeFiles/gk_workload.dir/duration_model.cpp.o"
  "CMakeFiles/gk_workload.dir/duration_model.cpp.o.d"
  "CMakeFiles/gk_workload.dir/loss_assignment.cpp.o"
  "CMakeFiles/gk_workload.dir/loss_assignment.cpp.o.d"
  "CMakeFiles/gk_workload.dir/membership.cpp.o"
  "CMakeFiles/gk_workload.dir/membership.cpp.o.d"
  "CMakeFiles/gk_workload.dir/trace.cpp.o"
  "CMakeFiles/gk_workload.dir/trace.cpp.o.d"
  "CMakeFiles/gk_workload.dir/trace_io.cpp.o"
  "CMakeFiles/gk_workload.dir/trace_io.cpp.o.d"
  "libgk_workload.a"
  "libgk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
