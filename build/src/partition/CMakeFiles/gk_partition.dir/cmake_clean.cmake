file(REMOVE_RECURSE
  "CMakeFiles/gk_partition.dir/adaptive.cpp.o"
  "CMakeFiles/gk_partition.dir/adaptive.cpp.o.d"
  "CMakeFiles/gk_partition.dir/elk_tt_server.cpp.o"
  "CMakeFiles/gk_partition.dir/elk_tt_server.cpp.o.d"
  "CMakeFiles/gk_partition.dir/factory.cpp.o"
  "CMakeFiles/gk_partition.dir/factory.cpp.o.d"
  "CMakeFiles/gk_partition.dir/group_key.cpp.o"
  "CMakeFiles/gk_partition.dir/group_key.cpp.o.d"
  "CMakeFiles/gk_partition.dir/oft_tt_server.cpp.o"
  "CMakeFiles/gk_partition.dir/oft_tt_server.cpp.o.d"
  "CMakeFiles/gk_partition.dir/one_keytree_server.cpp.o"
  "CMakeFiles/gk_partition.dir/one_keytree_server.cpp.o.d"
  "CMakeFiles/gk_partition.dir/pt_server.cpp.o"
  "CMakeFiles/gk_partition.dir/pt_server.cpp.o.d"
  "CMakeFiles/gk_partition.dir/qt_server.cpp.o"
  "CMakeFiles/gk_partition.dir/qt_server.cpp.o.d"
  "CMakeFiles/gk_partition.dir/tt_server.cpp.o"
  "CMakeFiles/gk_partition.dir/tt_server.cpp.o.d"
  "libgk_partition.a"
  "libgk_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
