file(REMOVE_RECURSE
  "libgk_partition.a"
)
