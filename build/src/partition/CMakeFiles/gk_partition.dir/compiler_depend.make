# Empty compiler generated dependencies file for gk_partition.
# This may be replaced when dependencies are built.
