file(REMOVE_RECURSE
  "libgk_analytic.a"
)
