# Empty compiler generated dependencies file for gk_analytic.
# This may be replaced when dependencies are built.
