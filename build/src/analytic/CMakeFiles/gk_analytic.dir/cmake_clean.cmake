file(REMOVE_RECURSE
  "CMakeFiles/gk_analytic.dir/batch_cost.cpp.o"
  "CMakeFiles/gk_analytic.dir/batch_cost.cpp.o.d"
  "CMakeFiles/gk_analytic.dir/fec_model.cpp.o"
  "CMakeFiles/gk_analytic.dir/fec_model.cpp.o.d"
  "CMakeFiles/gk_analytic.dir/multisend_model.cpp.o"
  "CMakeFiles/gk_analytic.dir/multisend_model.cpp.o.d"
  "CMakeFiles/gk_analytic.dir/two_partition_model.cpp.o"
  "CMakeFiles/gk_analytic.dir/two_partition_model.cpp.o.d"
  "CMakeFiles/gk_analytic.dir/wka_bkr_model.cpp.o"
  "CMakeFiles/gk_analytic.dir/wka_bkr_model.cpp.o.d"
  "libgk_analytic.a"
  "libgk_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
