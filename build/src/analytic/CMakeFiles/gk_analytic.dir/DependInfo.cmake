
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/batch_cost.cpp" "src/analytic/CMakeFiles/gk_analytic.dir/batch_cost.cpp.o" "gcc" "src/analytic/CMakeFiles/gk_analytic.dir/batch_cost.cpp.o.d"
  "/root/repo/src/analytic/fec_model.cpp" "src/analytic/CMakeFiles/gk_analytic.dir/fec_model.cpp.o" "gcc" "src/analytic/CMakeFiles/gk_analytic.dir/fec_model.cpp.o.d"
  "/root/repo/src/analytic/multisend_model.cpp" "src/analytic/CMakeFiles/gk_analytic.dir/multisend_model.cpp.o" "gcc" "src/analytic/CMakeFiles/gk_analytic.dir/multisend_model.cpp.o.d"
  "/root/repo/src/analytic/two_partition_model.cpp" "src/analytic/CMakeFiles/gk_analytic.dir/two_partition_model.cpp.o" "gcc" "src/analytic/CMakeFiles/gk_analytic.dir/two_partition_model.cpp.o.d"
  "/root/repo/src/analytic/wka_bkr_model.cpp" "src/analytic/CMakeFiles/gk_analytic.dir/wka_bkr_model.cpp.o" "gcc" "src/analytic/CMakeFiles/gk_analytic.dir/wka_bkr_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
