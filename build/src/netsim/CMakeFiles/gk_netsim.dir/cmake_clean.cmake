file(REMOVE_RECURSE
  "CMakeFiles/gk_netsim.dir/receiver.cpp.o"
  "CMakeFiles/gk_netsim.dir/receiver.cpp.o.d"
  "libgk_netsim.a"
  "libgk_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
