file(REMOVE_RECURSE
  "libgk_netsim.a"
)
