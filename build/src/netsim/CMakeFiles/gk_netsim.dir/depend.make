# Empty dependencies file for gk_netsim.
# This may be replaced when dependencies are built.
