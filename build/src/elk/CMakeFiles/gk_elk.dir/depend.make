# Empty dependencies file for gk_elk.
# This may be replaced when dependencies are built.
