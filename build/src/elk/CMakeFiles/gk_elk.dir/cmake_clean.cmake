file(REMOVE_RECURSE
  "CMakeFiles/gk_elk.dir/elk_member.cpp.o"
  "CMakeFiles/gk_elk.dir/elk_member.cpp.o.d"
  "CMakeFiles/gk_elk.dir/elk_tree.cpp.o"
  "CMakeFiles/gk_elk.dir/elk_tree.cpp.o.d"
  "libgk_elk.a"
  "libgk_elk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_elk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
