file(REMOVE_RECURSE
  "libgk_elk.a"
)
