
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elk/elk_member.cpp" "src/elk/CMakeFiles/gk_elk.dir/elk_member.cpp.o" "gcc" "src/elk/CMakeFiles/gk_elk.dir/elk_member.cpp.o.d"
  "/root/repo/src/elk/elk_tree.cpp" "src/elk/CMakeFiles/gk_elk.dir/elk_tree.cpp.o" "gcc" "src/elk/CMakeFiles/gk_elk.dir/elk_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gk_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/lkh/CMakeFiles/gk_lkh.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gk_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
