# Empty compiler generated dependencies file for gk_losshomo.
# This may be replaced when dependencies are built.
