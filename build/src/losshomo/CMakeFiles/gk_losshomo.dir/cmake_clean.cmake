file(REMOVE_RECURSE
  "CMakeFiles/gk_losshomo.dir/multi_tree_server.cpp.o"
  "CMakeFiles/gk_losshomo.dir/multi_tree_server.cpp.o.d"
  "libgk_losshomo.a"
  "libgk_losshomo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_losshomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
