file(REMOVE_RECURSE
  "libgk_losshomo.a"
)
