file(REMOVE_RECURSE
  "CMakeFiles/gk_transport.dir/fec.cpp.o"
  "CMakeFiles/gk_transport.dir/fec.cpp.o.d"
  "CMakeFiles/gk_transport.dir/gf256.cpp.o"
  "CMakeFiles/gk_transport.dir/gf256.cpp.o.d"
  "CMakeFiles/gk_transport.dir/multisend.cpp.o"
  "CMakeFiles/gk_transport.dir/multisend.cpp.o.d"
  "CMakeFiles/gk_transport.dir/packet.cpp.o"
  "CMakeFiles/gk_transport.dir/packet.cpp.o.d"
  "CMakeFiles/gk_transport.dir/rs_code.cpp.o"
  "CMakeFiles/gk_transport.dir/rs_code.cpp.o.d"
  "CMakeFiles/gk_transport.dir/wka_bkr.cpp.o"
  "CMakeFiles/gk_transport.dir/wka_bkr.cpp.o.d"
  "libgk_transport.a"
  "libgk_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
