file(REMOVE_RECURSE
  "libgk_transport.a"
)
