
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/fec.cpp" "src/transport/CMakeFiles/gk_transport.dir/fec.cpp.o" "gcc" "src/transport/CMakeFiles/gk_transport.dir/fec.cpp.o.d"
  "/root/repo/src/transport/gf256.cpp" "src/transport/CMakeFiles/gk_transport.dir/gf256.cpp.o" "gcc" "src/transport/CMakeFiles/gk_transport.dir/gf256.cpp.o.d"
  "/root/repo/src/transport/multisend.cpp" "src/transport/CMakeFiles/gk_transport.dir/multisend.cpp.o" "gcc" "src/transport/CMakeFiles/gk_transport.dir/multisend.cpp.o.d"
  "/root/repo/src/transport/packet.cpp" "src/transport/CMakeFiles/gk_transport.dir/packet.cpp.o" "gcc" "src/transport/CMakeFiles/gk_transport.dir/packet.cpp.o.d"
  "/root/repo/src/transport/rs_code.cpp" "src/transport/CMakeFiles/gk_transport.dir/rs_code.cpp.o" "gcc" "src/transport/CMakeFiles/gk_transport.dir/rs_code.cpp.o.d"
  "/root/repo/src/transport/wka_bkr.cpp" "src/transport/CMakeFiles/gk_transport.dir/wka_bkr.cpp.o" "gcc" "src/transport/CMakeFiles/gk_transport.dir/wka_bkr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gk_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/gk_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/gk_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gk_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
