# Empty compiler generated dependencies file for gk_transport.
# This may be replaced when dependencies are built.
