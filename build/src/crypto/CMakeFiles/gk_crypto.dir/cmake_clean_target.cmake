file(REMOVE_RECURSE
  "libgk_crypto.a"
)
