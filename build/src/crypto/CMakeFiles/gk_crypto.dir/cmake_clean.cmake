file(REMOVE_RECURSE
  "CMakeFiles/gk_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/gk_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/gk_crypto.dir/hmac.cpp.o"
  "CMakeFiles/gk_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/gk_crypto.dir/kdf.cpp.o"
  "CMakeFiles/gk_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/gk_crypto.dir/key.cpp.o"
  "CMakeFiles/gk_crypto.dir/key.cpp.o.d"
  "CMakeFiles/gk_crypto.dir/keywrap.cpp.o"
  "CMakeFiles/gk_crypto.dir/keywrap.cpp.o.d"
  "CMakeFiles/gk_crypto.dir/sha256.cpp.o"
  "CMakeFiles/gk_crypto.dir/sha256.cpp.o.d"
  "libgk_crypto.a"
  "libgk_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
