# Empty compiler generated dependencies file for gk_crypto.
# This may be replaced when dependencies are built.
