file(REMOVE_RECURSE
  "CMakeFiles/gk_lkh.dir/key_queue.cpp.o"
  "CMakeFiles/gk_lkh.dir/key_queue.cpp.o.d"
  "CMakeFiles/gk_lkh.dir/key_ring.cpp.o"
  "CMakeFiles/gk_lkh.dir/key_ring.cpp.o.d"
  "CMakeFiles/gk_lkh.dir/key_tree.cpp.o"
  "CMakeFiles/gk_lkh.dir/key_tree.cpp.o.d"
  "CMakeFiles/gk_lkh.dir/rekey_message.cpp.o"
  "CMakeFiles/gk_lkh.dir/rekey_message.cpp.o.d"
  "CMakeFiles/gk_lkh.dir/snapshot.cpp.o"
  "CMakeFiles/gk_lkh.dir/snapshot.cpp.o.d"
  "libgk_lkh.a"
  "libgk_lkh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_lkh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
