file(REMOVE_RECURSE
  "libgk_lkh.a"
)
