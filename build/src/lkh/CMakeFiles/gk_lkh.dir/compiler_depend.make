# Empty compiler generated dependencies file for gk_lkh.
# This may be replaced when dependencies are built.
