# Empty compiler generated dependencies file for gk_common.
# This may be replaced when dependencies are built.
