file(REMOVE_RECURSE
  "CMakeFiles/gk_common.dir/math.cpp.o"
  "CMakeFiles/gk_common.dir/math.cpp.o.d"
  "CMakeFiles/gk_common.dir/rng.cpp.o"
  "CMakeFiles/gk_common.dir/rng.cpp.o.d"
  "CMakeFiles/gk_common.dir/stats.cpp.o"
  "CMakeFiles/gk_common.dir/stats.cpp.o.d"
  "CMakeFiles/gk_common.dir/table.cpp.o"
  "CMakeFiles/gk_common.dir/table.cpp.o.d"
  "libgk_common.a"
  "libgk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
