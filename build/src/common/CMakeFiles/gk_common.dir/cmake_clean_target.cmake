file(REMOVE_RECURSE
  "libgk_common.a"
)
