# Empty dependencies file for gk_oft.
# This may be replaced when dependencies are built.
