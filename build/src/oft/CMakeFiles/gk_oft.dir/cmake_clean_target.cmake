file(REMOVE_RECURSE
  "libgk_oft.a"
)
