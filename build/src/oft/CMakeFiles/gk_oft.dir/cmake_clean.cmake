file(REMOVE_RECURSE
  "CMakeFiles/gk_oft.dir/oft_member.cpp.o"
  "CMakeFiles/gk_oft.dir/oft_member.cpp.o.d"
  "CMakeFiles/gk_oft.dir/oft_tree.cpp.o"
  "CMakeFiles/gk_oft.dir/oft_tree.cpp.o.d"
  "libgk_oft.a"
  "libgk_oft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_oft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
