# Empty dependencies file for gk_sim.
# This may be replaced when dependencies are built.
