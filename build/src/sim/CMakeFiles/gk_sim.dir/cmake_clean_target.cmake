file(REMOVE_RECURSE
  "libgk_sim.a"
)
