file(REMOVE_RECURSE
  "CMakeFiles/gk_sim.dir/interest.cpp.o"
  "CMakeFiles/gk_sim.dir/interest.cpp.o.d"
  "CMakeFiles/gk_sim.dir/partition_sim.cpp.o"
  "CMakeFiles/gk_sim.dir/partition_sim.cpp.o.d"
  "CMakeFiles/gk_sim.dir/transport_sim.cpp.o"
  "CMakeFiles/gk_sim.dir/transport_sim.cpp.o.d"
  "libgk_sim.a"
  "libgk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
