file(REMOVE_RECURSE
  "CMakeFiles/gk_marks.dir/seed_tree.cpp.o"
  "CMakeFiles/gk_marks.dir/seed_tree.cpp.o.d"
  "libgk_marks.a"
  "libgk_marks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_marks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
