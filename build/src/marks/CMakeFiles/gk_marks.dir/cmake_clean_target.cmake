file(REMOVE_RECURSE
  "libgk_marks.a"
)
