# Empty compiler generated dependencies file for gk_marks.
# This may be replaced when dependencies are built.
