# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/key_tree_test[1]_include.cmake")
include("/root/repo/build/tests/oft_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/losshomo_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/oft_partition_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/marks_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/elk_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/elk_partition_test[1]_include.cmake")
