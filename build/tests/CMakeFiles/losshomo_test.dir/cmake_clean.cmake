file(REMOVE_RECURSE
  "CMakeFiles/losshomo_test.dir/losshomo_test.cpp.o"
  "CMakeFiles/losshomo_test.dir/losshomo_test.cpp.o.d"
  "losshomo_test"
  "losshomo_test.pdb"
  "losshomo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/losshomo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
