# Empty dependencies file for losshomo_test.
# This may be replaced when dependencies are built.
