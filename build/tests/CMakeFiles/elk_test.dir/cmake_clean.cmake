file(REMOVE_RECURSE
  "CMakeFiles/elk_test.dir/elk_test.cpp.o"
  "CMakeFiles/elk_test.dir/elk_test.cpp.o.d"
  "elk_test"
  "elk_test.pdb"
  "elk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
