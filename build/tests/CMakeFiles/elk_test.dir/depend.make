# Empty dependencies file for elk_test.
# This may be replaced when dependencies are built.
