# Empty dependencies file for oft_partition_test.
# This may be replaced when dependencies are built.
