file(REMOVE_RECURSE
  "CMakeFiles/oft_partition_test.dir/oft_partition_test.cpp.o"
  "CMakeFiles/oft_partition_test.dir/oft_partition_test.cpp.o.d"
  "oft_partition_test"
  "oft_partition_test.pdb"
  "oft_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oft_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
