# Empty compiler generated dependencies file for oft_test.
# This may be replaced when dependencies are built.
