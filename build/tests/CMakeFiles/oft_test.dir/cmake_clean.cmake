file(REMOVE_RECURSE
  "CMakeFiles/oft_test.dir/oft_test.cpp.o"
  "CMakeFiles/oft_test.dir/oft_test.cpp.o.d"
  "oft_test"
  "oft_test.pdb"
  "oft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
