# Empty dependencies file for key_tree_test.
# This may be replaced when dependencies are built.
