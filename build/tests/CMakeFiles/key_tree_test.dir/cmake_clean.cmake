file(REMOVE_RECURSE
  "CMakeFiles/key_tree_test.dir/key_tree_test.cpp.o"
  "CMakeFiles/key_tree_test.dir/key_tree_test.cpp.o.d"
  "key_tree_test"
  "key_tree_test.pdb"
  "key_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
