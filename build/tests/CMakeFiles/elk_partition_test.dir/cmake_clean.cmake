file(REMOVE_RECURSE
  "CMakeFiles/elk_partition_test.dir/elk_partition_test.cpp.o"
  "CMakeFiles/elk_partition_test.dir/elk_partition_test.cpp.o.d"
  "elk_partition_test"
  "elk_partition_test.pdb"
  "elk_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elk_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
