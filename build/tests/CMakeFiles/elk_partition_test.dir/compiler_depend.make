# Empty compiler generated dependencies file for elk_partition_test.
# This may be replaced when dependencies are built.
