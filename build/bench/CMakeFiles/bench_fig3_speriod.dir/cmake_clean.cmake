file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_speriod.dir/bench_fig3_speriod.cpp.o"
  "CMakeFiles/bench_fig3_speriod.dir/bench_fig3_speriod.cpp.o.d"
  "bench_fig3_speriod"
  "bench_fig3_speriod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_speriod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
