# Empty dependencies file for bench_fig3_speriod.
# This may be replaced when dependencies are built.
