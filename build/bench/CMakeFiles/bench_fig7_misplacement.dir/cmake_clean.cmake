file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_misplacement.dir/bench_fig7_misplacement.cpp.o"
  "CMakeFiles/bench_fig7_misplacement.dir/bench_fig7_misplacement.cpp.o.d"
  "bench_fig7_misplacement"
  "bench_fig7_misplacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_misplacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
