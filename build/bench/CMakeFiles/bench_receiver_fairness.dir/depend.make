# Empty dependencies file for bench_receiver_fairness.
# This may be replaced when dependencies are built.
