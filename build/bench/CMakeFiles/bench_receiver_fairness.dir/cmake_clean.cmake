file(REMOVE_RECURSE
  "CMakeFiles/bench_receiver_fairness.dir/bench_receiver_fairness.cpp.o"
  "CMakeFiles/bench_receiver_fairness.dir/bench_receiver_fairness.cpp.o.d"
  "bench_receiver_fairness"
  "bench_receiver_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_receiver_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
