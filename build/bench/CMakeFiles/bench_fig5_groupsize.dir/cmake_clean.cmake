file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_groupsize.dir/bench_fig5_groupsize.cpp.o"
  "CMakeFiles/bench_fig5_groupsize.dir/bench_fig5_groupsize.cpp.o.d"
  "bench_fig5_groupsize"
  "bench_fig5_groupsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_groupsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
