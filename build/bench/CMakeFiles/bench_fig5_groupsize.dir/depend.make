# Empty dependencies file for bench_fig5_groupsize.
# This may be replaced when dependencies are built.
