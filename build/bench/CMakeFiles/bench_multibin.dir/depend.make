# Empty dependencies file for bench_multibin.
# This may be replaced when dependencies are built.
