file(REMOVE_RECURSE
  "CMakeFiles/bench_multibin.dir/bench_multibin.cpp.o"
  "CMakeFiles/bench_multibin.dir/bench_multibin.cpp.o.d"
  "bench_multibin"
  "bench_multibin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multibin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
