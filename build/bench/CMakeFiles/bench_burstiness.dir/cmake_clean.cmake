file(REMOVE_RECURSE
  "CMakeFiles/bench_burstiness.dir/bench_burstiness.cpp.o"
  "CMakeFiles/bench_burstiness.dir/bench_burstiness.cpp.o.d"
  "bench_burstiness"
  "bench_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
