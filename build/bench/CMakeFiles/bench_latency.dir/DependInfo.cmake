
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_latency.cpp" "bench/CMakeFiles/bench_latency.dir/bench_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_latency.dir/bench_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gk_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/lkh/CMakeFiles/gk_lkh.dir/DependInfo.cmake"
  "/root/repo/build/src/oft/CMakeFiles/gk_oft.dir/DependInfo.cmake"
  "/root/repo/build/src/marks/CMakeFiles/gk_marks.dir/DependInfo.cmake"
  "/root/repo/build/src/elk/CMakeFiles/gk_elk.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/gk_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gk_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/gk_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gk_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/losshomo/CMakeFiles/gk_losshomo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
