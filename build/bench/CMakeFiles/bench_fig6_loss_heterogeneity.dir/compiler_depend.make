# Empty compiler generated dependencies file for bench_fig6_loss_heterogeneity.
# This may be replaced when dependencies are built.
