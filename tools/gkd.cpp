// gkd: the group-key daemon. One process, one epoll loop, one group —
// serves join/leave/resync over TCP and fans each committed rekey epoch
// out to every subscribed connection. Any scheme/shard-count the
// partition factory knows can back it:
//
//   gkd --scheme tt --shards 4 --port 7100 --epoch-interval-ms 1000
//
// With --port 0 the kernel picks a port; the "listening" line on stdout
// reports the actual one (scripts parse it).

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/server.h"

namespace {

gk::net::Server* g_server = nullptr;

void handle_signal(int /*signum*/) {
  if (g_server != nullptr) g_server->stop();
}

void usage() {
  std::cout
      << "usage: gkd [options]\n"
         "  --scheme NAME            rekeying scheme (one-tree, qt, tt, pt, oft-tt,\n"
         "                           elk-tt, loss-bin, batch; default tt)\n"
         "  --shards N               subtree shards under the top DEK (default 1)\n"
         "  --bind ADDR              IPv4 listen address (default 127.0.0.1)\n"
         "  --port P                 TCP port; 0 = kernel-assigned (default 0)\n"
         "  --epoch-interval-ms MS   commit a rekey epoch every MS ms; 0 = only on\n"
         "                           kCommit frames (default 0)\n"
         "  --seed N                 engine RNG seed (default 20030519)\n"
         "  --retry-budget N         straggler delivery attempts before eviction\n"
         "  --max-outbound-bytes N   per-session queued-byte high-water mark\n"
         "  --no-remote-commit       reject kCommit frames\n"
         "  --no-remote-shutdown     reject kShutdown frames\n";
}

}  // namespace

int main(int argc, char** argv) {
  gk::net::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "gkd: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scheme") {
      config.scheme = next();
    } else if (arg == "--shards") {
      config.shards = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--bind") {
      config.bind_address = next();
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--epoch-interval-ms") {
      config.epoch_interval_ms = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--retry-budget") {
      config.straggler.retry_budget = std::stoul(next());
    } else if (arg == "--max-outbound-bytes") {
      config.max_outbound_bytes = std::stoul(next());
    } else if (arg == "--no-remote-commit") {
      config.allow_remote_commit = false;
    } else if (arg == "--no-remote-shutdown") {
      config.allow_remote_shutdown = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "gkd: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  gk::net::Server server(config);
  g_server = &server;
  struct sigaction action {};
  action.sa_handler = handle_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  const auto port = server.listen();
  std::cout << "gkd listening on " << config.bind_address << ":" << port << " scheme="
            << config.scheme << " shards=" << config.shards << std::endl;
  server.run();

  const auto& stats = server.stats();
  std::cout << "gkd exiting: epochs=" << stats.counters.epochs_committed
            << " joins=" << stats.counters.joins << " leaves=" << stats.counters.leaves
            << " resyncs=" << stats.counters.resyncs
            << " evictions=" << stats.counters.evictions
            << " rekey_bytes=" << stats.counters.rekey_bytes_sent << std::endl;
  return 0;
}
