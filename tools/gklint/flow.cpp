#include "gklint/flow.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>

namespace gk::lint {
namespace {

// ---------------------------------------------------------------- helpers ---

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

[[nodiscard]] bool tok_is(const Token& t, std::string_view text) {
  return t.text == text;
}

/// Index of the token matching the `(` at `open`, or toks.size() on overrun.
[[nodiscard]] std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

/// Index of the token matching the `{` at `open`, or toks.size() on overrun.
[[nodiscard]] std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i;
  }
  return toks.size();
}

/// SHOUTY_CASE identifiers are macros (GK_REQUIRES, EXPECT_EQ, ...), never
/// function definitions worth analyzing.
[[nodiscard]] bool is_macro_name(std::string_view name) {
  bool has_upper = false;
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isupper(static_cast<unsigned char>(c)) != 0) has_upper = true;
  }
  return has_upper;
}

// ---------------------------------------------------- function extraction ---

/// One function definition: its name, parameter-list and body token ranges.
/// Extraction is heuristic (token-shape, not a parse tree): `name ( ... )`
/// followed — after skipping specifiers, annotations, and a constructor
/// init-list — by a `{`. Good enough for intra-procedural scanning; a missed
/// body only means a missed finding, never a false one.
struct FunctionDef {
  std::string name;
  std::size_t params_open = 0;  ///< index of `(`
  std::size_t params_close = 0; ///< index of `)`
  std::size_t body_open = 0;    ///< index of `{`
  std::size_t body_close = 0;   ///< index of `}`
};

[[nodiscard]] std::vector<FunctionDef> extract_functions(
    const std::vector<Token>& toks) {
  static const std::set<std::string> kNotFunctions = {
      "if",     "for",      "while",  "switch",   "return",        "catch",
      "sizeof", "alignof",  "decltype", "noexcept", "static_assert", "assert",
      "requires", "constexpr", "alignas", "defined", "throw"};
  std::vector<FunctionDef> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !tok_is(toks[i + 1], "(")) continue;
    if (kNotFunctions.count(toks[i].text) != 0) continue;
    if (is_macro_name(toks[i].text)) continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close >= toks.size()) continue;
    // Walk past trailing specifiers / attributes / ctor init-list to the
    // body `{`; a `;` or `=` first means declaration / `= default`.
    std::size_t j = close + 1;
    std::size_t body = toks.size();
    while (j < toks.size()) {
      const auto& t = toks[j];
      if (tok_is(t, ";") || tok_is(t, "=")) break;
      if (tok_is(t, "{")) {
        body = j;
        break;
      }
      if (tok_is(t, "(")) {
        j = match_paren(toks, j) + 1;
        continue;
      }
      ++j;
    }
    if (body == toks.size()) continue;
    const std::size_t end = match_brace(toks, body);
    if (end == toks.size()) continue;
    out.push_back({toks[i].text, i + 1, close, body, end});
  }
  return out;
}

// ------------------------------------------------------ rule: secret-taint --

/// How a name became secret: a whole secret-typed object, or a view/pointer
/// onto raw key bytes. Objects keep their own discipline (Key128's == is
/// constant-time, its printers redact), so only *bytes* taint feeds the
/// comparison and copy sinks; both kinds are barred from logging sinks.
enum class TaintKind : std::uint8_t { kSecretObject, kSecretBytes };

struct TaintedName {
  TaintKind kind;
  std::string origin;  ///< what made it secret, for the message
};

void rule_secret_taint(const std::string& path, const std::vector<Token>& toks,
                       const Registry& reg, std::vector<Finding>* findings) {
  const bool log_sink_ok = starts_with(path, "tests/") || starts_with(path, "tools/");
  const bool compare_ok = starts_with(path, "src/crypto/");
  const bool copy_ok = starts_with(path, "src/crypto/") || starts_with(path, "tests/");
  if (log_sink_ok && compare_ok && copy_ok) return;

  static const std::set<std::string> kPrintFns = {"printf", "fprintf", "puts", "fputs",
                                                  "format", "print",   "println"};
  static const std::set<std::string> kCopyFns = {"memcpy", "memmove", "copy", "copy_n"};

  for (const auto& fn : extract_functions(toks)) {
    std::map<std::string, TaintedName> tainted;

    // Seed: parameters of a registered secret type.
    for (std::size_t i = fn.params_open + 1; i < fn.params_close; ++i) {
      if (toks[i].kind != TokKind::kIdent || reg.secret_types.count(toks[i].text) == 0)
        continue;
      // Parameter name: the last identifier before the next top-level , or ).
      std::size_t j = i + 1;
      std::string name;
      int depth = 0;
      for (; j < fn.params_close; ++j) {
        if (tok_is(toks[j], "(") || tok_is(toks[j], "<")) ++depth;
        if (tok_is(toks[j], ")") || tok_is(toks[j], ">")) --depth;
        if (depth == 0 && (tok_is(toks[j], ",") || tok_is(toks[j], "="))) break;
        if (toks[j].kind == TokKind::kIdent) name = toks[j].text;
      }
      if (!name.empty())
        tainted.emplace(name, TaintedName{TaintKind::kSecretObject,
                                          "parameter of secret type " + toks[i].text});
    }

    // Walk the body statement by statement, seeding, propagating, and
    // checking sinks in source order (a name is only dangerous after it
    // became secret).
    std::size_t stmt_begin = fn.body_open + 1;
    for (std::size_t i = stmt_begin; i <= fn.body_close; ++i) {
      const bool boundary =
          i == fn.body_close ||
          (toks[i].kind == TokKind::kPunct &&
           (tok_is(toks[i], ";") || tok_is(toks[i], "{") || tok_is(toks[i], "}")));
      if (!boundary) continue;
      const std::size_t begin = stmt_begin;
      const std::size_t end = i;
      stmt_begin = i + 1;
      if (begin >= end) continue;

      // --- sinks first: they act on taint established by *earlier* code ---
      bool stream = false;
      std::size_t print_open = 0;
      for (std::size_t j = begin; j < end; ++j) {
        if (toks[j].kind == TokKind::kPunct && tok_is(toks[j], "<<")) stream = true;
        if (toks[j].kind == TokKind::kIdent && kPrintFns.count(toks[j].text) != 0 &&
            j + 1 < end && tok_is(toks[j + 1], "("))
          print_open = j + 1;
      }
      for (std::size_t j = begin; j < end; ++j) {
        const auto& t = toks[j];
        if (t.kind != TokKind::kIdent) continue;
        const auto hit = tainted.find(t.text);
        if (hit == tainted.end()) continue;
        // Member access `x.foo` where foo happens to share a tainted name is
        // a different variable.
        if (j > begin && (tok_is(toks[j - 1], ".") || tok_is(toks[j - 1], "->")))
          continue;
        // `k.hex()` streams the *redacted* accessor — only raw accessors on
        // a tainted receiver keep the taint flowing into the sink.
        if (j + 2 < end &&
            (tok_is(toks[j + 1], ".") || tok_is(toks[j + 1], "->"))) {
          const std::string& member = toks[j + 2].text;
          if (member != "bytes" && member != "mutable_bytes" && member != "hex_full")
            continue;
        }

        const bool in_print =
            print_open != 0 && j > print_open && j < match_paren(toks, print_open);
        if ((stream || in_print) && !log_sink_ok) {
          findings->push_back(
              {path, t.line, "secret-taint",
               "'" + t.text + "' (" + hit->second.origin +
                   ") reaches a logging sink; log the redacted hex() instead"});
          continue;
        }
        if (hit->second.kind == TaintKind::kSecretBytes && !compare_ok) {
          const bool eq_adjacent =
              (j + 1 < end && (tok_is(toks[j + 1], "==") || tok_is(toks[j + 1], "!="))) ||
              (j > begin && (tok_is(toks[j - 1], "==") || tok_is(toks[j - 1], "!=")));
          if (eq_adjacent) {
            findings->push_back(
                {path, t.line, "secret-taint",
                 "'" + t.text + "' (" + hit->second.origin +
                     ") compared with ==/!= is variable-time; use crypto::ct_equal()"});
            continue;
          }
        }
        if (!copy_ok) {
          // Inside a raw-copy call's argument list?
          for (std::size_t k = begin; k < j; ++k) {
            if (toks[k].kind != TokKind::kIdent || kCopyFns.count(toks[k].text) == 0)
              continue;
            if (k + 1 >= end || !tok_is(toks[k + 1], "(")) continue;
            if (k > begin && (tok_is(toks[k - 1], ".") || tok_is(toks[k - 1], "->")))
              continue;  // someone's .copy() method, not std::copy/memcpy
            if (j < match_paren(toks, k + 1)) {
              findings->push_back(
                  {path, t.line, "secret-taint",
                   "'" + t.text + "' (" + hit->second.origin + ") passed to " +
                       toks[k].text +
                       "(): raw copies of key material belong in src/crypto/, and the "
                       "destination must be wiped"});
              break;
            }
          }
        }
      }

      // --- seeds and propagation take effect for *later* statements -------
      // Declaration of a secret-typed local: `Key128 k = ...;`
      for (std::size_t j = begin; j + 1 < end; ++j) {
        if (toks[j].kind != TokKind::kIdent || reg.secret_types.count(toks[j].text) == 0)
          continue;
        if (j + 1 < end && (tok_is(toks[j + 1], "::") || tok_is(toks[j + 1], "(")))
          continue;  // qualified name or constructor call, not a declaration
        std::size_t k = j + 1;
        while (k < end && (tok_is(toks[k], "&") || tok_is(toks[k], "*") ||
                           tok_is(toks[k], "const")))
          ++k;
        if (k < end && toks[k].kind == TokKind::kIdent)
          tainted.emplace(toks[k].text,
                          TaintedName{TaintKind::kSecretObject,
                                      "local of secret type " + toks[j].text});
      }
      // Binding raw bytes or aliasing an already-tainted name: find the
      // assignment target, then classify the right-hand side.
      for (std::size_t j = begin; j < end; ++j) {
        if (toks[j].kind != TokKind::kPunct || !tok_is(toks[j], "=")) continue;
        if (j == begin || toks[j - 1].kind != TokKind::kIdent) break;
        const std::string target = toks[j - 1].text;
        bool rhs_bytes = false;
        std::optional<TaintedName> rhs_alias;
        std::size_t rhs_len = 0;
        for (std::size_t k = j + 1; k < end; ++k, ++rhs_len) {
          const auto& r = toks[k];
          if (r.kind != TokKind::kIdent) continue;
          const bool member =
              k > 0 && (tok_is(toks[k - 1], ".") || tok_is(toks[k - 1], "->"));
          if (member && (r.text == "bytes" || r.text == "mutable_bytes" ||
                         r.text == "data")) {
            // Only a *secret receiver's* .bytes()/.data() is key material —
            // a ByteReader's in.bytes(n) is plain deserialization. The
            // receiver is the identifier before the access operator.
            const bool secret_recv =
                k >= 2 && toks[k - 2].kind == TokKind::kIdent &&
                (tainted.count(toks[k - 2].text) != 0 ||
                 reg.secret_types.count(toks[k - 2].text) != 0);
            if (secret_recv) rhs_bytes = true;
          }
          // hex_full() is the loud full-bytes escape hatch on any receiver.
          if (member && r.text == "hex_full") rhs_bytes = true;
          const auto hit = tainted.find(r.text);
          if (!member && hit != tainted.end()) rhs_alias = hit->second;
        }
        if (rhs_bytes)
          tainted.insert_or_assign(
              target, TaintedName{TaintKind::kSecretBytes, "bound to raw key bytes"});
        else if (rhs_alias.has_value() && rhs_len <= 4)
          // Short right-hand side = a plain alias (`p = q;`), not an
          // arbitrary expression that merely mentions a secret.
          tainted.insert_or_assign(target, *rhs_alias);
        break;  // one assignment per statement is enough for this pass
      }
    }
  }
}

// --------------------------------------------------- rule: lock-discipline --

/// Field-shaped statement inside a class body: the declared name is an
/// identifier directly followed by `;`, `=`, `{`, `[`, or a GK_ ownership
/// annotation. Method declarations never match (their name is followed by
/// `(`), neither do using-aliases or friends (keyword-guarded below).
struct FieldDecl {
  std::string name;
  std::size_t line = 0;
  bool is_sync_primitive = false;  ///< Mutex / CondVar / MpscQueue / atomic
  bool owns_lock = false;          ///< the field that makes the class lock-owning
  bool disciplined = false;        ///< annotated, atomic, or const
};

void rule_lock_discipline(const std::string& path, const std::vector<Token>& toks,
                          std::vector<Finding>* findings) {
  static const std::set<std::string> kLockTypes = {"Mutex", "mutex", "recursive_mutex",
                                                   "shared_mutex", "timed_mutex",
                                                   "MpscQueue"};
  static const std::set<std::string> kSyncTypes = {"CondVar", "condition_variable",
                                                   "condition_variable_any", "atomic",
                                                   "atomic_flag"};
  static const std::set<std::string> kOwnership = {"GK_GUARDED_BY", "GK_PT_GUARDED_BY",
                                                   "GK_CONSUMER_ONLY",
                                                   "GK_CONST_AFTER_INIT"};
  static const std::set<std::string> kSkipStmt = {"using", "typedef", "friend",
                                                  "static_assert", "enum"};
  // Trailing tokens of *method* declarations that are identifier-shaped and
  // would otherwise read as a field name (`void f() noexcept;`).
  static const std::set<std::string> kNotFieldNames = {
      "const",  "constexpr", "noexcept", "override", "final",
      "default", "delete",   "mutable",  "volatile", "public",
      "private", "protected", "true",    "false",    "nullptr"};

  struct ClassScope {
    std::string name;
    int depth = 0;
    bool owns_lock = false;
    std::vector<FieldDecl> fields;
  };
  std::vector<ClassScope> stack;
  int depth = 0;
  std::optional<std::string> pending_class;

  std::size_t stmt_begin = 0;
  for (std::size_t i = 0; i <= toks.size(); ++i) {
    const bool at_end = i == toks.size();
    const auto* t = at_end ? nullptr : &toks[i];

    if (!at_end && t->kind == TokKind::kIdent) {
      if ((tok_is(*t, "class") || tok_is(*t, "struct")) &&
          !(i > 0 && tok_is(toks[i - 1], "enum"))) {
        std::size_t j = i + 1;
        while (j < toks.size() && (toks[j].kind == TokKind::kPunct ||
                                   is_macro_name(toks[j].text) ||
                                   tok_is(toks[j], "alignas") || tok_is(toks[j], "final")))
          ++j;
        if (j < toks.size() && toks[j].kind == TokKind::kIdent)
          pending_class = toks[j].text;
      }
      continue;
    }
    if (at_end || t->kind == TokKind::kPunct) {
      const bool boundary = at_end || tok_is(*t, ";") || tok_is(*t, "{") ||
                            tok_is(*t, "}");
      if (boundary) {
        // Classify the finished statement if we are directly inside a class.
        const bool in_class = !stack.empty() && stack.back().depth == depth;
        const bool ends_decl = at_end || tok_is(*t, ";");
        if (in_class && ends_decl && stmt_begin < i) {
          const std::size_t begin = stmt_begin;
          bool skip = false;
          bool is_static = false;
          bool is_const = false;
          bool has_lock_type = false;
          bool has_sync_type = false;
          bool has_ownership = false;
          for (std::size_t j = begin; j < i; ++j) {
            const auto& s = toks[j];
            if (s.kind != TokKind::kIdent) continue;
            if (kSkipStmt.count(s.text) != 0) skip = true;
            if (s.text == "static") is_static = true;
            if (s.text == "const" || s.text == "constexpr") is_const = true;
            if (kLockTypes.count(s.text) != 0) has_lock_type = true;
            if (kSyncTypes.count(s.text) != 0) has_sync_type = true;
            if (kOwnership.count(s.text) != 0) has_ownership = true;
          }
          if (!skip) {
            // The declared name: last ident followed by ; = { [ or annotation.
            std::string name;
            std::size_t line = 0;
            int paren_depth = 0;
            for (std::size_t j = begin; j + 1 <= i; ++j) {
              if (toks[j].kind == TokKind::kPunct) {
                if (tok_is(toks[j], "(")) ++paren_depth;
                if (tok_is(toks[j], ")")) --paren_depth;
                continue;
              }
              if (toks[j].kind != TokKind::kIdent) continue;
              // A name inside parentheses is a parameter (possibly with a
              // `= default-value`), never the declared field.
              if (paren_depth != 0) continue;
              if (kNotFieldNames.count(toks[j].text) != 0) continue;
              if (is_macro_name(toks[j].text)) continue;
              if (j > begin && (tok_is(toks[j - 1], ".") || tok_is(toks[j - 1], "->") ||
                               tok_is(toks[j - 1], "::")))
                continue;
              const auto& next = j + 1 == i ? Token{TokKind::kPunct, ";", 0}
                                            : toks[j + 1];
              const bool field_shaped =
                  tok_is(next, ";") || tok_is(next, "=") || tok_is(next, "{") ||
                  tok_is(next, "[") ||
                  (next.kind == TokKind::kIdent && kOwnership.count(next.text) != 0);
              if (field_shaped) {
                name = toks[j].text;
                line = toks[j].line;
                break;
              }
            }
            if (!name.empty() && !is_static) {
              FieldDecl field;
              field.name = name;
              field.line = line;
              field.owns_lock = has_lock_type;
              field.is_sync_primitive = has_lock_type || has_sync_type;
              field.disciplined = has_ownership || has_sync_type || is_const;
              if (has_lock_type) stack.back().owns_lock = true;
              stack.back().fields.push_back(std::move(field));
            }
          }
        }
        stmt_begin = i + 1;
      }
      if (at_end) break;
      if (tok_is(*t, "{")) {
        ++depth;
        if (pending_class.has_value()) {
          stack.push_back({*pending_class, depth, false, {}});
          pending_class.reset();
        }
      } else if (tok_is(*t, "}")) {
        if (!stack.empty() && stack.back().depth == depth) {
          const auto scope = std::move(stack.back());
          stack.pop_back();
          if (scope.owns_lock) {
            for (const auto& field : scope.fields) {
              if (field.is_sync_primitive || field.disciplined) continue;
              findings->push_back(
                  {path, field.line, "lock-discipline",
                   "class " + scope.name + " owns a lock, so field '" + field.name +
                       "' needs a declared owner: GK_GUARDED_BY(mutex), "
                       "GK_CONSUMER_ONLY, GK_CONST_AFTER_INIT, an atomic type, "
                       "or const"});
            }
          }
        }
        --depth;
      } else if (tok_is(*t, ";")) {
        pending_class.reset();  // forward declaration
      }
    }
  }
}

// ------------------------------------------------ rule: memory-order-audit --

void rule_memory_order(const std::string& path, const std::vector<Token>& toks,
                       const std::vector<Comment>& comments,
                       std::vector<Finding>* findings) {
  static const std::set<std::string> kAtomicOps = {
      "load",      "store",     "exchange",     "fetch_add",
      "fetch_sub", "fetch_and", "fetch_or",     "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong"};
  static const std::set<std::string> kWeakOrders = {"memory_order_relaxed",
                                                    "memory_order_consume"};
  static const std::set<std::string> kCompound = {"+=", "-=", "|=", "&=", "^="};

  // Does any comment ending within the four lines above `line` (or on it)
  // mention the weak order by name? That is the justification convention:
  // the comment must engage with *why* relaxed is enough, and naming the
  // order is the cheapest machine-checkable proxy for that.
  const auto justified = [&](std::size_t line) {
    for (const auto& c : comments) {
      if (c.last_line + 4 < line || c.last_line > line) continue;
      if (c.text.find("relaxed") != std::string::npos ||
          c.text.find("consume") != std::string::npos)
        return true;
    }
    return false;
  };

  // --- explicit-call form: .load(...), ->fetch_add(...), ... ---------------
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind != TokKind::kIdent || kAtomicOps.count(t.text) == 0) continue;
    if (!(tok_is(toks[i - 1], ".") || tok_is(toks[i - 1], "->"))) continue;
    if (!tok_is(toks[i + 1], "(")) continue;
    const std::size_t close = match_paren(toks, i + 1);
    bool has_order = false;
    bool weak = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      if (starts_with(toks[j].text, "memory_order")) {
        has_order = true;
        if (kWeakOrders.count(toks[j].text) != 0) weak = true;
      }
    }
    if (!has_order) {
      // `.store(x)` on a non-atomic (e.g. a cache or a map) is conceivable,
      // but every name in kAtomicOps is atomic-specific vocabulary except
      // load/store/exchange — and flagging those on sight is the point: the
      // reader should not have to know the receiver's type to audit it.
      findings->push_back(
          {path, t.line, "memory-order-audit",
           "atomic ." + t.text +
               "() defaults to seq_cst; spell the std::memory_order explicitly so "
               "the ordering contract is visible at the call site"});
    } else if (weak && !justified(t.line)) {
      findings->push_back(
          {path, t.line, "memory-order-audit",
           "ordering weaker than acquire/release needs a justification comment "
           "within 4 lines naming the order (why is 'relaxed' sufficient here?)"});
    }
  }

  // --- operator form on names declared std::atomic<...> --------------------
  // `counter_++` or `flag_ = true` compiles to a seq_cst RMW/store with no
  // visible ordering at all. Collect names declared atomic in this file,
  // then flag operator-form uses. Restricted to member-access uses and
  // trailing-underscore names so a local that shadows an atomic field's
  // name (common for `next` in queue code) cannot false-positive.
  std::set<std::string> atomic_names;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "atomic" && toks[i].text != "atomic_flag"))
      continue;
    std::size_t j = i + 1;
    if (tok_is(toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (tok_is(toks[j], "<")) ++depth;
        else if (tok_is(toks[j], ">") && --depth == 0) break;
        else if (tok_is(toks[j], ">>") && (depth -= 2) <= 0) break;
      }
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent)
      atomic_names.insert(toks[j].text);
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind != TokKind::kIdent || atomic_names.count(t.text) == 0) continue;
    if (i > 0 && tok_is(toks[i - 1], ">")) continue;  // the declaration itself
    const bool member_access =
        i > 0 && (tok_is(toks[i - 1], ".") || tok_is(toks[i - 1], "->"));
    if (!member_access && !ends_with(t.text, "_")) continue;
    std::string op;
    if (i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct) {
      const auto& n = toks[i + 1];
      if (tok_is(n, "++") || tok_is(n, "--") || kCompound.count(n.text) != 0 ||
          tok_is(n, "="))
        op = n.text;
    }
    if (op.empty() && i > 0 && (tok_is(toks[i - 1], "++") || tok_is(toks[i - 1], "--")))
      op = toks[i - 1].text;
    if (op.empty()) continue;
    findings->push_back(
        {path, t.line, "memory-order-audit",
         "operator-form '" + t.text + " " + op +
             "' on an atomic is an implicit seq_cst operation; use "
             ".store()/.fetch_*() with an explicit std::memory_order"});
  }
}

// --------------------------------------------------------- rule: raii-wipe --

void rule_raii_wipe(const std::string& path, const std::vector<Token>& toks,
                    std::vector<Finding>* findings) {
  // Test/bench/example processes exit immediately after running; their stack
  // frames are not a realistic exfiltration surface, and wiping every
  // fixture buffer would bury the signal. src/ and tools/ are enforced.
  if (starts_with(path, "tests/") || starts_with(path, "bench/") ||
      starts_with(path, "examples/"))
    return;

  // Functions that make a stack buffer secret by reading key material from
  // it or writing key/keystream material into it.
  static const std::set<std::string> kKeySinks = {
      "hmac_sha256",   "hmac_sha256_many", "hmac_midstate", "hmac_midstate_many",
      "derive_key",    "oft_blind",        "oft_mix",       "Key128",
      "fill_chacha_state", "chacha20_blocks", "sha256_compress_many",
      "sha256_many_resumed"};
  static const std::set<std::string> kByteTypes = {"uint8_t", "byte", "char"};

  for (const auto& fn : extract_functions(toks)) {
    // 1. Stack byte buffers declared in this body (C arrays and std::array;
    //    WipedBytes wipes itself and is exempt by construction).
    struct Buffer {
      std::string name;
      std::size_t decl_tok = 0;
      std::size_t line = 0;
    };
    std::vector<Buffer> buffers;
    // A `static constexpr` byte array is a public compile-time constant
    // (domain-separation labels and the like), not secret material.
    const auto is_constant_decl = [&](std::size_t type_tok) {
      for (std::size_t j = type_tok; j > fn.body_open; --j) {
        const auto& s = toks[j - 1];
        if (s.kind == TokKind::kPunct &&
            (tok_is(s, ";") || tok_is(s, "{") || tok_is(s, "}")))
          return false;
        if (s.kind == TokKind::kIdent &&
            (s.text == "static" || s.text == "constexpr" || s.text == "const"))
          return true;
      }
      return false;
    };
    for (std::size_t i = fn.body_open + 1; i + 2 < fn.body_close; ++i) {
      const auto& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (is_constant_decl(i)) continue;
      // C array: `std::uint8_t name[` — the type ident precedes the name.
      if (kByteTypes.count(t.text) != 0 && toks[i + 1].kind == TokKind::kIdent &&
          tok_is(toks[i + 2], "[")) {
        buffers.push_back({toks[i + 1].text, i + 1, toks[i + 1].line});
        continue;
      }
      // std::array<std::uint8_t, N> name
      if (t.text == "array" && tok_is(toks[i + 1], "<")) {
        int depth = 0;
        std::size_t j = i + 1;
        bool byte_elem = false;
        for (; j < fn.body_close; ++j) {
          if (tok_is(toks[j], "<")) ++depth;
          else if (tok_is(toks[j], ">") && --depth == 0) break;
          else if (toks[j].kind == TokKind::kIdent && kByteTypes.count(toks[j].text) != 0)
            byte_elem = true;
        }
        if (byte_elem && j + 1 < fn.body_close && toks[j + 1].kind == TokKind::kIdent)
          buffers.push_back({toks[j + 1].text, j + 1, toks[j + 1].line});
      }
    }
    if (buffers.empty()) continue;

    // 2. For each buffer: first key-sink use, wipe positions, return exits.
    for (const auto& buf : buffers) {
      std::size_t first_use = fn.body_close;
      std::string sink_name;
      std::vector<std::size_t> wipes;
      for (std::size_t i = buf.decl_tok + 1; i < fn.body_close; ++i) {
        if (toks[i].kind != TokKind::kIdent) continue;
        const bool is_sink = kKeySinks.count(toks[i].text) != 0;
        const bool is_wipe = toks[i].text == "secure_wipe";
        if ((!is_sink && !is_wipe) || i + 1 >= fn.body_close ||
            !tok_is(toks[i + 1], "("))
          continue;
        const std::size_t close = match_paren(toks, i + 1);
        bool names_buf = false;
        for (std::size_t j = i + 2; j < close; ++j)
          if (toks[j].kind == TokKind::kIdent && toks[j].text == buf.name)
            names_buf = true;
        if (!names_buf) continue;
        if (is_wipe) {
          wipes.push_back(i);
        } else if (first_use == fn.body_close) {
          first_use = i;
          sink_name = toks[i].text;
        }
      }
      if (first_use == fn.body_close) continue;  // never held key material

      // 3. Every exit after the first secret use needs a preceding wipe.
      //    (Exceptions want crypto::WipedBytes — a wipe call cannot guard a
      //    throwing path, which the finding message says.)
      const auto wiped_before = [&](std::size_t exit_tok) {
        return std::any_of(wipes.begin(), wipes.end(), [&](std::size_t w) {
          return w > first_use && w < exit_tok;
        });
      };
      for (std::size_t i = first_use; i < fn.body_close; ++i) {
        if (toks[i].kind == TokKind::kIdent && tok_is(toks[i], "return") &&
            !wiped_before(i)) {
          findings->push_back(
              {path, toks[i].line, "raii-wipe",
               "return leaves '" + buf.name + "' unwiped after it fed " + sink_name +
                   "(); secure_wipe() it on this path or declare it "
                   "crypto::WipedBytes so unwinding wipes it too"});
        }
      }
      if (!wiped_before(fn.body_close)) {
        findings->push_back(
            {path, toks[fn.body_close].line, "raii-wipe",
             "'" + buf.name + "' (declared line " + std::to_string(buf.line) +
                 ") fed " + sink_name +
                 "() but is never secure_wipe()d before the function ends; key "
                 "material survives in the dead stack frame"});
      }
    }
  }
}

}  // namespace

void lint_flow(const std::string& display_path, const LexResult& lexed,
               const Registry& registry, std::vector<Finding>& findings) {
  rule_secret_taint(display_path, lexed.tokens, registry, &findings);
  rule_lock_discipline(display_path, lexed.tokens, &findings);
  rule_memory_order(display_path, lexed.tokens, lexed.comments, &findings);
  rule_raii_wipe(display_path, lexed.tokens, &findings);
}

}  // namespace gk::lint
