#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace gk::lint {

/// One diagnostic, rendered as `path:line: rule-id: message` so CI output is
/// clickable in editors and code review.
struct Finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;

  [[nodiscard]] std::string render() const;
};

/// Cross-file state collected in a first pass over every scanned file before
/// any rule runs: the set of registered secret types. A type opts in with a
/// `// gklint: secret-type(Name)` marker next to its definition; Key128 is
/// built in.
struct Registry {
  std::set<std::string> secret_types{"Key128"};
};

/// All rule identifiers gklint knows. `allow(...)` directives naming
/// anything else are themselves findings (rule `bad-suppression`).
[[nodiscard]] const std::set<std::string>& known_rules();

/// Severity of a rule: "error" for the secret-safety and concurrency rules
/// (a wrong program), "warning" for the mechanical hygiene rules (a messy
/// one). Both gate the exit status; the split exists for the JSON artifact
/// so dashboards can rank.
[[nodiscard]] std::string_view severity_of(std::string_view rule);

/// Render findings as a JSON array of {file, line, rule, severity, message}
/// objects — the `--format=json` CI artifact. Deterministic: callers pass
/// findings already sorted.
[[nodiscard]] std::string render_json(const std::vector<Finding>& findings);

/// A baseline is the set of pre-existing findings a repo has chosen to
/// tolerate while it burns them down: one `path:rule` entry per line, `#`
/// comments and blanks ignored. Matching is per file+rule (not per line),
/// so reflowing a file never resurrects a baselined finding — but a *new*
/// rule violation in a clean file always fires.
struct Baseline {
  std::set<std::string> entries;

  [[nodiscard]] bool covers(const Finding& finding) const {
    return entries.count(finding.path + ":" + finding.rule) != 0;
  }
};

[[nodiscard]] Baseline parse_baseline(std::string_view text);

/// Render findings as baseline text (sorted, deduplicated `path:rule`
/// lines) — what `--write-baseline` emits.
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

/// Scan `text` for registry markers (pass 1).
void collect_markers(std::string_view text, Registry& registry);

/// Lint one file (pass 2). `display_path` is the repo-relative path used
/// both for reporting and for the per-rule allowlists (e.g. raw-rng is legal
/// inside src/common/rng.*). When `fixed_text` is non-null, the mechanical
/// rules (pragma-once, include-order) write a corrected copy of the file
/// into it; it is set to the empty string when nothing needed fixing.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& display_path,
                                               std::string_view text,
                                               const Registry& registry,
                                               std::string* fixed_text = nullptr);

}  // namespace gk::lint
