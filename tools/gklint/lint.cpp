#include "gklint/lint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <sstream>

#include "gklint/flow.h"
#include "gklint/lexer.h"

namespace gk::lint {
namespace {

// ---------------------------------------------------------------- helpers ---

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

[[nodiscard]] bool is_header_path(std::string_view path) { return ends_with(path, ".h"); }

[[nodiscard]] std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) lines.emplace_back(text.substr(start));
  return lines;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// File stem: "src/crypto/key.cpp" -> "key".
[[nodiscard]] std::string_view stem_of(std::string_view path) {
  const auto slash = path.find_last_of('/');
  auto base = slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  return dot == std::string_view::npos ? base : base.substr(0, dot);
}

// ---------------------------------------------------- gklint: directives ----

/// One parsed suppression directive: the allow-list of rule ids it names,
/// plus the mandatory justification text that follows the closing paren.
struct AllowDirective {
  std::set<std::string> rules;
  std::vector<std::string> unknown_rules;
  std::string justification;
  std::size_t first_line = 0;
  std::size_t last_line = 0;
  bool owns_line = false;

  [[nodiscard]] bool covers(std::size_t line) const noexcept {
    const std::size_t hi = owns_line ? last_line + 1 : last_line;
    return line >= first_line && line <= hi;
  }
};

struct Directives {
  std::vector<AllowDirective> allows;
  std::vector<Finding> bad;  // malformed suppressions are findings themselves
};

[[nodiscard]] Directives parse_directives(const std::string& path,
                                          const std::vector<Comment>& comments) {
  Directives out;
  for (const auto& comment : comments) {
    const std::string& text = comment.text;
    const auto tag = text.find("gklint:");
    if (tag == std::string::npos) continue;
    const auto allow = text.find("allow(", tag);
    if (allow == std::string::npos) continue;  // secret-type markers handled separately
    const auto close = text.find(')', allow);
    AllowDirective d;
    d.first_line = comment.first_line;
    d.last_line = comment.last_line;
    d.owns_line = comment.owns_line;
    if (close == std::string::npos) {
      out.bad.push_back({path, comment.first_line, "bad-suppression",
                         "unterminated gklint: allow( directive"});
      continue;
    }
    // Comma-separated rule list inside the parens.
    std::string list = text.substr(allow + 6, close - allow - 6);
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const auto rule = std::string(trim(item));
      if (rule.empty()) continue;
      if (known_rules().count(rule) == 0) {
        d.unknown_rules.push_back(rule);
      } else {
        d.rules.insert(rule);
      }
    }
    // Mandatory justification: non-empty text after the closing paren
    // (stripping comment terminators).
    std::string rest = text.substr(close + 1);
    if (ends_with(rest, "*/")) rest = rest.substr(0, rest.size() - 2);
    d.justification = std::string(trim(rest));

    for (const auto& unknown : d.unknown_rules)
      out.bad.push_back({path, comment.first_line, "bad-suppression",
                         "allow() names unknown rule '" + unknown + "'"});
    if (d.rules.empty() && d.unknown_rules.empty()) {
      out.bad.push_back({path, comment.first_line, "bad-suppression",
                         "allow() lists no rules"});
    } else if (d.justification.empty()) {
      out.bad.push_back(
          {path, comment.first_line, "bad-suppression",
           "suppression needs a justification after allow(...): why is this safe?"});
    } else {
      out.allows.push_back(std::move(d));
    }
  }
  return out;
}

// -------------------------------------------------------------- rule ctx ----

struct FileCtx {
  const std::string& path;
  bool is_header;
  const std::vector<std::string>& lines;
  const std::vector<Token>& toks;
  const Registry& reg;
  std::vector<Finding>* findings;

  void report(std::size_t line, const char* rule, std::string message) const {
    findings->push_back({path, line, rule, std::move(message)});
  }

  [[nodiscard]] bool is_secret_type(const std::string& name) const {
    return reg.secret_types.count(name) != 0;
  }
};

/// Index of the token matching the `(` at `open`, or toks.size() on overrun.
[[nodiscard]] std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

[[nodiscard]] bool tok_is(const Token& t, std::string_view text) {
  return t.text == text;
}

// ------------------------------------------------------------ rule: raw-rng --

void rule_raw_rng(const FileCtx& ctx) {
  if (starts_with(ctx.path, "src/common/rng.")) return;
  static const std::set<std::string> kCallBanned = {"rand", "srand", "rand_r", "drand48",
                                                    "lrand48"};
  static const std::set<std::string> kTypeBanned = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "default_random_engine",
      "knuth_b", "ranlux24", "ranlux48"};
  for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
    const auto& t = ctx.toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool call = kCallBanned.count(t.text) != 0 && i + 1 < ctx.toks.size() &&
                      tok_is(ctx.toks[i + 1], "(");
    const bool type = kTypeBanned.count(t.text) != 0;
    if (call || type)
      ctx.report(t.line, "raw-rng",
                 "'" + t.text +
                     "' bypasses the seeded deterministic stream; draw all randomness "
                     "through gk::Rng (src/common/rng)");
  }
}

// ---------------------------------------------------------- rule: banned-fn --

void rule_banned_fn(const FileCtx& ctx) {
  static const std::map<std::string, std::string> kBanned = {
      {"strcpy", "unbounded copy; use std::string or bounded std:: algorithms"},
      {"strcat", "unbounded append; use std::string"},
      {"strncpy", "padding/truncation pitfalls; use std::string"},
      {"strncat", "size argument is error-prone; use std::string"},
      {"sprintf", "unbounded format; use std::snprintf or std::format"},
      {"vsprintf", "unbounded format; use vsnprintf"},
      {"gets", "cannot be used safely"},
      {"strtok", "not reentrant; use std::string_view scanning"},
      {"alloca", "stack-unsafe allocation; use a fixed array or vector"},
      {"bzero", "non-standard and elidable; use crypto::secure_wipe() for "
                "secrets or value-init for public buffers"},
      {"memset", "elidable by dead-store elimination, so it is not a wipe; use "
                 "crypto::secure_wipe() for secret material or std::fill/value-init "
                 "for public buffers"},
  };
  for (std::size_t i = 0; i + 1 < ctx.toks.size(); ++i) {
    const auto& t = ctx.toks[i];
    if (t.kind != TokKind::kIdent || !tok_is(ctx.toks[i + 1], "(")) continue;
    const auto hit = kBanned.find(t.text);
    if (hit == kBanned.end()) continue;
    // `std::memset` and plain `memset` both match on the ident token.
    ctx.report(t.line, "banned-fn", "'" + t.text + "' is banned: " + hit->second);
  }
}

// --------------------------------------------------------- rule: ct-compare --

void rule_ct_compare(const FileCtx& ctx) {
  static const std::set<std::string> kOrdering = {"<", ">", "<=", ">=", "<=>"};
  static const std::set<std::string> kEquality = {"==", "!="};
  // The one place a hand-written constant-time operator== is allowed to live.
  const bool equality_allowlisted = ctx.path == "src/crypto/key.h";

  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // --- declared comparison operators on secret types -------------------
    if (toks[i].kind == TokKind::kIdent && tok_is(toks[i], "operator")) {
      const std::string& op = toks[i + 1].text;
      const bool ordering = kOrdering.count(op) != 0;
      const bool equality = kEquality.count(op) != 0;
      if (!ordering && !equality) continue;
      // Parameter list: first ( ... ) after the operator token.
      std::size_t open = i + 2;
      while (open < toks.size() && !tok_is(toks[open], "(")) ++open;
      if (open == toks.size()) continue;
      const std::size_t close = match_paren(toks, open);
      bool secret_param = false;
      for (std::size_t j = open + 1; j < close; ++j)
        if (toks[j].kind == TokKind::kIdent && ctx.is_secret_type(toks[j].text))
          secret_param = true;
      if (!secret_param) continue;
      // Defaulted?
      bool defaulted = false;
      for (std::size_t j = close; j < std::min(toks.size(), close + 16); ++j) {
        if (tok_is(toks[j], ";") || tok_is(toks[j], "{")) break;
        if (tok_is(toks[j], "default")) defaulted = true;
      }
      if (ordering) {
        ctx.report(toks[i].line, "ct-compare",
                   "ordered comparison (operator" + op +
                       ") on a secret type: secret bytes must never drive an "
                       "ordering; only constant-time equality exists");
      } else if (defaulted) {
        ctx.report(toks[i].line, "ct-compare",
                   "defaulted operator" + op +
                       " on a secret type compares bytes in variable time; "
                       "implement it via crypto::ct_equal()");
      } else if (!equality_allowlisted) {
        ctx.report(toks[i].line, "ct-compare",
                   "hand-written operator" + op +
                       " on a secret type outside src/crypto/key.h; route "
                       "equality through crypto::ct_equal()");
      }
    }

    // --- memcmp over secret material --------------------------------------
    if (toks[i].kind == TokKind::kIdent && tok_is(toks[i], "memcmp") &&
        tok_is(toks[i + 1], "(")) {
      const std::size_t close = match_paren(toks, i + 1);
      bool secret_arg = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        const auto& a = toks[j];
        if (a.kind != TokKind::kIdent) continue;
        const bool accessor = (a.text == "bytes" || a.text == "mutable_bytes") &&
                              j > 0 &&
                              (tok_is(toks[j - 1], ".") || tok_is(toks[j - 1], "->"));
        const bool keyish = a.text == "key" || ends_with(a.text, "_key") ||
                            a.text.find("secret") != std::string::npos;
        if (ctx.is_secret_type(a.text) || accessor || keyish) secret_arg = true;
      }
      if (secret_arg)
        ctx.report(toks[i].line, "ct-compare",
                   "memcmp on secret bytes is variable-time; use crypto::ct_equal()");
    }
  }
}

// --------------------------------------------------------- rule: secret-log --

void rule_secret_log(const FileCtx& ctx) {
  // hex_full() is greppable by design and confined to crypto internals,
  // tests, and tooling.
  const bool hex_full_ok = starts_with(ctx.path, "src/crypto/") ||
                           starts_with(ctx.path, "tests/") ||
                           starts_with(ctx.path, "tools/");
  static const std::set<std::string> kPrintFns = {"printf", "fprintf", "puts", "fputs",
                                                  "format", "print", "println"};
  const auto& toks = ctx.toks;

  std::size_t stmt_begin = 0;
  for (std::size_t i = 0; i <= toks.size(); ++i) {
    const bool boundary =
        i == toks.size() ||
        (toks[i].kind == TokKind::kPunct &&
         (tok_is(toks[i], ";") || tok_is(toks[i], "{") || tok_is(toks[i], "}")));
    if (!boundary) continue;

    bool sink = false;
    std::size_t secret_at = 0;
    std::string secret_what;
    for (std::size_t j = stmt_begin; j < i; ++j) {
      const auto& t = toks[j];
      if (t.kind == TokKind::kPunct && tok_is(t, "<<")) sink = true;
      if (t.kind == TokKind::kIdent && kPrintFns.count(t.text) != 0 &&
          j + 1 < toks.size() && tok_is(toks[j + 1], "("))
        sink = true;
      const bool member = j > 0 && (tok_is(toks[j - 1], ".") || tok_is(toks[j - 1], "->"));
      if (t.kind == TokKind::kIdent && member &&
          (t.text == "bytes" || t.text == "mutable_bytes" || t.text == "hex_full")) {
        secret_at = t.line;
        secret_what = t.text;
      }
      if (t.kind == TokKind::kIdent && t.text == "hex_full" && !hex_full_ok)
        ctx.report(t.line, "secret-log",
                   "hex_full() escapes redaction outside crypto/tests/tools; log the "
                   "redacted hex() instead");
    }
    if (sink && secret_at != 0)
      ctx.report(secret_at, "secret-log",
                 "statement streams/prints raw key material (." + secret_what +
                     "); log redacted hex() or drop the bytes from the message");
    stmt_begin = i + 1;
  }
}

// -------------------------------------------------------- rule: pragma-once --

/// Returns the 0-based index of the first code line, skipping blanks and
/// comments, or nullopt for a file with no code.
[[nodiscard]] std::optional<std::size_t> first_code_line(
    const std::vector<std::string>& lines) {
  bool in_block_comment = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto s = trim(lines[i]);
    if (in_block_comment) {
      const auto end = s.find("*/");
      if (end == std::string_view::npos) continue;
      s = trim(s.substr(end + 2));
      in_block_comment = false;
    }
    while (starts_with(s, "/*")) {
      const auto end = s.find("*/", 2);
      if (end == std::string_view::npos) {
        in_block_comment = true;
        s = {};
        break;
      }
      s = trim(s.substr(end + 2));
    }
    if (s.empty() || starts_with(s, "//")) continue;
    return i;
  }
  return std::nullopt;
}

void rule_pragma_once(const FileCtx& ctx, std::vector<std::string>* fixed_lines,
                      bool* fixed) {
  if (!ctx.is_header) return;
  const auto first = first_code_line(ctx.lines);
  if (first.has_value() && trim(ctx.lines[*first]) == "#pragma once") return;
  ctx.report(1, "pragma-once", "header must start with #pragma once");
  if (fixed_lines != nullptr) {
    fixed_lines->insert(fixed_lines->begin(), {"#pragma once", ""});
    *fixed = true;
  }
}

// ------------------------------------------------------ rule: include-order --

struct IncludeLine {
  std::size_t index;  // 0-based line index
  std::string path;   // between the delimiters
  bool angle;
  std::string raw;
};

/// ISA-specific intrinsics headers sit inside `#if defined(__x86_64__)`-style
/// guards and are position-sensitive (moving one outside its guard breaks
/// non-x86 builds), so they are pinned where the author put them: excluded
/// from ordering checks, never moved by --fix, and splitting the surrounding
/// block the way a blank line would.
[[nodiscard]] bool is_intrinsics_header(std::string_view path, bool angle) {
  static const std::set<std::string, std::less<>> kIntrinsics = {
      "ammintrin.h", "arm_acle.h",  "arm_neon.h",  "cpuid.h",     "emmintrin.h",
      "immintrin.h", "nmmintrin.h", "pmmintrin.h", "smmintrin.h", "tmmintrin.h",
      "wmmintrin.h", "x86intrin.h", "xmmintrin.h"};
  return angle && kIntrinsics.count(path) != 0;
}

[[nodiscard]] std::vector<IncludeLine> parse_includes(
    const std::vector<std::string>& lines) {
  std::vector<IncludeLine> out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto s = trim(lines[i]);
    if (!starts_with(s, "#")) continue;
    s = trim(s.substr(1));
    if (!starts_with(s, "include")) continue;
    s = trim(s.substr(7));
    if (s.empty()) continue;
    const char open = s.front();
    const char close = open == '<' ? '>' : '"';
    if (open != '<' && open != '"') continue;
    const auto end = s.find(close, 1);
    if (end == std::string_view::npos) continue;
    if (is_intrinsics_header(s.substr(1, end - 1), open == '<')) continue;
    out.push_back({i, std::string(s.substr(1, end - 1)), open == '<',
                   std::string(lines[i])});
  }
  return out;
}

void rule_include_order(const FileCtx& ctx, std::vector<std::string>* fixed_lines,
                        bool* fixed) {
  const auto includes = parse_includes(ctx.lines);
  if (includes.empty()) return;

  // A .cpp's first include may be its own header, pinned ahead of any order.
  const bool first_is_own_header =
      !ctx.is_header && !includes.front().angle &&
      stem_of(includes.front().path) == stem_of(ctx.path);

  // Group into blocks of consecutive lines.
  std::vector<std::vector<IncludeLine>> blocks;
  for (const auto& inc : includes) {
    if (blocks.empty() || inc.index != blocks.back().back().index + 1)
      blocks.emplace_back();
    blocks.back().push_back(inc);
  }

  for (std::size_t b = 0; b < blocks.size(); ++b) {
    auto& block = blocks[b];
    const std::size_t skip =
        (b == 0 && first_is_own_header && block.front().index == includes.front().index)
            ? 1
            : 0;
    if (block.size() - skip < 2) continue;

    bool mixed = false;
    bool unsorted = false;
    std::size_t offender_line = 0;
    for (std::size_t k = skip + 1; k < block.size(); ++k) {
      if (block[k].angle != block[k - 1].angle && !mixed) {
        mixed = true;
        offender_line = block[k].index + 1;
      }
      if (block[k].angle == block[k - 1].angle && block[k].path < block[k - 1].path &&
          !unsorted && !mixed) {
        unsorted = true;
        offender_line = block[k].index + 1;
      }
    }
    if (mixed)
      ctx.report(offender_line, "include-order",
                 "<> and \"\" includes mixed in one block; separate the groups with "
                 "a blank line (system headers first)");
    else if (unsorted)
      ctx.report(offender_line, "include-order",
                 "includes not alphabetically sorted within their block");

    if ((mixed || unsorted) && fixed_lines != nullptr && !*fixed) {
      // If an earlier rule already rewrote lines this pass, line indices no
      // longer match; the next --fix pass picks this block up.
      // Rewrite the block sorted, angle group first; a blank line between the
      // groups when both are present.
      std::vector<IncludeLine> sorted(
          block.begin() + static_cast<std::ptrdiff_t>(skip), block.end());
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const IncludeLine& a, const IncludeLine& z) {
                         if (a.angle != z.angle) return a.angle;
                         return a.path < z.path;
                       });
      std::vector<std::string> replacement;
      for (std::size_t k = 0; k < skip; ++k)
        replacement.push_back(block[k].raw);
      for (std::size_t k = 0; k < sorted.size(); ++k) {
        if (k > 0 && sorted[k].angle != sorted[k - 1].angle) replacement.push_back("");
        replacement.push_back(sorted[k].raw);
      }
      const std::size_t from = block.front().index;
      const std::size_t count = block.size();
      fixed_lines->erase(fixed_lines->begin() + static_cast<std::ptrdiff_t>(from),
                         fixed_lines->begin() + static_cast<std::ptrdiff_t>(from + count));
      fixed_lines->insert(fixed_lines->begin() + static_cast<std::ptrdiff_t>(from),
                          replacement.begin(), replacement.end());
      *fixed = true;
      // Only one block can be rewritten per pass without invalidating the
      // other blocks' line indices; later blocks heal on the next --fix run.
      return;
    }
  }
}

// ---------------------------------------------------------- rule: nodiscard --

void rule_nodiscard(const FileCtx& ctx) {
  if (!ctx.is_header) return;
  static const std::set<std::string> kSpecifiers = {"static",    "virtual", "inline",
                                                    "constexpr", "friend",  "explicit",
                                                    "consteval"};
  const auto& toks = ctx.toks;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !tok_is(toks[i], "optional")) continue;
    if (!(tok_is(toks[i - 1], "::") && tok_is(toks[i - 2], "std"))) continue;
    if (i + 1 >= toks.size() || !tok_is(toks[i + 1], "<")) continue;

    // Must be a return type at the start of a declaration: walk back over
    // decl-specifiers and attributes.
    std::ptrdiff_t p = static_cast<std::ptrdiff_t>(i) - 3;
    bool has_nodiscard = false;
    while (p >= 0) {
      const auto& t = toks[static_cast<std::size_t>(p)];
      if (t.kind == TokKind::kIdent && kSpecifiers.count(t.text) != 0) {
        --p;
        continue;
      }
      if (t.kind == TokKind::kPunct && tok_is(t, "]]")) {
        std::ptrdiff_t q = p - 1;
        while (q >= 0 && !tok_is(toks[static_cast<std::size_t>(q)], "[[")) {
          if (toks[static_cast<std::size_t>(q)].text == "nodiscard") has_nodiscard = true;
          --q;
        }
        p = q - 1;
        continue;
      }
      break;
    }
    if (has_nodiscard) continue;
    if (p >= 0) {
      const auto& t = toks[static_cast<std::size_t>(p)];
      static const std::set<std::string> kDeclStart = {";", "{", "}", ":", ">",
                                                       "public", "private", "protected"};
      if (kDeclStart.count(t.text) == 0) continue;  // param, local, alias, etc.
    }

    // Confirm it's a function declaration: optional<...> name (
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (tok_is(toks[j], "<") || tok_is(toks[j], "<=>")) ++depth;
      if (tok_is(toks[j], ">") && --depth == 0) break;
      if (tok_is(toks[j], ">>")) {
        depth -= 2;
        if (depth <= 0) break;
      }
    }
    if (j + 2 >= toks.size()) continue;
    if (toks[j + 1].kind != TokKind::kIdent || !tok_is(toks[j + 2], "(")) continue;

    ctx.report(toks[i].line, "nodiscard",
               "function '" + toks[j + 1].text +
                   "' returns std::optional (an error/status shape); mark it "
                   "[[nodiscard]] so callers cannot drop the failure case");
  }
}

// ------------------------------------------------------- rule: explicit-ctor --

void rule_explicit_ctor(const FileCtx& ctx) {
  if (!ctx.is_header) return;
  const auto& toks = ctx.toks;

  struct Scope {
    std::string class_name;  // empty for non-class braces
    int depth = 0;
  };
  std::vector<Scope> stack;
  int depth = 0;
  std::optional<std::string> pending_class;  // seen `class Name`, awaiting its {

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (tok_is(t, "{")) {
        ++depth;
        stack.push_back({pending_class.value_or(std::string{}), depth});
        pending_class.reset();
      } else if (tok_is(t, "}")) {
        if (!stack.empty() && stack.back().depth == depth) stack.pop_back();
        --depth;
      } else if (tok_is(t, ";")) {
        pending_class.reset();  // forward declaration
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    if ((tok_is(t, "class") || tok_is(t, "struct")) &&
        !(i > 0 && tok_is(toks[i - 1], "enum"))) {
      // Next identifier (skipping attributes) is the class name.
      std::size_t j = i + 1;
      while (j < toks.size() && toks[j].kind == TokKind::kPunct &&
             (tok_is(toks[j], "[[") || tok_is(toks[j], "]]") ||
              toks[j].text == "alignas"))
        ++j;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent)
        pending_class = toks[j].text;
      continue;
    }

    // Constructor declaration at class scope?
    const bool in_class = !stack.empty() && !stack.back().class_name.empty() &&
                          stack.back().depth == depth;
    if (!in_class || t.text != stack.back().class_name) continue;
    if (i + 1 >= toks.size() || !tok_is(toks[i + 1], "(")) continue;
    if (i > 0) {
      static const std::set<std::string> kNotCtor = {"explicit", "~", "::", ".",  "->",
                                                     "new",      "=", "(", ",",  "return",
                                                     "<",        ">", "&", "*"};
      if (kNotCtor.count(toks[i - 1].text) != 0) continue;
    }

    const std::size_t close = match_paren(toks, i + 1);
    if (close == toks.size()) continue;
    // Parameter scan: top-level commas and `=` defaults; skip copy/move.
    int pd = 0;
    std::size_t params = 0;
    bool any_token = false;
    bool mentions_self = false;
    std::vector<bool> has_default;
    bool current_default = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      const auto& a = toks[j];
      any_token = true;
      if (a.kind == TokKind::kPunct) {
        if (tok_is(a, "(") || tok_is(a, "<") || tok_is(a, "[") || tok_is(a, "{")) ++pd;
        if (tok_is(a, ")") || tok_is(a, ">") || tok_is(a, "]") || tok_is(a, "}")) --pd;
        if (pd == 0 && tok_is(a, ",")) {
          has_default.push_back(current_default);
          current_default = false;
          ++params;
          continue;
        }
        if (pd == 0 && tok_is(a, "=")) current_default = true;
      }
      if (a.kind == TokKind::kIdent && a.text == stack.back().class_name)
        mentions_self = true;
    }
    if (!any_token) continue;  // default constructor
    has_default.push_back(current_default);
    ++params;
    if (mentions_self) continue;  // copy/move constructor
    if (tok_is(toks[i + 2], "void") && params == 1 && close == i + 3) continue;

    bool single_callable = params == 1;
    if (params > 1) {
      single_callable = true;
      for (std::size_t k = 1; k < has_default.size(); ++k)
        if (!has_default[k]) single_callable = false;
    }
    if (!single_callable) continue;

    ctx.report(t.line, "explicit-ctor",
               "single-argument constructor of '" + stack.back().class_name +
                   "' should be explicit to avoid implicit conversions");
  }
}

}  // namespace

// ------------------------------------------------------------- public API ---

std::string Finding::render() const {
  return path + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules = {
      "ct-compare",    "secret-log", "raw-rng",       "banned-fn",
      "pragma-once",   "include-order", "nodiscard",  "explicit-ctor",
      "bad-suppression",
      // flow-aware pass layer (flow.cpp)
      "secret-taint", "lock-discipline", "memory-order-audit", "raii-wipe"};
  return kRules;
}

std::string_view severity_of(std::string_view rule) {
  static const std::set<std::string, std::less<>> kWarnings = {
      "pragma-once", "include-order", "nodiscard", "explicit-ctor"};
  return kWarnings.count(rule) != 0 ? "warning" : "error";
}

std::string render_json(const std::vector<Finding>& findings) {
  const auto escape = [](std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i != 0) out += ",";
    out += "\n  {\"file\": \"" + escape(f.path) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           escape(f.rule) + "\", \"severity\": \"" +
           std::string(severity_of(f.rule)) + "\", \"message\": \"" +
           escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

Baseline parse_baseline(std::string_view text) {
  Baseline out;
  for (const auto& raw : split_lines(text)) {
    const auto line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    out.entries.insert(std::string(line));
  }
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::set<std::string> entries;
  for (const auto& f : findings) entries.insert(f.path + ":" + f.rule);
  std::string out =
      "# gklint baseline: tolerated pre-existing findings, one path:rule per "
      "line.\n# Regenerate with --write-baseline; shrink it, never grow it.\n";
  for (const auto& e : entries) {
    out += e;
    out += '\n';
  }
  return out;
}

void collect_markers(std::string_view text, Registry& registry) {
  const auto lexed = lex(text);
  for (const auto& comment : lexed.comments) {
    const auto tag = comment.text.find("gklint:");
    if (tag == std::string::npos) continue;
    auto at = comment.text.find("secret-type(", tag);
    while (at != std::string::npos) {
      const auto close = comment.text.find(')', at);
      if (close == std::string::npos) break;
      const auto name = std::string(trim(comment.text.substr(at + 12, close - at - 12)));
      if (!name.empty()) registry.secret_types.insert(name);
      at = comment.text.find("secret-type(", close);
    }
  }
}

std::vector<Finding> lint_source(const std::string& display_path, std::string_view text,
                                 const Registry& registry, std::string* fixed_text) {
  const auto lines = split_lines(text);
  const auto lexed = lex(text);
  const auto directives = parse_directives(display_path, lexed.comments);

  std::vector<Finding> raw;
  FileCtx ctx{display_path, is_header_path(display_path), lines, lexed.tokens, registry,
              &raw};

  std::vector<std::string> fixed_lines = lines;
  bool fixed = false;
  std::vector<std::string>* fix_sink = fixed_text != nullptr ? &fixed_lines : nullptr;

  rule_raw_rng(ctx);
  rule_banned_fn(ctx);
  rule_ct_compare(ctx);
  rule_secret_log(ctx);
  rule_pragma_once(ctx, fix_sink, &fixed);
  rule_include_order(ctx, fix_sink, &fixed);
  rule_nodiscard(ctx);
  rule_explicit_ctor(ctx);
  lint_flow(display_path, lexed, registry, raw);

  // Apply suppressions; malformed ones are findings and cannot be suppressed.
  std::vector<Finding> out = directives.bad;
  for (auto& finding : raw) {
    const bool suppressed =
        std::any_of(directives.allows.begin(), directives.allows.end(),
                    [&](const AllowDirective& d) {
                      return d.rules.count(finding.rule) != 0 && d.covers(finding.line);
                    });
    if (!suppressed) out.push_back(std::move(finding));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& z) {
    if (a.line != z.line) return a.line < z.line;
    return a.rule < z.rule;
  });

  if (fixed_text != nullptr) {
    if (fixed) {
      std::string rebuilt;
      for (const auto& l : fixed_lines) {
        rebuilt += l;
        rebuilt += '\n';
      }
      *fixed_text = std::move(rebuilt);
    } else {
      fixed_text->clear();
    }
  }
  return out;
}

}  // namespace gk::lint
