#pragma once

#include <string>
#include <vector>

#include "gklint/lexer.h"
#include "gklint/lint.h"

namespace gk::lint {

/// Flow-aware pass layer (gklint v2). Where the rules in lint.cpp match
/// token patterns anywhere in a file, these four reason about *where a value
/// goes* inside one function, or *who owns a field* inside one class —
/// intra-procedural only, no cross-TU state beyond the shared Registry.
///
///  - secret-taint:       a value derived from secret bytes (a registered
///                        secret type, or anything bound to .bytes() /
///                        .mutable_bytes()) must not reach a logging sink,
///                        a non-ct_equal comparison, or a raw copy outside
///                        the crypto allowlist. Tracks single-assignment
///                        aliases, so `auto* p = k.bytes(); os << p;` is
///                        caught even though no `.bytes` touches the sink.
///  - lock-discipline:    in a class that owns a mutex (or an MPSC queue),
///                        every data member must have a declared owner:
///                        GK_GUARDED_BY / GK_PT_GUARDED_BY, GK_CONSUMER_ONLY,
///                        GK_CONST_AFTER_INIT, an atomic type, or const.
///                        New fields cannot land without a discipline.
///  - memory-order-audit: every atomic operation must spell an explicit
///                        std::memory_order; orders weaker than acq/rel
///                        additionally need a nearby justification comment
///                        mentioning the order. Operator-form atomics
///                        (++ / += / =) are implicit seq_cst and flagged.
///  - raii-wipe:          a stack byte buffer fed to a key-derivation or
///                        keystream helper holds secret material; it must be
///                        secure_wipe()d before every return that follows
///                        the first such use (or be a crypto::WipedBytes,
///                        which wipes itself).
///
/// Appends findings to `findings`; suppression and sorting happen in the
/// caller (lint_source), so gklint allow-directives work uniformly.
void lint_flow(const std::string& display_path, const LexResult& lexed,
               const Registry& registry, std::vector<Finding>& findings);

}  // namespace gk::lint
