#include "gklint/lexer.h"

#include <array>
#include <cctype>

namespace gk::lint {
namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators, longest first so greedy matching works.
constexpr std::array<std::string_view, 24> kPuncts = {
    "<=>", "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "[[", "]]", "++", "--"};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t line = 1;
  bool line_has_code = false;  // any non-whitespace, non-comment char so far

  const auto peek = [&](std::size_t i, std::size_t ahead) -> char {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  };

  std::size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(i, 1) == '/') {
      const std::size_t start = i;
      while (i < src.size() && src[i] != '\n') ++i;
      out.comments.push_back(
          {std::string(src.substr(start, i - start)), line, line, !line_has_code});
      continue;
    }

    // Block comment.
    if (c == '/' && peek(i, 1) == '*') {
      const std::size_t start = i;
      const std::size_t first_line = line;
      const bool owns = !line_has_code;
      i += 2;
      while (i < src.size() && !(src[i] == '*' && peek(i, 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= src.size() ? i + 2 : src.size();
      out.comments.push_back(
          {std::string(src.substr(start, i - start)), first_line, line, owns});
      continue;
    }

    line_has_code = true;

    // Raw string literal: R"delim( ... )delim" (optionally u8/u/U/L prefixed —
    // the prefix will already have been consumed as part of an identifier scan
    // below, so handle the bare R" form which covers this codebase).
    if (c == 'R' && peek(i, 1) == '"') {
      const std::size_t start = i;
      std::size_t j = i + 2;
      std::string delim;
      while (j < src.size() && src[j] != '(') delim += src[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      end = end == std::string_view::npos ? src.size() : end + close.size();
      for (std::size_t k = start; k < end; ++k)
        if (src[k] == '\n') ++line;
      out.tokens.push_back({TokKind::kString, std::string(src.substr(start, end - start)),
                            line});
      i = end;
      continue;
    }

    // String literal.
    if (c == '"') {
      const std::size_t start = i;
      const std::size_t tok_line = line;
      ++i;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < src.size()) ++i;
      out.tokens.push_back(
          {TokKind::kString, std::string(src.substr(start, i - start)), tok_line});
      continue;
    }

    // Character literal. Distinguish from digit separators: a ' directly
    // between alphanumerics inside a number is consumed by the number scan.
    if (c == '\'') {
      const std::size_t start = i;
      ++i;
      while (i < src.size() && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        ++i;
      }
      if (i < src.size()) ++i;
      out.tokens.push_back(
          {TokKind::kChar, std::string(src.substr(start, i - start)), line});
      continue;
    }

    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(start, i - start)), line});
      continue;
    }

    if (digit(c) || (c == '.' && digit(peek(i, 1)))) {
      const std::size_t start = i;
      ++i;
      while (i < src.size()) {
        const char d = src[i];
        if (ident_char(d) || d == '.') {
          ++i;
        } else if (d == '\'' && ident_char(peek(i, 1))) {
          i += 2;  // digit separator
        } else if ((d == '+' || d == '-') &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                    src[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokKind::kNumber, std::string(src.substr(start, i - start)), line});
      continue;
    }

    // Punctuation: longest match first.
    bool matched = false;
    for (const auto p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        out.tokens.push_back({TokKind::kPunct, std::string(p), line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace gk::lint
