#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gk::lint {

/// Token kinds produced by the lexer. Just enough C++ lexing for the
/// key-hygiene rules: identifiers and punctuation carry the signal; string
/// and character literals are opaque single tokens so their contents can
/// never fake a match ("rand()" inside a log string is not a finding).
enum class TokKind : std::uint8_t { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;  ///< 1-based line of the token's first character
};

/// A comment with its extent. `owns_line` means nothing but whitespace
/// precedes it on its first line — such comments scope gklint directives to
/// the *next* code line; trailing comments scope to their own line.
struct Comment {
  std::string text;
  std::size_t first_line;
  std::size_t last_line;
  bool owns_line;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `source`. Comments and literals are recognized (including raw
/// strings and digit separators) so rule matching only ever sees real code
/// tokens; preprocessor directives are lexed as ordinary tokens.
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace gk::lint
