// gklint — the repo's key-hygiene checker.
//
// Walks the given files/directories (default: src tests bench examples
// tools), runs the secret-safety and hygiene rules from lint.h over every
// .h/.cpp/.cc file, and prints findings as `file:line: rule-id: message`.
// Exit status 1 when any finding remains, so it slots directly into ctest
// and CI. `--fix` rewrites the two mechanical rules in place (pragma-once,
// include-order), iterating until the file is stable.
//
// `--format=json` emits the findings as a JSON array (the CI artifact);
// `--baseline FILE` drops findings listed in FILE (one `path:rule` per
// line) so a new rule can land before its backlog is burned down; and
// `--write-baseline FILE` snapshots the current findings into that format.
//
// Usage: gklint [--fix] [--format=text|json] [--baseline FILE]
//               [--write-baseline FILE] [--root DIR] [paths...]

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gklint/lint.h"

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc";
}

[[nodiscard]] bool skipped_dir(const fs::path& p) {
  const auto name = p.filename().string();
  return name == "fixtures" || name == ".git" || name.rfind("build", 0) == 0;
}

[[nodiscard]] std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void collect(const fs::path& p, std::vector<fs::path>* out) {
  if (fs::is_directory(p)) {
    if (skipped_dir(p)) return;
    std::vector<fs::path> entries;
    for (const auto& e : fs::directory_iterator(p)) entries.push_back(e.path());
    std::sort(entries.begin(), entries.end());
    for (const auto& e : entries) collect(e, out);
  } else if (fs::is_regular_file(p) && lintable(p)) {
    out->push_back(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool fix = false;
  bool json = false;
  fs::path root = fs::current_path();
  fs::path baseline_path;
  fs::path write_baseline_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix") {
      fix = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gklint [--fix] [--format=text|json] [--baseline FILE] "
                   "[--write-baseline FILE] [--root DIR] [paths...]\n";
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) args = {"src", "tests", "bench", "examples", "tools"};

  std::vector<fs::path> files;
  for (const auto& arg : args) {
    const fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    if (!fs::exists(p)) {
      std::cerr << "gklint: no such path: " << p.string() << "\n";
      return 2;
    }
    collect(p, &files);
  }

  // Pass 1: registry markers (secret types) from every scanned file.
  gk::lint::Registry registry;
  for (const auto& file : files) gk::lint::collect_markers(read_file(file), registry);

  // Pass 2: lint (and fix, iterating to a fixed point since one fix pass
  // rewrites at most one block per file).
  std::vector<gk::lint::Finding> findings;
  for (const auto& file : files) {
    const auto display = fs::relative(file, root).generic_string();
    std::string text = read_file(file);
    if (fix) {
      for (int pass = 0; pass < 16; ++pass) {
        std::string fixed;
        (void)gk::lint::lint_source(display, text, registry, &fixed);
        if (fixed.empty()) break;
        text = fixed;
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << text;
      }
    }
    auto file_findings = gk::lint::lint_source(display, text, registry);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary | std::ios::trunc);
    out << gk::lint::render_baseline(findings);
    std::cerr << "gklint: wrote baseline (" << findings.size() << " finding(s)) to "
              << write_baseline_path.string() << "\n";
    return 0;
  }

  std::size_t baselined = 0;
  if (!baseline_path.empty()) {
    if (!fs::exists(baseline_path)) {
      std::cerr << "gklint: no such baseline file: " << baseline_path.string() << "\n";
      return 2;
    }
    const auto baseline = gk::lint::parse_baseline(read_file(baseline_path));
    const auto covered = [&](const gk::lint::Finding& f) { return baseline.covers(f); };
    baselined = static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(), covered));
    findings.erase(std::remove_if(findings.begin(), findings.end(), covered),
                   findings.end());
  }

  if (json) {
    std::cout << gk::lint::render_json(findings);
  } else {
    for (const auto& finding : findings) std::cout << finding.render() << "\n";
  }
  if (baselined != 0)
    std::cerr << "gklint: " << baselined << " baselined finding(s) suppressed\n";
  if (!findings.empty()) {
    std::cerr << "gklint: " << findings.size() << " finding(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  if (!json) std::cout << "gklint: clean (" << files.size() << " files)\n";
  return 0;
}
