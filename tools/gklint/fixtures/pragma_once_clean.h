// A leading comment before the pragma is fine.
#pragma once

int answer();
