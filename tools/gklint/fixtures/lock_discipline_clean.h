#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

// Every field of a lock-owning class declares its owner: guarded, consumer-
// owned, init-time-constant, atomic, or const. Nothing is left implicit.
class StagingArea {
 public:
  void push(std::uint64_t v);
  explicit StagingArea(unsigned lanes = 0);

 private:
  std::mutex mutex_;
  std::vector<std::uint64_t> staged_ GK_GUARDED_BY(mutex_);
  std::size_t high_water_ GK_GUARDED_BY(mutex_) = 0;
  std::uint64_t* slots_ GK_PT_GUARDED_BY(mutex_) = nullptr;
  std::size_t cursor_ GK_CONSUMER_ONLY = 0;
  unsigned lanes_ GK_CONST_AFTER_INIT = 1;
  std::atomic<bool> draining_ = false;
  const double drain_rate_ = 1.0;
};

// No lock, no declared discipline required: a value type's fields are
// whatever the enclosing object's discipline says they are.
class PlainValue {
 private:
  std::vector<std::uint64_t> items_;
  std::size_t count_ = 0;
};
