#include <array>
#include <cstdint>

#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/key.h"
#include "crypto/secure.h"

// Wiped on every exit path: compute the result first, scrub, then return.
gk::crypto::Key128 wiped_on_all_paths(bool fast_path) {
  std::uint8_t seed[16];
  fill_entropy(seed);
  (void)gk::crypto::hmac_sha256(std::span<const std::uint8_t>(seed), {});
  gk::crypto::secure_wipe(seed, sizeof seed);
  if (fast_path) return gk::crypto::Key128();
  return gk::crypto::Key128();
}

// WipedBytes scrubs itself during unwinding; no manual wipe needed.
gk::crypto::Key128 raii_buffer() {
  gk::crypto::WipedBytes<16> raw;
  fill_entropy(raw.data());
  return gk::crypto::Key128(raw.array());
}

// Domain-separation labels are public compile-time constants, not secrets.
void public_label(std::span<const std::uint8_t> key) {
  static constexpr std::uint8_t kLabel[] = {'g', 'k', 'c', '1'};
  (void)gk::crypto::hmac_sha256(key, std::span(kLabel));
}

// A byte buffer that never feeds a derivation helper is not key material.
void plain_io_buffer() {
  std::uint8_t frame[64];
  read_frame(frame);
  parse_frame(frame);
}
