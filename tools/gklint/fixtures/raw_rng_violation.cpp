#include <cstdlib>
#include <random>

int roll_dice() {
  std::srand(42);
  std::random_device entropy;
  std::mt19937 gen(entropy());
  return std::rand() % 6;
}
