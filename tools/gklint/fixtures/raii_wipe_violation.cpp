#include <array>
#include <cstdint>

#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/key.h"

// Four leak shapes: a C array that feeds an HMAC and dies unwiped, an early
// return that skips the wipe, a std::array fed to a Key128 constructor, and
// a buffer filled by a derivation that only some paths scrub.
void hmac_scratch_leaks(std::span<const std::uint8_t> msg) {
  std::uint8_t ikm[32];
  fill_entropy(ikm);
  (void)gk::crypto::hmac_sha256(std::span<const std::uint8_t>(ikm), msg);
}

int early_return_skips_wipe(bool fast_path) {
  std::uint8_t seed[16];
  (void)gk::crypto::hmac_sha256(std::span<const std::uint8_t>(seed), {});
  if (fast_path) return 1;
  gk::crypto::secure_wipe(seed, sizeof seed);
  return 0;
}

gk::crypto::Key128 array_to_key_leaks() {
  std::array<std::uint8_t, 16> raw;
  fill_entropy(raw.data());
  return gk::crypto::Key128(raw);
}

void derive_scratch_leaks(const gk::crypto::Key128& k) {
  std::uint8_t context[8];
  encode_context(context);
  (void)gk::crypto::derive_key(k, "label", read_u64(context));
}
