#include "common/rng.h"

std::uint64_t roll_dice(gk::Rng& rng) {
  // All randomness flows through the seeded deterministic stream; names that
  // merely contain the substring (random_walk, operand) do not trip the rule.
  const auto random_walk = rng.uniform_u64(6);
  return random_walk;
}
