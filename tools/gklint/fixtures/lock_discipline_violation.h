#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

// A class that owns a lock but declares no ownership for its other state:
// every plain field is a latent data race the next maintainer cannot see.
class StagingArea {
 public:
  void push(std::uint64_t v);

 private:
  std::mutex mutex_;
  std::vector<std::uint64_t> staged_;
  std::size_t high_water_ = 0;
  bool draining_ = false;
  double drain_rate_;
};
