#include <cstring>

void copy_and_wipe(char* dst, const char* src, unsigned char* key_buf) {
  std::strcpy(dst, src);
  std::sprintf(dst, "%s", src);
  std::memset(key_buf, 0, 16);
}
