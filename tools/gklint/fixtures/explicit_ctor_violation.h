#pragma once

class FileHandle {
 public:
  FileHandle(int fd);
  FileHandle(int fd, bool owned);
  FileHandle(double timeout, bool blocking = true, int retries = 3);
};
