#include "zeta/b.h"
#include "alpha/a.h"

#include <vector>
#include <array>

#include <cstdio>
#include "beta/c.h"

int main() { return 0; }
