#include <vector>
#include <immintrin.h>
#include <cstring>

#if defined(__x86_64__)
#include <emmintrin.h>
#include <cpuid.h>
#endif

#include "alpha/a.h"

int main() { return 0; }
