#ifndef LEGACY_GUARD_H_
#define LEGACY_GUARD_H_

int answer();

#endif  // LEGACY_GUARD_H_
