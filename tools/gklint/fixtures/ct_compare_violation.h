#pragma once
// gklint: secret-type(SecretBlob)

#include <cstring>

struct SecretBlob {
  unsigned char data[16];
  friend bool operator==(const SecretBlob&, const SecretBlob&) noexcept = default;
  friend auto operator<=>(const SecretBlob&, const SecretBlob&) noexcept = default;
};

inline bool same_blob(const SecretBlob& a, const SecretBlob& b) {
  return std::memcmp(&a, &b, sizeof(SecretBlob)) == 0;
}

inline bool same_session_key(const unsigned char* session_key, const unsigned char* other) {
  return std::memcmp(session_key, other, 16) == 0;
}
