#include <algorithm>
#include <cstdio>
#include <string>

#include "crypto/secure.h"

void copy_and_wipe(std::string* dst, const std::string& src, unsigned char* key_buf) {
  *dst = src;
  std::snprintf(nullptr, 0, "%s", src.c_str());
  gk::crypto::secure_wipe(key_buf, 16);
}
