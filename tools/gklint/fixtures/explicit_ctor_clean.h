#pragma once

class FileHandle {
 public:
  FileHandle();
  explicit FileHandle(int fd);
  FileHandle(int fd, bool owned);
  FileHandle(const FileHandle& other);
  FileHandle(FileHandle&& other) noexcept;

  // Uses of the class name that are not constructor declarations.
  static FileHandle invalid() { return FileHandle(); }
};
