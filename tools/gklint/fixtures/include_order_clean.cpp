#include "sim/transport_sim.h"

#include <array>
#include <vector>

#include "alpha/a.h"
#include "zeta/b.h"

int main() { return 0; }
