#pragma once
// gklint: secret-type(SecretBlob)

#include <cstdint>
#include <cstring>
#include <span>

struct SecretBlob {
  unsigned char data[16];
};

bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

inline bool same_blob(const SecretBlob& a, const SecretBlob& b) {
  return ct_equal(std::span<const std::uint8_t>(a.data, 16),
                  std::span<const std::uint8_t>(b.data, 16));
}

/// memcmp over clearly public data stays legal.
inline bool same_header(const char* a, const char* b) {
  return std::memcmp(a, b, 4) == 0;
}
