#include <iostream>

#include "crypto/key.h"
#include "crypto/keywrap.h"

void debug_dump(const gk::crypto::Key128& k) {
  std::cout << "key=" << k.hex() << "\n";  // redacted rendering is fine
}

void wrap_somewhere(const gk::crypto::Key128& k) {
  // Crypto plumbing touches .bytes() without any output sink: legal.
  auto view = k.bytes();
  (void)view;
}
