#pragma once

#include <optional>

struct Parser {
  [[nodiscard]] std::optional<int> next_token();

  // A member variable and a parameter are not return types.
  std::optional<int> lookahead;
  void feed(std::optional<int> token);
};

[[nodiscard]] std::optional<double> try_parse(const char* text);
