#include <cstdio>
#include <iostream>

#include "crypto/key.h"

void debug_dump(const gk::crypto::Key128& k) {
  std::cout << "key byte: " << static_cast<int>(k.bytes()[0]) << "\n";
  std::printf("key=%s\n", k.hex_full().c_str());
}
