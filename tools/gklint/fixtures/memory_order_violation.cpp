#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> epoch_;
std::atomic<bool> stop_;

std::uint64_t bare_load() { return epoch_.load(); }

void bare_store(std::uint64_t v) { epoch_.store(v); }

void bare_rmw() { epoch_.fetch_add(1); }

void operator_increment() { epoch_++; }

void operator_assign() { stop_ = true; }

std::uint64_t unjustified_relaxed() {
  return epoch_.load(std::memory_order_relaxed);
}
