#include <cstring>
#include <iostream>

#include "crypto/key.h"
#include "crypto/secure.h"

// Redacted accessors are fine to stream: hex() shows 4 bytes + ellipsis.
void redacted_log(const gk::crypto::Key128& key) {
  std::cout << "rekeyed under " << key.hex() << "\n";
}

// A ByteReader-style .bytes(n) on a non-secret receiver is deserialization,
// not key material; copying it around is the wire layer's whole job.
void reader_copy(gk::common::ByteReader& in, std::uint8_t* out) {
  const auto view = in.bytes(16);
  std::memcpy(out, view.data(), 16);
}

// Comparing through ct_equal is the sanctioned path.
bool sanctioned_compare(const gk::crypto::Key128& a, const gk::crypto::Key128& b) {
  const auto lhs = a.bytes();
  const auto rhs = b.bytes();
  return gk::crypto::ct_equal(lhs, rhs);
}
