#include <cstring>
#include <iostream>

#include "crypto/key.h"

// Taint flows through aliases: no `.bytes` ever touches a sink directly,
// which is exactly what the statement-local secret-log rule cannot see.
void alias_reaches_stream(const gk::crypto::Key128& key) {
  const auto view = key.bytes();
  std::cout << "dump: " << view;
}

bool alias_reaches_equality(const gk::crypto::Key128& key, unsigned char probe) {
  const auto view = key.bytes();
  const auto head = view;
  return head == probe;
}

void alias_reaches_memcpy(const gk::crypto::Key128& key, std::uint8_t* out) {
  const auto raw = key.bytes().data();
  std::memcpy(out, raw, 16);
}

void object_reaches_stream(const gk::crypto::Key128& key) {
  std::cerr << key;
}
