#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> epoch_;
std::atomic<bool> stop_;

std::uint64_t spelled_load() { return epoch_.load(std::memory_order_acquire); }

void spelled_store(std::uint64_t v) { epoch_.store(v, std::memory_order_release); }

std::uint64_t justified_relaxed() {
  // relaxed: monotone counter read for stats only; no data is ordered
  // behind it and a stale value is acceptable.
  return epoch_.load(std::memory_order_relaxed);
}

void spelled_rmw() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

// A local that shares an atomic member's name (the Vyukov-queue `next`
// idiom) is plain memory; operator-form writes to it must not fire.
struct Node {
  std::atomic<Node*> next;
};

Node* advance(Node* node) {
  Node* next = node->next.load(std::memory_order_acquire);
  next = nullptr;
  return next;
}
