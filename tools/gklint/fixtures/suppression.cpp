#include <cstdlib>

int trailing_suppression() {
  return rand();  // gklint: allow(raw-rng) demo fixture; determinism is irrelevant here
}

int standalone_suppression() {
  // gklint: allow(raw-rng) covers the next line when the comment owns its line
  return rand();
}

int missing_justification() {
  return rand();  // gklint: allow(raw-rng)
}

int unknown_rule() {
  return rand();  // gklint: allow(not-a-rule) message does not matter
}
