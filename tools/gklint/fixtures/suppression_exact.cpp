#include <iostream>

#include "crypto/key.h"

// One line, two rules: streaming .bytes() is a secret-log finding, and the
// flow pass independently reports the tainted parameter reaching a logging
// sink (secret-taint). The allow() below names only secret-log, so the
// suppression must NOT silence the secret-taint finding on the same line.
void dump(const gk::crypto::Key128& key) {
  // gklint: allow(secret-log) demo: suppression is rule-exact, not line-wide
  std::cout << static_cast<int>(key.bytes()[0]);
}
