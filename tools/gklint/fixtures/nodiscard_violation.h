#pragma once

#include <optional>

struct Parser {
  std::optional<int> next_token();
};

std::optional<double> try_parse(const char* text);
