#!/bin/sh
# Layering gate for the policy/mechanism split (DESIGN.md §9):
#
#   policies (partition/, losshomo/) -> engine -> wire -> lkh/crypto/common
#
# The mechanism layer must stay scheme-agnostic and the wire layer must
# stay mechanism-agnostic, so two edges are forbidden by construction:
#   * src/engine must not include any scheme layer (partition/, losshomo/,
#     oft/, elk/) or app layer (sim/, netsim/, faultsim/, transport/);
#   * src/wire must not include src/engine (nor anything above it).
# CI runs this from the lint job; it is also a ctest (`layering_check`).
set -u
root="${1:-.}"
fail=0

check() {
  dir="$1"; forbidden="$2"; rule="$3"
  hits=$(grep -rnE "#include \"($forbidden)/" "$root/$dir" 2>/dev/null)
  if [ -n "$hits" ]; then
    echo "layering violation: $rule"
    echo "$hits"
    fail=1
  fi
}

check src/engine 'partition|losshomo|oft|elk|sim|netsim|faultsim|transport|wka|net' \
  "src/engine must not include scheme or app layers"
check src/wire 'engine|partition|losshomo|oft|elk|sim|netsim|faultsim|transport|wka|net' \
  "src/wire must not include the engine or anything above it"
# The daemon layer sits beside the simulators: src/net serves the real
# engine over real sockets and must never reach into the simulation stack
# (transport may include net/outbound.h — the shared straggler policy —
# but not the reverse, or the policy object would cycle).
check src/net 'sim|netsim|faultsim|transport|replica' \
  "src/net must not include the simulation stack"

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "layering: clean"
