#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/ensure.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace gk {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Rng, UniformBoundedCoversAllValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.uniform_u64(10)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.1);
}

TEST(Rng, ExponentialIsMemorylessInDistribution) {
  // P(T > a + b | T > a) == P(T > b) for the exponential.
  Rng rng(19);
  const double mean = 10.0;
  int beyond_a = 0;
  int beyond_ab = 0;
  int beyond_b = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double t = rng.exponential(mean);
    if (t > 5.0) ++beyond_a;
    if (t > 9.0) ++beyond_ab;
    if (t > 4.0) ++beyond_b;
  }
  const double conditional = static_cast<double>(beyond_ab) / beyond_a;
  const double unconditional = static_cast<double>(beyond_b) / trials;
  EXPECT_NEAR(conditional, unconditional, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / trials, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMean) {
  Rng rng(29);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / trials, 200.0, 2.0);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const auto z = rng.zipf(100, 1.2);
    EXPECT_GE(z, 1u);
    EXPECT_LE(z, 100u);
  }
}

TEST(Rng, ZipfIsHeavyHeaded) {
  Rng rng(37);
  int ones = 0;
  int tails = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const auto z = rng.zipf(1000, 1.0);
    if (z == 1) ++ones;
    if (z > 500) ++tails;
  }
  EXPECT_GT(ones, tails);  // rank 1 should dominate the whole top half tail
  EXPECT_GT(ones, trials / 10);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

// --------------------------------------------------------------- math ----

TEST(Math, LogBinomialSmallValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(log_binomial(52, 5)), 2598960.0, 1.0);
}

TEST(Math, LogBinomialEdges) {
  EXPECT_DOUBLE_EQ(log_binomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial(7, 7), 0.0);
  EXPECT_TRUE(std::isinf(log_binomial(3, 5)));
  EXPECT_TRUE(std::isinf(log_binomial(3, -1)));
}

TEST(Math, ProbSubtreeUntouchedMatchesDirectComputation) {
  // n=9, s=3, l=2: C(6,2)/C(9,2) = 15/36.
  EXPECT_NEAR(prob_subtree_untouched(9, 3, 2), 15.0 / 36.0, 1e-12);
}

TEST(Math, ProbSubtreeUntouchedEdges) {
  EXPECT_DOUBLE_EQ(prob_subtree_untouched(10, 4, 0), 1.0);
  EXPECT_DOUBLE_EQ(prob_subtree_untouched(10, 4, 7), 0.0);  // l > n - s
  EXPECT_DOUBLE_EQ(prob_subtree_untouched(10, 0, 5), 1.0);
}

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(4, 8), 65536u);
  EXPECT_EQ(ipow(7, 0), 1u);
  EXPECT_EQ(ipow(1, 100), 1u);
}

TEST(Math, TreeHeight) {
  EXPECT_EQ(tree_height(1, 4), 0u);
  EXPECT_EQ(tree_height(4, 4), 1u);
  EXPECT_EQ(tree_height(5, 4), 2u);
  EXPECT_EQ(tree_height(65536, 4), 8u);
  EXPECT_EQ(tree_height(65537, 4), 9u);
  EXPECT_EQ(tree_height(9, 3), 2u);
}

// -------------------------------------------------------------- ensure ----

TEST(Ensure, ThrowsContractViolation) {
  EXPECT_THROW(GK_ENSURE(1 == 2), ContractViolation);
  EXPECT_NO_THROW(GK_ENSURE(1 == 1));
}

TEST(Ensure, MessageCarriesContext) {
  try {
    GK_ENSURE_MSG(false, "member " << 42 << " missing");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("member 42 missing"), std::string::npos);
  }
}

// --------------------------------------------------------------- stats ----

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(43);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < h.bins(); ++b) EXPECT_EQ(h.bin_count(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

// --------------------------------------------------------------- table ----

TEST(Table, AlignsAndSerializes) {
  Table t({"K", "cost"});
  t.add_row({1.0, 16000.0}, 0);
  t.add_row({10.0, 12000.0}, 0);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 1), "16000");

  std::ostringstream os;
  t.print(os, "Figure X");
  EXPECT_NE(os.str().find("Figure X"), std::string::npos);
  EXPECT_NE(os.str().find("16000"), std::string::npos);

  EXPECT_EQ(t.to_csv(), "K,cost\n1,16000\n10,12000\n");
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::vector<std::string>{"only-one"}}), ContractViolation);
}

}  // namespace
}  // namespace gk
